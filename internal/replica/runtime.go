package replica

import (
	"hash/fnv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/durable"
	"repro/internal/guardian"
	"repro/internal/nameserv"
	"repro/internal/vtime"
	"repro/internal/wire"
	"repro/internal/xrep"
)

// role is a member's current standing in the group.
type role int

const (
	roleFollower role = iota
	roleCandidate
	roleLeader
)

// shipBatchMax bounds the records per rep_append message; a lagging
// follower catches up over several ticks rather than one huge frame.
const shipBatchMax = 128

// termLogCompactAfter bounds the term log's growth: each persist is a
// full state snapshot, so anything but the last record is garbage.
const termLogCompactAfter = 64

// termLogName names the group's reserved (unreplicated) term log.
func termLogName(group string) string { return "_replica-" + group }

// waiter is one quorum-mode Sync blocked until the group holds seq of log.
type waiter struct {
	log string
	seq uint64
	ch  chan struct{}
}

// shipJob is one replicated batch waiting for the ship loop to transmit.
type shipJob struct{ ch chan struct{} }

// Runtime is a member's replication state machine. It is created with
// the Store (so it exists before the world does) and attaches to the
// replicator guardian when that guardian starts; the persisted term
// state lives in the group's reserved term log and survives both.
type Runtime struct {
	st  *Store
	cfg Config

	termLog durable.Log
	shipC   chan struct{}

	mu        sync.Mutex
	g         *guardian.Guardian
	clock     vtime.Clock
	hb        time.Duration
	threshold int
	nsReply   xrep.PortName

	role     role
	term     uint64
	dataTerm uint64 // highest origin term among records this member holds
	votedFor string
	leader   string
	appLog   string // the application guardian's log name, learned from Adopt or heartbeats
	lastHB   time.Time
	votes    map[string]bool

	// diverged is the persisted quarantine fence: this member may hold
	// records the group never committed, so it must not stand for
	// election and its acks must not count toward quorum. risk is the
	// persisted early warning that sets it: "I led my current term and
	// made records locally durable whose group fate is unknown" —
	// written BEFORE the batch becomes durable, so a primary killed in
	// any replication window restarts quarantined rather than eligible.
	// unverified lists the logs whose content has not yet been proven to
	// derive from the current leader; when it empties, the member heals.
	diverged   bool
	risk       bool
	unverified map[string]bool

	// frontier maps each replicated log to its term attribution: spans
	// of (origin term, first seq), ascending by seq. It is the compact
	// persisted form of a per-record term stamp, and what makes the
	// log-matching check possible without changing the WAL record
	// format.
	frontier map[string][]span

	// Leader-only state. fence is closed on deposition or crash; every
	// blocked replicate() select includes it, and the application
	// guardian is killed BEFORE it closes, so a Sync released by the
	// fence can never acknowledge its client (Process.send fails on a
	// killed guardian). suspect marks members that reported themselves
	// quarantined; forked marks (member, log) pairs caught acking past
	// the leader's own tail. Either way the member's positions never
	// count toward quorum. The two are cleared on different evidence —
	// suspect by the member's own healed (non-diverged) ack, a forked
	// entry only by a possible ack for THAT log — so an unrelated clean
	// ack cannot launder a detected fork.
	fence     chan struct{}
	acks      map[string]map[string]uint64 // member -> log -> durable seq
	published map[string]uint64            // log -> highest seq handed to shipping
	baseline  map[string]uint64            // log -> durable tail when this reign began
	suspect   map[string]bool
	forked    map[string]map[string]bool
	waiters   []*waiter
	jobs      []*shipJob

	appG       *guardian.Guardian
	appPorts   []xrep.PortName
	registered bool
	purged     bool

	// pendingReset marks a crash whose reset could not take mu
	// synchronously: a storage fault during a term-log persist
	// fail-stops the node from INSIDE a critical section, so reset()
	// re-entering mu on the same goroutine would deadlock. The flag is
	// consumed at the next lock acquisition — a spawned finisher, or
	// attach at the latest — always before any post-restart decision.
	pendingReset atomic.Bool

	stats Stats
}

// span attributes every record from start onward (until the next span)
// to the reign of term — the per-log term frontier.
type span struct {
	term  uint64
	start uint64
}

// newRuntime builds the member's runtime, replaying persisted term state
// from the wrapped store. A member whose persisted state says it led its
// last term with locally durable records of unknown group fate (risk),
// or that was already quarantined (diverged), restarts quarantined: it
// may hold records the group never committed, and it must not stand for
// election until its log is proven to derive from the current leader's.
func newRuntime(s *Store, cfg Config) (*Runtime, error) {
	tl, err := s.inner.OpenLog(termLogName(cfg.Group))
	if err != nil {
		return nil, err
	}
	rt := &Runtime{st: s, cfg: cfg, termLog: tl, shipC: make(chan struct{}, 1)}
	cp, recs, rerr := tl.Recover()
	if rerr != nil && rerr != durable.ErrNoCheckpoint {
		return nil, rerr
	}
	state := cp
	if len(recs) > 0 {
		state = recs[len(recs)-1].Data
	}
	var risk bool
	if len(state) > 0 {
		if v, err := wire.UnmarshalValue(state); err == nil {
			if seq, ok := v.(xrep.Seq); ok && len(seq) >= 2 {
				if t, ok := seq[0].(xrep.Int); ok {
					rt.term = uint64(t)
				}
				if vf, ok := seq[1].(xrep.Str); ok {
					rt.votedFor = string(vf)
				}
				if len(seq) >= 3 {
					if al, ok := seq[2].(xrep.Str); ok {
						rt.appLog = string(al)
					}
				}
				if len(seq) >= 4 {
					if dt, ok := seq[3].(xrep.Int); ok {
						rt.dataTerm = uint64(dt)
					}
				}
				if len(seq) >= 5 {
					if d, ok := seq[4].(xrep.Int); ok && d != 0 {
						rt.diverged = true
					}
				}
				if len(seq) >= 6 {
					if r, ok := seq[5].(xrep.Int); ok && r != 0 {
						risk = true
					}
				}
				if len(seq) >= 7 {
					if fr, ok := seq[6].(xrep.Seq); ok {
						rt.frontier = parseFrontier(fr)
					}
				}
			}
		}
	}
	// A one-member group is its own majority: everything it writes is
	// group-committed by definition, so a leftover risk marker must not
	// quarantine it (there is no other leader to ever heal against).
	if (rt.diverged || risk) && cfg.quorum() > 1 {
		rt.diverged = true
		rt.unverified = make(map[string]bool)
		for _, name := range s.shippable() {
			rt.unverified[name] = true
		}
	} else {
		rt.diverged = false
	}
	return rt, nil
}

// persistLocked snapshots (term, votedFor, appLog, dataTerm, diverged,
// risk, frontier) to the term log. Called with rt.mu held.
func (rt *Runtime) persistLocked() {
	b := func(v bool) xrep.Int {
		if v {
			return 1
		}
		return 0
	}
	rec := xrep.Seq{xrep.Int(rt.term), xrep.Str(rt.votedFor), xrep.Str(rt.appLog),
		xrep.Int(rt.dataTerm), b(rt.diverged), b(rt.risk), rt.frontierValueLocked()}
	buf, err := wire.MarshalValue(rec)
	if err != nil {
		return
	}
	//lint:allow lockorder term-log persist runs under rt.mu by design; contended paths reach it through TryLock and the pendingReset handshake, so no receive loop parks behind it
	seq := rt.termLog.AppendSync(buf)
	if rt.termLog.DurableLen() > termLogCompactAfter {
		//lint:allow lockorder same hand as the AppendSync above: compaction of the record just persisted
		rt.termLog.Checkpoint(buf, seq)
	}
}

// frontierValueLocked encodes the term frontier as a sequence of
// (log, ((term, start), ...)) entries. Called with rt.mu held.
func (rt *Runtime) frontierValueLocked() xrep.Seq {
	out := xrep.Seq{}
	for name, spans := range rt.frontier {
		sv := xrep.Seq{}
		for _, sp := range spans {
			sv = append(sv, xrep.Seq{xrep.Int(sp.term), xrep.Int(sp.start)})
		}
		out = append(out, xrep.Seq{xrep.Str(name), sv})
	}
	return out
}

// parseFrontier decodes frontierValueLocked's encoding.
func parseFrontier(v xrep.Seq) map[string][]span {
	out := make(map[string][]span, len(v))
	for _, ev := range v {
		entry, ok := ev.(xrep.Seq)
		if !ok || len(entry) != 2 {
			continue
		}
		name, ok := entry[0].(xrep.Str)
		if !ok {
			continue
		}
		sv, ok := entry[1].(xrep.Seq)
		if !ok {
			continue
		}
		var spans []span
		for _, spv := range sv {
			pair, ok := spv.(xrep.Seq)
			if !ok || len(pair) != 2 {
				continue
			}
			t, tok := pair[0].(xrep.Int)
			s, sok := pair[1].(xrep.Int)
			if tok && sok {
				spans = append(spans, span{term: uint64(t), start: uint64(s)})
			}
		}
		if len(spans) > 0 {
			out[string(name)] = spans
		}
	}
	return out
}

// termIn reports the origin term spans attribute to the record at seq —
// 0 when unattributed (seq 0, or below a checkpoint horizon older than
// the frontier). An unattributed record passes every log-matching check
// vacuously: no claim, no conflict.
func termIn(spans []span, seq uint64) uint64 {
	for i := len(spans) - 1; i >= 0; i-- {
		if spans[i].start <= seq {
			return spans[i].term
		}
	}
	return 0
}

// termAtLocked is termIn over this member's own frontier. Called with
// rt.mu held.
func (rt *Runtime) termAtLocked(log string, seq uint64) uint64 {
	return termIn(rt.frontier[log], seq)
}

// addSpanLocked attributes records from start onward to term, reporting
// whether the frontier changed. A start at or before an existing span's
// start supersedes that span and everything after it — the re-attribution
// path when a new reign overwrites what a phantom span claimed. Called
// with rt.mu held.
func (rt *Runtime) addSpanLocked(log string, term, start uint64) bool {
	spans := rt.frontier[log]
	for len(spans) > 0 && spans[len(spans)-1].start >= start {
		spans = spans[:len(spans)-1]
	}
	if len(spans) > 0 && spans[len(spans)-1].term == term {
		if len(rt.frontier[log]) != len(spans) {
			rt.frontier[log] = spans
			return true
		}
		return false
	}
	if rt.frontier == nil {
		rt.frontier = make(map[string][]span)
	}
	rt.frontier[log] = append(spans, span{term: term, start: start})
	return true
}

// quarantineLocked marks this member diverged: every replicated log is
// unverified until proven to derive from the current leader. Called with
// rt.mu held.
func (rt *Runtime) quarantineLocked() {
	if !rt.diverged {
		rt.stats.ForksDetected++
	}
	rt.diverged = true
	rt.unverified = make(map[string]bool)
	for _, name := range rt.st.shippable() {
		rt.unverified[name] = true
	}
	rt.persistLocked()
}

// verifyLogLocked records that log's content now provably derives from
// the current leader (log-matching at this member's tail, or wholesale
// checkpoint supersession); when every quarantined log is verified the
// member heals and regains candidacy. Called with rt.mu held.
func (rt *Runtime) verifyLogLocked(log string) {
	if !rt.diverged {
		return
	}
	delete(rt.unverified, log)
	if len(rt.unverified) > 0 {
		return
	}
	rt.diverged = false
	rt.risk = false
	rt.stats.Heals++
	rt.persistLocked()
}

// replicatorMain is the replicator guardian's Init and Recover process.
func replicatorMain(ctx *guardian.Ctx) {
	rs, ok := ctx.G.Node().Store().(*Store)
	if !ok {
		return // not a member node: inert
	}
	rt := rs.rt
	rt.attach(ctx)
	rt.receiveLoop(ctx)
}

// attach binds the runtime to its freshly started guardian: resolve
// tuning, assume initial leadership (first boot of Members[0] only), and
// start the ship loop.
func (rt *Runtime) attach(ctx *guardian.Ctx) {
	w := ctx.G.Node().World()
	t := w.Tuning()
	rt.mu.Lock()
	if rt.pendingReset.Load() {
		// The crash's deferred reset lost the race to this restart:
		// consume it now so no pre-crash leader state leaks into the
		// decisions below, then re-take the lock.
		rt.finishResetLocked()
		rt.mu.Lock()
	}
	rt.g = ctx.G
	rt.clock = w.Clock()
	rt.hb = rt.cfg.Heartbeat
	if rt.hb <= 0 {
		rt.hb = t.HeartbeatInterval
	}
	rt.threshold = rt.cfg.Threshold
	if rt.threshold <= 0 {
		rt.threshold = t.FailureThreshold
	}
	rt.lastHB = rt.clock.Now()
	initial := rt.cfg.Self == rt.cfg.Members[0] && rt.term == 0
	if initial {
		rt.term = 1
		rt.votedFor = rt.cfg.Self
	}
	rt.purged = false
	rt.mu.Unlock()
	if initial {
		rt.becomeLeader(1, false)
	} else {
		rt.purgeZombieApp()
	}
	ctx.G.Spawn("ship", rt.shipLoop)
}

// purgeZombieApp destroys application guardians this member is not
// serving: Node.Restart revives every guardian with a Recover process
// from its in-memory meta, including an old primary's application
// guardian — which must not take client traffic on a node that is no
// longer leader (its writes would be local-only and its acks unbacked).
// Called at attach and again on the first accepted heartbeat, because a
// restart may instantiate the application after the replicator.
func (rt *Runtime) purgeZombieApp() {
	rt.mu.Lock()
	g := rt.g
	tracked := rt.appG
	isLeader := rt.role == roleLeader
	rt.mu.Unlock()
	if g == nil || isLeader || rt.cfg.AppDef == "" {
		return
	}
	node := g.Node()
	for _, id := range node.Guardians() {
		zg, ok := node.GuardianByID(id)
		if !ok || zg == tracked {
			continue
		}
		if zg.DefName() == rt.cfg.AppDef {
			zg.SelfDestruct()
		}
	}
}

// adoptApp records the application guardian this (leader) member serves.
func (rt *Runtime) adoptApp(g *guardian.Guardian, ports []xrep.PortName) {
	rt.mu.Lock()
	rt.appG = g
	rt.appPorts = append([]xrep.PortName(nil), ports...)
	rt.registered = false
	if rt.appLog != g.LogName() {
		rt.appLog = g.LogName()
		rt.persistLocked()
	}
	if l, err := rt.st.innerLog(rt.appLog); err == nil {
		if rt.published == nil {
			rt.published = make(map[string]uint64)
		}
		if s := l.LastDurableSeq(); s > rt.published[rt.appLog] {
			rt.published[rt.appLog] = s
		}
	}
	rt.mu.Unlock()
	rt.pokeShip()
}

// pokeShip nudges the ship loop without waiting for its timer.
func (rt *Runtime) pokeShip() {
	select {
	case rt.shipC <- struct{}{}:
	default:
	}
}

// preSync is called by repLog.Sync BEFORE the batch becomes locally
// durable. On the leader it persists the risk marker — "records of my
// reign are about to exist whose group fate is unknown" — and attributes
// the batch to the current term in the frontier. The ordering is the
// point: if the process dies in ANY later window (records durable but
// never shipped included), the persisted risk quarantines the restarted
// member before its forked records can win an election. Costs one
// term-log fsync per reign per log, not per batch.
func (rt *Runtime) preSync(log string, firstSeq uint64) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if rt.role != roleLeader {
		return
	}
	changed := false
	if !rt.risk {
		rt.risk = true
		changed = true
	}
	if rt.dataTerm != rt.term {
		rt.dataTerm = rt.term
		changed = true
	}
	if rt.addSpanLocked(log, rt.term, firstSeq) {
		changed = true
	}
	if changed {
		rt.persistLocked()
	}
}

// replicate is the durability boundary: called by repLog.Sync after the
// batch is locally durable. On followers and unattached members it is a
// no-op (their writes are the apply path or pre-bootstrap setup). On the
// leader it publishes the batch to the ship loop and, in quorum mode,
// blocks until a majority holds it — or the fence closes.
func (rt *Runtime) replicate(log string, recs []durable.Record) {
	if len(recs) == 0 {
		return
	}
	rt.mu.Lock()
	if rt.role != roleLeader || rt.g == nil {
		rt.mu.Unlock()
		return
	}
	mode := rt.cfg.Mode
	hooks := rt.cfg.Hooks
	fence := rt.fence
	top := recs[len(recs)-1].Seq
	rt.mu.Unlock()

	if hooks.BeforeShip != nil {
		hooks.BeforeShip(log)
	}

	job := &shipJob{ch: make(chan struct{})}
	rt.mu.Lock()
	if rt.published == nil {
		rt.published = make(map[string]uint64)
	}
	if top > rt.published[log] {
		rt.published[log] = top
	}
	rt.jobs = append(rt.jobs, job)
	rt.stats.ShippedBatches++
	rt.stats.ShippedRecords += int64(len(recs))
	rt.mu.Unlock()
	rt.pokeShip()

	select {
	case <-job.ch:
	case <-fence:
		return
	}
	if hooks.AfterShip != nil {
		hooks.AfterShip(log)
	}
	if mode != ModeQuorum {
		return
	}

	rt.mu.Lock()
	if rt.fence != fence {
		rt.mu.Unlock()
		return
	}
	if rt.quorumForLocked(log, top) {
		rt.mu.Unlock()
	} else {
		w := &waiter{log: log, seq: top, ch: make(chan struct{})}
		rt.waiters = append(rt.waiters, w)
		rt.mu.Unlock()
		select {
		case <-w.ch:
		case <-fence:
			return
		}
	}
	if hooks.AfterQuorum != nil {
		hooks.AfterQuorum(log)
	}
}

// noteCheckpoint wakes the ship loop so followers learn about a
// compaction promptly (the checkpoint itself is re-read from the log).
func (rt *Runtime) noteCheckpoint(string, []byte, uint64) { rt.pokeShip() }

// quorumForLocked reports whether a majority of the group (counting this
// leader) durably holds log up to seq. Suspect members — self-reported
// diverged, or caught acking past the leader's own log — never count:
// their positions describe a forked log, not the group's. Called with
// rt.mu held.
func (rt *Runtime) quorumForLocked(log string, seq uint64) bool {
	count := 1 // the leader's own durable copy
	for _, mem := range rt.cfg.Members {
		if mem == rt.cfg.Self || rt.suspectedLocked(mem) {
			continue
		}
		if am, ok := rt.acks[mem]; ok && am[log] >= seq {
			count++
		}
	}
	return count >= rt.cfg.quorum()
}

// suspectedLocked reports whether a member's acks are currently
// untrusted, for either reason. Called with rt.mu held.
func (rt *Runtime) suspectedLocked(mem string) bool {
	return rt.suspect[mem] || len(rt.forked[mem]) > 0
}

// quorumHeldAllLocked reports whether every record written during this
// reign is quorum-held — the deposition check: false means acknowledged-
// or-in-flight records may exist that the new leader never saw. The tail
// (not just the published position) is compared against the reign's
// baseline: a batch can be locally durable before replicate() has
// published it, and those records are at risk too. Records inherited
// from earlier reigns are a previous leader's risk, not this one's —
// forks among them are caught by the wire-level log-matching checks.
// Called with rt.mu held.
func (rt *Runtime) quorumHeldAllLocked() bool {
	for _, name := range rt.st.shippable() {
		l, err := rt.st.innerLog(name)
		if err != nil {
			return false
		}
		tail := l.LastDurableSeq()
		if tail <= rt.baseline[name] {
			continue
		}
		if tail > rt.published[name] || !rt.quorumForLocked(name, tail) {
			return false
		}
	}
	return true
}

// becomeLeader assumes leadership at term. viaElection distinguishes a
// won election (take over the application guardian) from first-boot
// primacy (the caller bootstraps the application itself and hands it
// over with Store.Adopt). The term and role are re-checked under the
// lock: between tallying the winning vote and getting here, a
// concurrent tick can have started a new election (bumping rt.term to a
// term this member collected no quorum for) or a higher-term message
// can have deposed the candidacy — assuming leadership then would
// permit two leaders in one term.
func (rt *Runtime) becomeLeader(term uint64, viaElection bool) {
	rt.mu.Lock()
	if rt.role == roleLeader || rt.term != term || rt.diverged ||
		(viaElection && rt.role != roleCandidate) {
		rt.mu.Unlock()
		return
	}
	rt.role = roleLeader
	rt.leader = rt.cfg.Self
	rt.votes = nil
	rt.fence = make(chan struct{})
	rt.acks = make(map[string]map[string]uint64)
	rt.published = make(map[string]uint64)
	rt.baseline = make(map[string]uint64)
	rt.suspect = make(map[string]bool)
	rt.forked = make(map[string]map[string]bool)
	for _, name := range rt.st.shippable() {
		if l, err := rt.st.innerLog(name); err == nil {
			tail := l.LastDurableSeq()
			rt.published[name] = tail
			rt.baseline[name] = tail
		}
	}
	rt.waiters = nil
	rt.registered = false
	rt.risk = false // nothing written under this term yet
	rt.persistLocked()
	needTakeover := viaElection && rt.cfg.AppDef != "" && rt.appG == nil
	appLog := rt.appLog
	rt.mu.Unlock()
	if needTakeover {
		rt.takeover(appLog)
	}
	rt.pokeShip()
}

// takeover re-creates the application guardian from the replicated log.
func (rt *Runtime) takeover(appLog string) {
	rt.mu.Lock()
	g := rt.g
	rt.mu.Unlock()
	if g == nil {
		return
	}
	node := g.Node()
	if appLog == "" {
		// Never heard a log name from the old primary: look for a shipped
		// log of the definition's, else start the group's log fresh.
		prefix := rt.cfg.AppDef + "-"
		for _, n := range rt.st.shippable() {
			if strings.HasPrefix(n, prefix) {
				appLog = n
				break
			}
		}
		if appLog == "" {
			appLog = rt.cfg.AppDef + "-" + rt.cfg.Group
		}
	}
	c, err := node.Takeover(rt.cfg.AppDef, appLog, rt.cfg.AppArgs...)
	if err != nil {
		return
	}
	ng, ok := node.GuardianByID(c.GuardianID)
	if !ok {
		return
	}
	rt.mu.Lock()
	rt.appG = ng
	rt.appPorts = append([]xrep.PortName(nil), c.Ports...)
	rt.registered = false
	rt.stats.Takeovers++
	if rt.appLog != appLog {
		rt.appLog = appLog
		rt.persistLocked()
	}
	rt.mu.Unlock()
}

// stepDownLocked adopts a higher term, deposing this member if it led.
// Called with rt.mu held; the caller MUST SelfDestruct the returned
// application guardian BEFORE closing the returned fence — that order is
// what guarantees a fence-released Sync cannot acknowledge its client.
func (rt *Runtime) stepDownLocked(newTerm uint64) (appG *guardian.Guardian, fence chan struct{}) {
	wasLeader := rt.role == roleLeader
	rt.term = newTerm
	rt.votedFor = ""
	rt.role = roleFollower
	rt.votes = nil
	rt.leader = ""
	if wasLeader {
		if !rt.quorumHeldAllLocked() {
			// Locally durable records the group may not hold: this
			// member's log has forked from the new leader's. It must not
			// lead again until healed (DESIGN §12).
			rt.quarantineLocked()
		}
		rt.risk = false // reign over; its outcome is now resolved precisely
		appG = rt.appG
		rt.appG = nil
		rt.appPorts = nil
		fence = rt.fence
		rt.fence = nil
		rt.registered = false
		rt.waiters = nil
	}
	rt.lastHB = rt.clock.Now()
	rt.persistLocked()
	return appG, fence
}

// observe processes an incoming message's term. It returns true when the
// message is stale (lower term) and must be rejected; otherwise it has
// adopted any higher term (deposing a stale self) and, when the message
// names the current leader, refreshed the heartbeat clock.
func (rt *Runtime) observe(term uint64, leader, appLog string) (stale bool) {
	rt.mu.Lock()
	if term < rt.term {
		rt.stats.FencedStale++
		rt.mu.Unlock()
		return true
	}
	var appG *guardian.Guardian
	var fence chan struct{}
	if term > rt.term {
		appG, fence = rt.stepDownLocked(term)
	}
	if leader != "" && leader != rt.cfg.Self {
		rt.leader = leader
		rt.lastHB = rt.clock.Now()
		if rt.role == roleCandidate {
			rt.role = roleFollower
			rt.votes = nil
		}
		if appLog != "" && rt.appLog != appLog {
			rt.appLog = appLog
			rt.persistLocked()
		}
	}
	rt.mu.Unlock()
	if appG != nil {
		appG.SelfDestruct()
	}
	if fence != nil {
		close(fence)
	}
	return false
}

// bounce tells a stale sender what the current term is — the deposition
// signal an old primary cut off by a partition eventually receives.
func (rt *Runtime) bounce(pr *guardian.Process, to string) {
	rt.mu.Lock()
	term, leader, appLog := rt.term, rt.leader, rt.appLog
	rt.mu.Unlock()
	_ = pr.Send(PortAt(to), "rep_heartbeat", rt.cfg.Group, int64(term), leader, appLog)
}

// reset returns the runtime to a blank follower: the node crashed (store
// Crash). Persisted term state survives; the fence is closed so any Sync
// blocked in replicate returns (its guardian is already dead, so no
// acknowledgement escapes). A crashing leader evaluates its divergence
// exactly the way a live deposition would — the in-memory Runtime
// survives a simulated crash, so the quarantine must be drawn here too,
// not only in stepDownLocked. Nothing is persisted: the store has
// already crashed, and the persisted risk flag covers real process
// death.
// A crash triggered by a storage fault arrives from INSIDE one of the
// runtime's own critical sections (the fault wrapper fail-stops the node
// before a term-log AppendSync returns, and that persist holds mu), so
// reset must not block on mu unconditionally: it marks the reset pending
// and lets the next lock acquisition — the spawned finisher once the
// persist's section unwinds, or attach on restart at the latest —
// consume it. Both run before any post-restart decision, and the fork
// evaluation sees the same volatile ack state either way.
func (rt *Runtime) reset() {
	rt.pendingReset.Store(true)
	if rt.mu.TryLock() {
		rt.finishResetLocked()
		return
	}
	go func() {
		rt.mu.Lock()
		rt.finishResetLocked()
	}()
}

// finishResetLocked consumes a pending reset. Called with mu held; always
// releases it.
func (rt *Runtime) finishResetLocked() {
	if !rt.pendingReset.Swap(false) {
		rt.mu.Unlock()
		return
	}
	if rt.role == roleLeader && !rt.quorumHeldAllLocked() {
		if !rt.diverged {
			rt.stats.ForksDetected++
		}
		rt.diverged = true
		rt.unverified = make(map[string]bool)
		for _, name := range rt.st.shippable() {
			rt.unverified[name] = true
		}
	}
	rt.risk = false
	rt.resetLocked()
	fence := rt.fence
	rt.fence = nil
	rt.mu.Unlock()
	if fence != nil {
		close(fence)
	}
}

// shutdown is reset's graceful twin: the world is closing in an orderly
// way, so the reign's outcome can be resolved and PERSISTED — a leader
// whose every record is quorum-held restarts eligible instead of
// conservatively quarantined.
func (rt *Runtime) shutdown() {
	rt.mu.Lock()
	if rt.role == roleLeader {
		if rt.quorumHeldAllLocked() {
			rt.risk = false
		} else {
			rt.quarantineLocked()
			rt.risk = false
		}
		rt.persistLocked()
	}
	rt.resetLocked()
	fence := rt.fence
	rt.fence = nil
	rt.mu.Unlock()
	if fence != nil {
		close(fence)
	}
}

// resetLocked clears the volatile role state shared by reset and
// shutdown. Called with rt.mu held; the caller handles the fence.
func (rt *Runtime) resetLocked() {
	rt.role = roleFollower
	rt.leader = ""
	rt.votes = nil
	rt.appG = nil
	rt.appPorts = nil
	rt.registered = false
	rt.acks = nil
	rt.published = nil
	rt.baseline = nil
	rt.suspect = nil
	rt.forked = nil
	rt.waiters = nil
	rt.jobs = nil
	if rt.clock != nil {
		rt.lastHB = rt.clock.Now()
	}
	rt.g = nil
}

// --- ship loop -------------------------------------------------------

// shipLoop is the replicator's clocked process: it transmits pending
// batches and heartbeats while leader, and watches for leader silence
// while follower.
func (rt *Runtime) shipLoop(pr *guardian.Process) {
	for {
		rt.mu.Lock()
		hb := rt.hb
		rt.mu.Unlock()
		t := rt.clock.NewTimer(hb)
		select {
		case <-pr.Killed():
			t.Stop()
			return
		case <-rt.shipC:
			t.Stop()
		case <-t.C():
		}
		rt.tick(pr)
	}
}

// electionJitterLocked spreads member timeouts so two followers rarely
// stand in the same instant; deterministic in (self, term) so a DST
// schedule replays identically. Called with rt.mu held.
//
// The range matters: under a simulated clock every member's tick timer
// fires at the SAME virtual instants, so election timing quantizes to
// whole ticks — a jitter smaller than one heartbeat is absorbed entirely
// by that quantization and two candidates that once collided collide in
// every later term (a livelock the DST harness found). Spanning
// threshold+2 heartbeats gives the jitter that many distinct tick
// buckets, and a fresh (self, term) draw each round, so a split vote
// almost surely separates within a couple of terms.
func (rt *Runtime) electionJitterLocked() time.Duration {
	h := fnv.New64a()
	_, _ = h.Write([]byte(rt.cfg.Self))
	var b [8]byte
	for i, t := 0, rt.term; i < 8; i, t = i+1, t>>8 {
		b[i] = byte(t)
	}
	_, _ = h.Write(b[:])
	span := rt.hb * time.Duration(rt.threshold+2)
	return time.Duration(h.Sum64() % uint64(span))
}

// tick is one beat: leader shipping or follower failure detection, then
// release of batches published since the last beat.
func (rt *Runtime) tick(pr *guardian.Process) {
	now := rt.clock.Now()
	rt.mu.Lock()
	r := rt.role
	term := rt.term
	jobs := rt.jobs
	rt.jobs = nil
	timeout := rt.hb*time.Duration(rt.threshold+1) + rt.electionJitterLocked()
	electDue := r != roleLeader && !rt.diverged && now.Sub(rt.lastHB) > timeout
	rt.mu.Unlock()

	if r == roleLeader {
		rt.leaderTick(pr, term)
	} else if electDue {
		rt.startElection(pr)
	}
	for _, j := range jobs {
		close(j.ch)
	}
}

// leaderTick heartbeats the group, ships every follower the suffix (or
// checkpoint) it lacks, and keeps the service name bound.
func (rt *Runtime) leaderTick(pr *guardian.Process, term uint64) {
	rt.mu.Lock()
	self := rt.cfg.Self
	appLog := rt.appLog
	published := make(map[string]uint64, len(rt.published))
	for k, v := range rt.published {
		published[k] = v
	}
	frontier := make(map[string][]span, len(rt.frontier))
	for k, v := range rt.frontier {
		frontier[k] = append([]span(nil), v...)
	}
	acks := make(map[string]map[string]uint64, len(rt.acks))
	for mem, am := range rt.acks {
		cp := make(map[string]uint64, len(am))
		for k, v := range am {
			cp[k] = v
		}
		acks[mem] = cp
	}
	needReg := rt.cfg.Service != "" && !rt.registered &&
		rt.cfg.ServicePort < len(rt.appPorts)
	var svcPort xrep.PortName
	if needReg {
		svcPort = rt.appPorts[rt.cfg.ServicePort]
	}
	nsReply := rt.nsReply
	rt.mu.Unlock()

	for _, mem := range rt.cfg.Members {
		if mem != self {
			_ = pr.Send(PortAt(mem), "rep_heartbeat", rt.cfg.Group, int64(term), self, appLog)
		}
	}

	for name, p := range published {
		l, err := rt.st.innerLog(name)
		if err != nil {
			continue
		}
		cp, recs, rerr := l.Recover()
		if rerr != nil && rerr != durable.ErrNoCheckpoint {
			continue
		}
		cpAt := l.LastDurableSeq()
		if len(recs) > 0 {
			cpAt = recs[0].Seq - 1
		}
		for _, mem := range rt.cfg.Members {
			if mem == self {
				continue
			}
			am, known := acks[mem]
			if !known {
				continue // no ack heard yet: its position is unknown
			}
			a := am[name]
			if a >= p {
				continue
			}
			if a < cpAt {
				// The follower is behind the compaction horizon: records
				// it needs no longer exist, ship the checkpoint instead.
				if rerr == nil {
					_ = pr.Send(PortAt(mem), "rep_checkpoint", rt.cfg.Group,
						int64(term), name, xrep.Bytes(cp), int64(cpAt),
						int64(termIn(frontier[name], cpAt)))
					rt.mu.Lock()
					rt.stats.CheckpointsShipped++
					rt.mu.Unlock()
				}
				continue
			}
			batch := make(xrep.Seq, 0, shipBatchMax)
			for _, rec := range recs {
				if rec.Seq <= a || rec.Seq > p {
					continue
				}
				batch = append(batch, xrep.Seq{xrep.Int(rec.Seq),
					xrep.Int(termIn(frontier[name], rec.Seq)), xrep.Bytes(rec.Data)})
				if len(batch) == shipBatchMax {
					break
				}
			}
			if len(batch) > 0 {
				_ = pr.Send(PortAt(mem), "rep_append", rt.cfg.Group, int64(term), name,
					int64(termIn(frontier[name], a)), batch)
			}
		}
	}

	if needReg {
		_ = pr.SendReplyTo(rt.cfg.NS, nsReply, "register_keyed",
			rt.cfg.Service, svcPort, rt.cfg.Group)
	}
}

// electionPositionsLocked snapshots this member's durable position on
// every application log, the per-log completeness measure elections
// compare — never a sum across logs, which would let a candidate trade
// surplus in one log for missing committed records in another. Called
// with rt.mu held.
func (rt *Runtime) electionPositionsLocked() xrep.Seq {
	pos := xrep.Seq{}
	for _, name := range rt.st.shippable() {
		if l, err := rt.st.innerLog(name); err == nil {
			pos = append(pos, xrep.Seq{xrep.Str(name), xrep.Int(l.LastDurableSeq())})
		}
	}
	return pos
}

// candidateCompleteLocked reports whether the candidate's per-log
// positions are at least as complete as this voter's on EVERY log the
// voter holds; a log the candidate never mentioned counts as position 0.
// Called with rt.mu held.
func (rt *Runtime) candidateCompleteLocked(positions map[string]uint64) bool {
	for _, name := range rt.st.shippable() {
		l, err := rt.st.innerLog(name)
		if err != nil {
			return false
		}
		if positions[name] < l.LastDurableSeq() {
			return false
		}
	}
	return true
}

// startElection stands for leadership of the next term.
func (rt *Runtime) startElection(pr *guardian.Process) {
	rt.mu.Lock()
	if rt.role == roleLeader || rt.diverged {
		rt.mu.Unlock()
		return
	}
	rt.term++
	rt.role = roleCandidate
	rt.votedFor = rt.cfg.Self
	rt.votes = map[string]bool{rt.cfg.Self: true}
	rt.leader = ""
	rt.lastHB = rt.clock.Now()
	rt.stats.Elections++
	rt.persistLocked()
	term := rt.term
	lastTerm := rt.dataTerm
	positions := rt.electionPositionsLocked()
	rt.mu.Unlock()

	if rt.cfg.quorum() == 1 {
		rt.becomeLeader(term, true)
		return
	}
	for _, mem := range rt.cfg.Members {
		if mem != rt.cfg.Self {
			_ = pr.Send(PortAt(mem), "rep_vote_req", rt.cfg.Group,
				int64(term), int64(lastTerm), positions, rt.cfg.Self)
		}
	}
}

// --- receive loop ----------------------------------------------------

// receiveLoop handles the replication stream, the election protocol, and
// name-service replies until the guardian dies.
func (rt *Runtime) receiveLoop(ctx *guardian.Ctx) {
	nsReply, err := ctx.G.NewPort(nameserv.ClientReplyType, 16)
	if err != nil {
		return
	}
	rt.mu.Lock()
	rt.nsReply = nsReply.Name()
	rt.mu.Unlock()
	group := rt.cfg.Group
	mine := func(m *guardian.Message) bool { return m.Str(0) == group }
	nop := func(*guardian.Process, *guardian.Message) {}

	guardian.NewReceiver(ctx.Ports[0], nsReply).
		When("rep_append", func(pr *guardian.Process, m *guardian.Message) {
			if !mine(m) {
				return
			}
			rt.onAppend(pr, m)
		}).
		When("rep_checkpoint", func(pr *guardian.Process, m *guardian.Message) {
			if !mine(m) {
				return
			}
			rt.onCheckpoint(pr, m)
		}).
		When("rep_ack", func(pr *guardian.Process, m *guardian.Message) {
			if !mine(m) {
				return
			}
			rt.onAck(pr, m)
		}).
		When("rep_heartbeat", func(pr *guardian.Process, m *guardian.Message) {
			if !mine(m) {
				return
			}
			rt.onHeartbeat(pr, m)
		}).
		When("rep_fork", func(pr *guardian.Process, m *guardian.Message) {
			if !mine(m) {
				return
			}
			rt.onFork(pr, m)
		}).
		When("rep_vote_req", func(pr *guardian.Process, m *guardian.Message) {
			if !mine(m) {
				return
			}
			rt.onVoteReq(pr, m)
		}).
		When("rep_vote", func(pr *guardian.Process, m *guardian.Message) {
			if !mine(m) {
				return
			}
			rt.onVote(pr, m)
		}).
		When("rep_whois", func(pr *guardian.Process, m *guardian.Message) {
			if m.ReplyTo.IsZero() {
				return
			}
			rt.mu.Lock()
			leader, term := rt.leader, rt.term
			ready := rt.role == roleLeader && rt.appG != nil && rt.appG.Alive()
			rt.mu.Unlock()
			_ = pr.Send(m.ReplyTo, "rep_leader", leader, int64(term), ready)
		}).
		When(nameserv.OutcomeBound, func(_ *guardian.Process, _ *guardian.Message) {
			rt.mu.Lock()
			rt.registered = true
			rt.mu.Unlock()
		}).
		When(nameserv.OutcomeNotBound, nop).
		When(nameserv.OutcomeDropped, nop). // name service busy: re-register next tick
		When(nameserv.OutcomeDenied, nop).  // foreign owner holds the name; retrying is harmless
		When("binding", nop).
		When("bindings", nop).
		// Ring-membership replies (§14) are deliverable on any name-service
		// client port; the replicator never asks for them, so they are noise.
		When(nameserv.RingStateReply, nop).
		When(nameserv.RingStaged, nop).
		When(nameserv.RingCommitted, nop).
		When(nameserv.RingStale, nop).
		WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
			// §3.4 failure arm: a send to a crashed member bounced (their
			// primordial guardian reported the dead port). The failure
			// detector here is heartbeat silence, not bounces: nothing to do.
		}).
		Loop(ctx.Proc, nil)
}

// onAppend is the follower apply path: records go in primary order or
// not at all, one Sync per message, then the durable position is acked.
//
// Before anything is applied the batch is log-matched: the leader stamps
// every record with its origin term and the batch with prevTerm, the
// origin term of the leader's record just before it. If this member's
// own attribution disagrees at any overlapping position, the logs forked
// there — the old silent-retention hole — and the member quarantines
// itself instead of acking as caught up. The same stamp heals: a
// quarantined member whose record at its exact tail matches the leader's
// has proven (by the log-matching property: same position, same origin
// term ⇒ identical prefixes) that its whole log derives from the
// leader's, so the quarantine lifts and the apply proceeds.
func (rt *Runtime) onAppend(pr *guardian.Process, m *guardian.Message) {
	term := uint64(m.Int(1))
	if rt.observe(term, m.SrcNode, "") {
		rt.bounce(pr, m.SrcNode)
		return
	}
	name := m.Str(2)
	prevTerm := uint64(m.Int(3))
	recs, ok := m.Args[4].(xrep.Seq)
	if !ok {
		return
	}
	type shipped struct {
		seq, origin uint64
		data        []byte
	}
	batch := make([]shipped, 0, len(recs))
	for _, rv := range recs {
		trip, ok := rv.(xrep.Seq)
		if !ok || len(trip) != 3 {
			break
		}
		seqV, ok1 := trip[0].(xrep.Int)
		otV, ok2 := trip[1].(xrep.Int)
		data, ok3 := trip[2].(xrep.Bytes)
		if !ok1 || !ok2 || !ok3 {
			break
		}
		batch = append(batch, shipped{uint64(seqV), uint64(otV), []byte(data)})
	}
	if len(batch) == 0 {
		return
	}
	l, err := rt.st.innerLog(name)
	if err != nil {
		return
	}
	last := l.LastDurableSeq()
	prevSeq := batch[0].seq - 1

	rt.mu.Lock()
	// Log-matching at the batch boundary and across the overlap region.
	conflict := false
	if prevSeq > 0 && prevSeq <= last && prevTerm != 0 {
		if mine := rt.termAtLocked(name, prevSeq); mine != 0 && mine != prevTerm {
			conflict = true
		}
	}
	for _, r := range batch {
		if r.seq > last || r.origin == 0 {
			continue
		}
		if mine := rt.termAtLocked(name, r.seq); mine != 0 && mine != r.origin {
			conflict = true
		}
	}
	if conflict {
		rt.quarantineLocked()
	} else if rt.diverged && rt.unverified[name] && prevSeq == last {
		// The leader is extending exactly this member's tail and the
		// origin terms agree there (or the tail is empty/unattributed, in
		// which case nothing local can conflict): the local log is a
		// prefix of the leader's. Heal this log.
		rt.verifyLogLocked(name)
	}
	// A still-unverified log must not be extended: appending the group's
	// records after a forked prefix would interleave two histories.
	blocked := rt.diverged && rt.unverified[name]
	var apply []shipped
	if !blocked {
		next := last + 1
		changed := false
		maxOrigin := rt.dataTerm
		for _, r := range batch {
			if r.seq <= last {
				continue // duplicate of an already-durable record
			}
			if r.seq != next {
				break // gap: stop, the ack tells the leader where to resume
			}
			apply = append(apply, r)
			next++
			// Attribute BEFORE the record becomes durable: a phantom span
			// past the tail is harmless, an unattributed durable record
			// would dodge every future log-matching check.
			if r.origin != 0 {
				if rt.addSpanLocked(name, r.origin, r.seq) {
					changed = true
				}
				if r.origin > maxOrigin {
					maxOrigin = r.origin
				}
			}
		}
		if maxOrigin != rt.dataTerm {
			rt.dataTerm = maxOrigin
			changed = true
		}
		if changed {
			rt.persistLocked()
		}
	}
	rt.mu.Unlock()

	if len(apply) > 0 {
		for _, r := range apply {
			l.Append(r.data)
		}
		l.Sync()
		rt.mu.Lock()
		rt.stats.AppliedRecords += int64(len(apply))
		rt.mu.Unlock()
	}
	rt.mu.Lock()
	div := rt.diverged
	rt.mu.Unlock()
	_ = pr.Send(PortAt(m.SrcNode), "rep_ack", rt.cfg.Group,
		int64(term), name, int64(l.LastDurableSeq()), div)
}

// onCheckpoint installs a catch-up checkpoint on a lagging follower. An
// install wholesale-supersedes the local log (the condition is upTo past
// this member's tail, so no local record survives it), which is also the
// heal path for a truly forked log: whatever conflicting records it
// held are gone, replaced by the leader's state.
func (rt *Runtime) onCheckpoint(pr *guardian.Process, m *guardian.Message) {
	term := uint64(m.Int(1))
	if rt.observe(term, m.SrcNode, "") {
		rt.bounce(pr, m.SrcNode)
		return
	}
	name := m.Str(2)
	state, ok := m.Args[3].(xrep.Bytes)
	if !ok {
		return
	}
	upTo := uint64(m.Int(4))
	cpTerm := uint64(m.Int(5))
	l, err := rt.st.innerLog(name)
	if err != nil {
		return
	}
	if upTo > l.LastDurableSeq() {
		l.Checkpoint([]byte(state), upTo)
		durable.SkipTo(l, upTo)
		rt.mu.Lock()
		// The install replaced every local record of this log: re-seed
		// its term attribution from the leader's stamp and mark the log
		// verified (its content IS the leader's now).
		if rt.frontier == nil {
			rt.frontier = make(map[string][]span)
		}
		rt.frontier[name] = []span{{term: cpTerm, start: upTo}}
		if cpTerm > rt.dataTerm {
			rt.dataTerm = cpTerm
		}
		rt.persistLocked()
		rt.verifyLogLocked(name)
		rt.mu.Unlock()
	}
	rt.mu.Lock()
	div := rt.diverged
	rt.mu.Unlock()
	_ = pr.Send(PortAt(m.SrcNode), "rep_ack", rt.cfg.Group,
		int64(term), name, int64(l.LastDurableSeq()), div)
}

// onFork handles a leader's fork notice: the leader caught this member
// acking a position past anything the leader ever held, so the member
// carries records the group never committed and must quarantine.
func (rt *Runtime) onFork(_ *guardian.Process, m *guardian.Message) {
	term := uint64(m.Int(1))
	if rt.observe(term, m.SrcNode, "") {
		return // stale notice from a deposed leader
	}
	rt.mu.Lock()
	if term == rt.term && rt.role != roleLeader {
		rt.quarantineLocked()
	}
	rt.mu.Unlock()
}

// onAck advances a follower's durable watermark and releases any Sync
// whose batch just reached quorum. Two fork screens run first: a member
// that reports itself diverged is suspect (its positions describe a
// forked log, not the group's), and an ack past the leader's own durable
// tail is impossible — the leader's tail is monotone within its reign,
// so such a position can only name records the group never committed.
// The impossible-ack case earns the member a rep_fork notice so it
// quarantines itself even though it never saw the conflict locally.
func (rt *Runtime) onAck(pr *guardian.Process, m *guardian.Message) {
	term := uint64(m.Int(1))
	name := m.Str(2)
	seq := uint64(m.Int(3))
	selfDiverged := m.Bool(4)
	mem := m.SrcNode
	var release []*waiter
	sendFork := false
	rt.mu.Lock()
	if term != rt.term || rt.role != roleLeader {
		if term < rt.term {
			rt.stats.FencedStale++
		}
		rt.mu.Unlock()
		return
	}
	if selfDiverged {
		rt.suspect[mem] = true
	} else {
		delete(rt.suspect, mem) // healed (or never suspect): trust resumes
	}
	possible := true
	if l, err := rt.st.innerLog(name); err == nil && seq > l.LastDurableSeq() {
		possible = false
		if !rt.suspectedLocked(mem) {
			rt.stats.ForksDetected++
		}
		if rt.forked[mem] == nil {
			rt.forked[mem] = make(map[string]bool)
		}
		rt.forked[mem][name] = true
		sendFork = true
	}
	if possible {
		// A possible position for THIS log retires its fork flag. That is
		// not yet proof the content matches — the leader's tail may simply
		// have grown past the member's — but a genuinely forked-ahead
		// member is always a deposed leader, which self-quarantines
		// (persisted risk / deposition check) and stays suspect via its
		// own div=true acks until provably healed. The fork flag is the
		// backstop for the window before that self-report arrives.
		if rt.forked[mem][name] {
			delete(rt.forked[mem], name)
			if len(rt.forked[mem]) == 0 {
				delete(rt.forked, mem)
			}
		}
		// Impossible positions are never stored: acks are monotone-max,
		// and one forked high-water mark would keep counting toward
		// quorum long after the member healed at a lower tail.
		am := rt.acks[mem]
		if am == nil {
			am = make(map[string]uint64)
			rt.acks[mem] = am
		}
		if seq > am[name] {
			am[name] = seq
		}
	}
	keep := rt.waiters[:0]
	for _, w := range rt.waiters {
		if w.log == name && rt.quorumForLocked(name, w.seq) {
			release = append(release, w)
		} else {
			keep = append(keep, w)
		}
	}
	rt.waiters = keep
	rt.mu.Unlock()
	if sendFork {
		_ = pr.Send(PortAt(mem), "rep_fork", rt.cfg.Group, int64(term), name)
	}
	for _, w := range release {
		close(w.ch)
	}
}

// onHeartbeat refreshes the failure detector and acks this member's
// durable positions so the leader knows where to resume shipping.
func (rt *Runtime) onHeartbeat(pr *guardian.Process, m *guardian.Message) {
	term := uint64(m.Int(1))
	leader := m.Str(2)
	appLog := m.Str(3)
	if rt.observe(term, leader, appLog) {
		rt.bounce(pr, m.SrcNode)
		return
	}
	if leader == rt.cfg.Self {
		return
	}
	rt.mu.Lock()
	needPurge := !rt.purged
	rt.purged = true
	div := rt.diverged
	rt.mu.Unlock()
	if needPurge {
		rt.purgeZombieApp()
	}
	// Ack every local application log AND the leader's announced log —
	// a fresh follower has no logs at all, and without this first ack at
	// seq 0 the leader would never learn where to start shipping.
	names := rt.st.shippable()
	if appLog != "" && !reservedLog(appLog) {
		seen := false
		for _, n := range names {
			if n == appLog {
				seen = true
				break
			}
		}
		if !seen {
			names = append(names, appLog)
		}
	}
	for _, name := range names {
		l, err := rt.st.innerLog(name)
		if err != nil {
			continue
		}
		_ = pr.Send(PortAt(leader), "rep_ack", rt.cfg.Group,
			int64(term), name, int64(l.LastDurableSeq()), div)
	}
}

// onVoteReq grants at most one vote per term, and only to a candidate
// whose log is at least as complete as this member's on EVERY log — the
// positions travel per log, because a summed measure would let surplus
// in one log mask quorum-committed records missing from another.
func (rt *Runtime) onVoteReq(pr *guardian.Process, m *guardian.Message) {
	term := uint64(m.Int(1))
	lastTerm := uint64(m.Int(2))
	cand := m.Str(4)
	positions := make(map[string]uint64)
	if posSeq, ok := m.Args[3].(xrep.Seq); ok {
		for _, pv := range posSeq {
			pair, ok := pv.(xrep.Seq)
			if !ok || len(pair) != 2 {
				continue
			}
			name, nok := pair[0].(xrep.Str)
			seq, sok := pair[1].(xrep.Int)
			if nok && sok {
				positions[string(name)] = uint64(seq)
			}
		}
	}
	if rt.observe(term, "", "") {
		rt.bounce(pr, m.SrcNode)
		return
	}
	rt.mu.Lock()
	grant := false
	if term == rt.term && rt.role != roleLeader &&
		(rt.votedFor == "" || rt.votedFor == cand) {
		if lastTerm > rt.dataTerm ||
			(lastTerm == rt.dataTerm && rt.candidateCompleteLocked(positions)) {
			grant = true
			rt.votedFor = cand
			rt.lastHB = rt.clock.Now() // defer own candidacy to the grantee
			rt.persistLocked()
		}
	}
	cur := rt.term
	rt.mu.Unlock()
	_ = pr.Send(PortAt(m.SrcNode), "rep_vote", rt.cfg.Group,
		int64(cur), grant, rt.cfg.Self)
}

// onVote tallies; a majority (counting self) wins the term. The term the
// quorum was collected for is captured under the lock and re-checked by
// becomeLeader: between tallying the winning vote here and assuming
// leadership there, a concurrent tick can start a fresh election
// (bumping rt.term to a term with no quorum behind it).
func (rt *Runtime) onVote(_ *guardian.Process, m *guardian.Message) {
	term := uint64(m.Int(1))
	granted := m.Bool(2)
	voter := m.Str(3)
	if rt.observe(term, "", "") {
		return
	}
	win := false
	var wonTerm uint64
	rt.mu.Lock()
	if granted && term == rt.term && rt.role == roleCandidate {
		if rt.votes == nil {
			rt.votes = make(map[string]bool)
		}
		rt.votes[voter] = true
		win = len(rt.votes) >= rt.cfg.quorum()
		wonTerm = rt.term
	}
	rt.mu.Unlock()
	if win {
		rt.becomeLeader(wonTerm, true)
	}
}

// --- accessors -------------------------------------------------------

// leaderInfo reports (leader, term, isSelf).
func (rt *Runtime) leaderInfo() (string, uint64, bool) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.leader, rt.term, rt.role == roleLeader
}

// appGuardian returns the locally served application guardian.
func (rt *Runtime) appGuardian() *guardian.Guardian {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.appG
}

// appPortNames returns the served application guardian's ports.
func (rt *Runtime) appPortNames() []xrep.PortName {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return append([]xrep.PortName(nil), rt.appPorts...)
}

// statsSnapshot copies the counters.
func (rt *Runtime) statsSnapshot() Stats {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.stats
}

// isDiverged reports the quarantine fence (lifted on heal).
func (rt *Runtime) isDiverged() bool {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	return rt.diverged
}
