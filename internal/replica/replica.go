// Package replica is the primary/backup replication layer: it makes a
// guardian's "permanence of effect" (§2.2) survive permanent loss of the
// node it lives at, which the paper's single-node guardian model cannot.
//
// The design follows the paper's own primitives all the way down. Every
// member node of a replica group runs a replicator guardian — created
// first, so its port has the a-priori global name PortAt(node) — and the
// group's storage is wrapped in a Store. On the primary, a guardian's
// Sync hands the newly durable records to the replicator, which streams
// them to the followers over ordinary no-wait sends; followers append
// them to a same-named log on their own store, force them, and ack. In
// quorum mode the primary's Sync does not return until a majority of the
// group holds the batch, so an acknowledged effect survives the primary's
// permanent death; async mode returns immediately and is the measured
// control arm (experiment E14).
//
// Delivery constraints are the SCD-broadcast framing: followers apply
// confirmed records in primary order or not at all — a gap stalls the
// apply and the ack tells the primary where to resume; a record bearing a
// stale term is rejected outright (term fencing).
//
// Failover: followers watch the leader's heartbeats; on silence they hold
// a term-numbered election (votes persist, one per term, granted only to
// candidates whose log is at least as complete). The winner re-creates
// the application guardian from the shipped log via Node.Takeover and
// re-binds the service's well-known name at the name service with the
// group's shared key, so clients that re-resolve keep working. Because
// the at-most-once dedup records travel in the same log as the operation
// records (committed by the same Sync), a failed-over client retry is
// never double-applied.
package replica

import (
	"time"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

// DefName is the library name of the replicator guardian definition.
const DefName = "replicator"

// ReplicatorGuardianID is the well-known guardian id of a member node's
// replicator: the primordial guardian is id 1, and the replicator must be
// the first guardian bootstrapped on every member node, making it id 2.
// This is the a-priori address convention that lets members reach each
// other before any name service exists.
const ReplicatorGuardianID = 2

// replicatorPortID is the replicator's provided port id (ports number
// from 1 in Provides order).
const replicatorPortID = 1

// PortAt returns the global name of a member node's replicator port.
func PortAt(node string) xrep.PortName {
	return xrep.PortName{Node: node, Guardian: ReplicatorGuardianID, Port: replicatorPortID}
}

// Mode selects how much of the group must hold a batch before the
// primary's Sync returns.
type Mode int

// Replication modes.
const (
	// ModeQuorum: Sync returns once a majority of the group (counting
	// the primary) holds the batch durably. Acknowledged effects survive
	// permanent loss of the primary.
	ModeQuorum Mode = iota
	// ModeAsync: Sync returns after local durability; shipping is
	// best-effort background work. The control arm — cheap, but an
	// acknowledged effect can die with the primary.
	ModeAsync
)

// String returns the mode name.
func (m Mode) String() string {
	if m == ModeAsync {
		return "async"
	}
	return "quorum"
}

// Hooks expose the replication windows to crash-matrix tests: each is
// called on the primary during a replicated Sync. A hook that kills the
// process models dying in exactly that window.
type Hooks struct {
	// BeforeShip runs after local durability, before any record of the
	// batch has been handed to the network.
	BeforeShip func(log string)
	// AfterShip runs after the batch has been transmitted to the
	// followers (no ack seen yet — the follower-fsync race is live).
	AfterShip func(log string)
	// AfterQuorum runs after a quorum of the group holds the batch
	// (quorum mode only).
	AfterQuorum func(log string)
}

// Config describes one member's view of a replica group.
type Config struct {
	// Group names the replica group; it doubles as the shared management
	// key under which the service name is registered. That makes it a
	// BEARER SECRET: any principal that knows (or guesses) it can rebind
	// the service name from any node. On a trusted cluster a readable
	// name is fine; anywhere else mint the group name from an
	// unguessable token the way capability Tokens are minted.
	Group string
	// Self is this member's node name.
	Self string
	// Members lists every member node. Members[0] is the initial
	// primary; later primaries are elected.
	Members []string
	// Mode is the ack discipline. The zero value is ModeQuorum.
	Mode Mode
	// Heartbeat overrides the world Tuning's HeartbeatInterval for this
	// group's heartbeats, shipping cadence and election timeouts.
	Heartbeat time.Duration
	// Threshold overrides the world Tuning's FailureThreshold.
	Threshold int
	// AppDef names the application guardian definition the group
	// replicates; the election winner re-creates it from the shipped log
	// via Node.Takeover. Empty means no automatic takeover.
	AppDef string
	// AppArgs are the creation arguments passed on takeover.
	AppArgs []any
	// Service, when non-empty, is the well-known name the current leader
	// (re-)binds at the name service NS, using Group as the shared key.
	Service string
	// NS is the name-service port Service is bound at.
	NS xrep.PortName
	// ServicePort indexes the application guardian's provided ports:
	// which one Service is bound to.
	ServicePort int
	// Hooks are the crash-window test hooks.
	Hooks Hooks
}

// quorum is the majority size of the group.
func (c Config) quorum() int { return len(c.Members)/2 + 1 }

// IsMember reports whether node belongs to the group.
func (c Config) IsMember(node string) bool {
	for _, m := range c.Members {
		if m == node {
			return true
		}
	}
	return false
}

// PortType is the replicator's control port: the replication stream,
// acks, heartbeats, the election protocol, and a who-is-leader query.
var PortType = guardian.NewPortType("replica_port").
	// rep_append(group, term, log, prevTerm, records): a batch of
	// records, each a (seq, originTerm, data) triple, in primary order.
	// prevTerm is the origin term of the sender's record just before the
	// batch — the log-matching check: a follower whose own record there
	// was written under a different reign holds a forked log and must
	// quarantine itself rather than silently retain it.
	Msg("rep_append", xrep.KindString, xrep.KindInt, xrep.KindString, xrep.KindInt, xrep.KindSeq).
	// rep_checkpoint(group, term, log, state, upTo, cpTerm): checkpoint
	// catch-up for a follower too far behind the primary's compacted
	// log; cpTerm is the origin term at upTo, re-seeding the follower's
	// term attribution.
	Msg("rep_checkpoint", xrep.KindString, xrep.KindInt, xrep.KindString, xrep.KindBytes, xrep.KindInt, xrep.KindInt).
	// rep_ack(group, term, log, seq, diverged): follower's durable
	// position, and whether the follower has quarantined itself — a
	// diverged member's acks do not count toward quorum.
	Msg("rep_ack", xrep.KindString, xrep.KindInt, xrep.KindString, xrep.KindInt, xrep.KindBool).
	// rep_heartbeat(group, term, leader, appLog): leader liveness; also
	// how a stale leader learns it was deposed.
	Msg("rep_heartbeat", xrep.KindString, xrep.KindInt, xrep.KindString, xrep.KindString).
	// rep_fork(group, term, log): leader-to-member fork notice — the
	// member acked a position past anything the leader ever held, so it
	// carries records the group never committed and must quarantine.
	Msg("rep_fork", xrep.KindString, xrep.KindInt, xrep.KindString).
	// rep_vote_req(group, term, lastTerm, positions, candidate) where
	// positions is a sequence of (log, seq) pairs — completeness is
	// compared per log, never as a sum across logs.
	Msg("rep_vote_req", xrep.KindString, xrep.KindInt, xrep.KindInt, xrep.KindSeq, xrep.KindString).
	// rep_vote(group, term, granted, voter).
	Msg("rep_vote", xrep.KindString, xrep.KindInt, xrep.KindBool, xrep.KindString).
	Msg("rep_whois").
	Replies("rep_whois", "rep_leader")

// WhoisReplyType receives rep_whois replies: (leader, term, ready) where
// ready means the answering member is the leader and its application
// guardian is serving.
var WhoisReplyType = guardian.NewPortType("replica_whois_port").
	Msg("rep_leader", xrep.KindString, xrep.KindInt, xrep.KindBool)

// Def returns the replicator guardian definition. It must be the FIRST
// guardian bootstrapped on each member node (see ReplicatorGuardianID).
// It is inert on nodes whose store is not a replica.Store.
func Def() *guardian.GuardianDef {
	return &guardian.GuardianDef{
		TypeName:     DefName,
		Provides:     []*guardian.PortType{PortType},
		PortCapacity: 256,
		Init:         replicatorMain,
		Recover:      replicatorMain,
	}
}

// Stats counts one member's replication events.
type Stats struct {
	// ShippedBatches / ShippedRecords count what the member replicated
	// while leader.
	ShippedBatches int64
	ShippedRecords int64
	// AppliedRecords counts records applied while follower.
	AppliedRecords int64
	// CheckpointsShipped counts checkpoint catch-ups sent while leader.
	CheckpointsShipped int64
	// FencedStale counts messages rejected for carrying a stale term —
	// the term fence doing its job against a partitioned old primary.
	FencedStale int64
	// ForksDetected counts quarantines: log-matching conflicts found by
	// this member as follower, plus impossible acks (positions past the
	// leader's own log) it detected as leader.
	ForksDetected int64
	// Heals counts quarantines lifted: the member's log was proven to
	// derive from the current leader's (log-matching at its tail, or
	// wholesale checkpoint supersession) and it regained candidacy.
	Heals int64
	// Elections counts candidacies started; Takeovers counts elections
	// won that re-created the application guardian.
	Elections int64
	Takeovers int64
}
