package replica

import (
	"testing"

	"repro/internal/durable"
	"repro/internal/stable"
	"repro/internal/vtime"
)

// newTestStore builds a member store over a fresh in-memory sim disk.
func newTestStore(t *testing.T, cfg Config) *Store {
	t.Helper()
	inner := durable.NewSim(stable.NewDisk(vtime.NewReal(), stable.DiskConfig{}))
	st, err := NewStore(inner, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func groupCfg(self string) Config {
	return Config{Group: "g", Self: self, Members: []string{"m1", "m2", "m3"}}
}

func TestTermInWalksSpans(t *testing.T) {
	spans := []span{{term: 1, start: 1}, {term: 3, start: 5}}
	cases := []struct{ seq, want uint64 }{
		{0, 0}, // before any attribution
		{1, 1}, {4, 1},
		{5, 3}, {100, 3},
	}
	for _, c := range cases {
		if got := termIn(spans, c.seq); got != c.want {
			t.Errorf("termIn(seq=%d) = %d, want %d", c.seq, got, c.want)
		}
	}
	if got := termIn(nil, 7); got != 0 {
		t.Errorf("termIn(nil, 7) = %d, want 0", got)
	}
}

func TestAddSpanMergesAndSupersedes(t *testing.T) {
	rt := &Runtime{}
	if !rt.addSpanLocked("l", 1, 1) {
		t.Fatal("first span should change the frontier")
	}
	// Same term later in the log merges into the open span: no change.
	if rt.addSpanLocked("l", 1, 3) {
		t.Fatal("same-term extension should not change the frontier")
	}
	if !rt.addSpanLocked("l", 2, 5) {
		t.Fatal("new term should open a span")
	}
	// Re-attribution: a new reign overwriting from seq 4 supersedes the
	// {2,5} span entirely.
	if !rt.addSpanLocked("l", 3, 4) {
		t.Fatal("re-attribution should change the frontier")
	}
	want := []span{{term: 1, start: 1}, {term: 3, start: 4}}
	got := rt.frontier["l"]
	if len(got) != len(want) {
		t.Fatalf("frontier = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("frontier = %v, want %v", got, want)
		}
	}
	if got := rt.termAtLocked("l", 4); got != 3 {
		t.Fatalf("termAt(4) = %d after re-attribution, want 3", got)
	}
}

// TestTermStateRoundTrip persists the full 7-field term record and
// replays it through newRuntime, the restart path.
func TestTermStateRoundTrip(t *testing.T) {
	st := newTestStore(t, groupCfg("m1"))
	rt := st.rt
	rt.mu.Lock()
	rt.term = 9
	rt.votedFor = "m2"
	rt.appLog = "bank-g"
	rt.dataTerm = 7
	rt.risk = true
	rt.addSpanLocked("bank-g", 5, 1)
	rt.addSpanLocked("bank-g", 7, 12)
	rt.persistLocked()
	rt.mu.Unlock()

	rt2, err := newRuntime(st, groupCfg("m1"))
	if err != nil {
		t.Fatal(err)
	}
	if rt2.term != 9 || rt2.votedFor != "m2" || rt2.appLog != "bank-g" || rt2.dataTerm != 7 {
		t.Fatalf("replayed term state = term %d votedFor %q appLog %q dataTerm %d",
			rt2.term, rt2.votedFor, rt2.appLog, rt2.dataTerm)
	}
	// Persisted risk must conservatively quarantine the restarted member.
	if !rt2.diverged {
		t.Fatal("persisted risk did not quarantine the restarted member")
	}
	if got := termIn(rt2.frontier["bank-g"], 11); got != 5 {
		t.Fatalf("replayed frontier termAt(11) = %d, want 5", got)
	}
	if got := termIn(rt2.frontier["bank-g"], 12); got != 7 {
		t.Fatalf("replayed frontier termAt(12) = %d, want 7", got)
	}
}

// TestSingletonGroupIgnoresRisk: a one-member group's records are
// definitionally group-committed (the member is its own majority), so a
// persisted risk marker must not brick the group on restart.
func TestSingletonGroupIgnoresRisk(t *testing.T) {
	cfg := Config{Group: "solo", Self: "m1", Members: []string{"m1"}}
	st := newTestStore(t, cfg)
	st.rt.mu.Lock()
	st.rt.risk = true
	st.rt.persistLocked()
	st.rt.mu.Unlock()
	rt2, err := newRuntime(st, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rt2.diverged {
		t.Fatal("singleton group quarantined itself on restart")
	}
}

// TestCandidateCompletePerLog pins the per-log election rule: surplus in
// one log must not mask missing records in another.
func TestCandidateCompletePerLog(t *testing.T) {
	st := newTestStore(t, groupCfg("m1"))
	for _, w := range []struct {
		log  string
		recs int
	}{{"app-a", 3}, {"app-b", 2}} {
		l, err := st.inner.OpenLog(w.log)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < w.recs; i++ {
			l.AppendSync([]byte{byte(i)})
		}
	}
	rt := st.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	cases := []struct {
		name string
		pos  map[string]uint64
		want bool
	}{
		{"equal everywhere", map[string]uint64{"app-a": 3, "app-b": 2}, true},
		{"ahead everywhere", map[string]uint64{"app-a": 9, "app-b": 9}, true},
		{"sum ahead, one log behind", map[string]uint64{"app-a": 100, "app-b": 1}, false},
		{"missing log counts as zero", map[string]uint64{"app-a": 3}, false},
	}
	for _, c := range cases {
		if got := rt.candidateCompleteLocked(c.pos); got != c.want {
			t.Errorf("%s: candidateComplete = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestSuspectsExcludedFromQuorum pins that neither a self-reported
// diverged member nor a fork-flagged one counts toward quorum.
func TestSuspectsExcludedFromQuorum(t *testing.T) {
	st := newTestStore(t, groupCfg("m1"))
	rt := st.rt
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.acks = map[string]map[string]uint64{"m2": {"app-a": 5}}
	rt.suspect = map[string]bool{}
	rt.forked = map[string]map[string]bool{}
	if !rt.quorumForLocked("app-a", 5) {
		t.Fatal("leader + m2 should reach quorum of 3")
	}
	rt.suspect["m2"] = true
	if rt.quorumForLocked("app-a", 5) {
		t.Fatal("self-reported diverged member still counted toward quorum")
	}
	delete(rt.suspect, "m2")
	rt.forked["m2"] = map[string]bool{"app-a": true}
	if rt.quorumForLocked("app-a", 5) {
		t.Fatal("fork-flagged member still counted toward quorum")
	}
	delete(rt.forked, "m2")
	if !rt.quorumForLocked("app-a", 5) {
		t.Fatal("cleared member should count again")
	}
}
