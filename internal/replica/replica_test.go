package replica_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/amo"
	"repro/internal/bank"
	"repro/internal/durable"
	"repro/internal/guardian"
	"repro/internal/nameserv"
	"repro/internal/replica"
	"repro/internal/stable"
	"repro/internal/vtime"
	"repro/internal/xrep"
)

// Small heartbeat so elections resolve in tens of milliseconds; the
// waits below are generous wall-clock deadlines, not sleeps.
const hb = 5 * time.Millisecond

const waitFor = 15 * time.Second

const svcName = "bank/main"

type harness struct {
	t       *testing.T
	w       *guardian.World
	members []string
	nodes   map[string]*guardian.Node
	stores  map[string]*replica.Store
	nsPort  xrep.PortName
	cliG    *guardian.Guardian
	cliPr   *guardian.Process
	ns      *nameserv.Client
}

// deploy builds a three-member quorum group (m1 initial primary), a name
// service on its own node, and a driver client node.
func deploy(t *testing.T, mode replica.Mode, branchArgs ...any) *harness {
	t.Helper()
	members := []string{"m1", "m2", "m3"}
	stores := make(map[string]*replica.Store)
	var mu sync.Mutex
	nsPort := xrep.PortName{Node: "registry", Guardian: 2, Port: 1}
	w := guardian.NewWorld(guardian.Config{
		Tuning: guardian.Tuning{HeartbeatInterval: hb},
		Store: func(node string) (durable.Store, error) {
			isMember := false
			for _, m := range members {
				if m == node {
					isMember = true
				}
			}
			if !isMember {
				return nil, nil
			}
			st, err := replica.NewStore(
				durable.NewSim(stable.NewDisk(vtime.NewReal(), stable.DiskConfig{})),
				replica.Config{
					Group:       "g1",
					Self:        node,
					Members:     members,
					Mode:        mode,
					AppDef:      bank.BranchDefName,
					AppArgs:     branchArgs,
					Service:     svcName,
					NS:          nsPort,
					ServicePort: 1,
				})
			if err != nil {
				return nil, err
			}
			mu.Lock()
			stores[node] = st
			mu.Unlock()
			return st, nil
		},
	})
	t.Cleanup(func() { _ = w.Close() })
	w.MustRegister(replica.Def())
	w.MustRegister(bank.BranchDef())
	w.MustRegister(nameserv.Def())

	reg := w.MustAddNode("registry")
	if _, err := reg.Bootstrap(nameserv.DefName); err != nil {
		t.Fatal(err)
	}
	nodes := map[string]*guardian.Node{"registry": reg}
	for _, m := range members {
		n := w.MustAddNode(m)
		nodes[m] = n
		if _, err := n.Bootstrap(replica.DefName); err != nil {
			t.Fatal(err)
		}
	}
	created, err := nodes["m1"].Bootstrap(bank.BranchDefName, branchArgs...)
	if err != nil {
		t.Fatal(err)
	}
	stores["m1"].Adopt(nodes["m1"], created)

	cliNode := w.MustAddNode("app")
	nodes["app"] = cliNode
	cliG, cliPr, err := cliNode.NewDriver("client")
	if err != nil {
		t.Fatal(err)
	}
	ns, err := nameserv.NewClient(cliPr, nsPort)
	if err != nil {
		t.Fatal(err)
	}
	return &harness{t: t, w: w, members: members, nodes: nodes,
		stores: stores, nsPort: nsPort, cliG: cliG, cliPr: cliPr, ns: ns}
}

// waitUntil polls cond until it holds or the deadline passes.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(waitFor)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// bankSeq reports a member's durable position in the replicated branch
// log (0 when no record has arrived yet).
func bankSeq(st *replica.Store) uint64 {
	for _, name := range st.Inner().LogNames() {
		if strings.HasPrefix(name, bank.BranchDefName+"-") {
			l, err := st.Inner().OpenLog(name)
			if err != nil {
				return 0
			}
			return l.LastDurableSeq()
		}
	}
	return 0
}

// bankLogName returns the replicated branch log's name on a member.
func bankLogName(st *replica.Store) string {
	for _, name := range st.Inner().LogNames() {
		if strings.HasPrefix(name, bank.BranchDefName+"-") {
			return name
		}
	}
	return ""
}

// resolveService waits for the name service to hold the service binding
// and returns it with its version.
func (h *harness) resolveService() (xrep.PortName, int64) {
	h.t.Helper()
	var port xrep.PortName
	var version int64
	waitUntil(h.t, "service binding", func() bool {
		p, v, err := h.ns.Lookup(svcName, time.Second)
		if err != nil {
			return false
		}
		port, version = p, v
		return true
	})
	return port, version
}

// caller builds an at-most-once session whose destination re-resolves
// through the name service — the client side of transparent failover.
func (h *harness) caller() *amo.Caller {
	h.t.Helper()
	c, err := amo.NewCaller(h.cliPr, amo.CallerOptions{
		Timeout: 250 * time.Millisecond,
		Retries: 30,
		Backoff: amo.BackoffPolicy{Base: 5 * time.Millisecond, Jitter: 0.3},
		Resolve: func() (xrep.PortName, bool) {
			p, _, err := h.ns.Lookup(svcName, time.Second)
			return p, err == nil
		},
	})
	if err != nil {
		h.t.Fatal(err)
	}
	return c
}

// mustOK performs one amo call and requires outcome ok.
func mustOK(t *testing.T, c *amo.Caller, to xrep.PortName, cmd string, args ...any) {
	t.Helper()
	r, err := c.Call(to, cmd, args...)
	if err != nil {
		t.Fatalf("%s: %v", cmd, err)
	}
	if r.Command != bank.OutcomeOK {
		t.Fatalf("%s: outcome %s", cmd, r.Command)
	}
}

// balance reads an account via the at-most-once port.
func balance(t *testing.T, c *amo.Caller, to xrep.PortName, acct string) int64 {
	t.Helper()
	r, err := c.Call(to, "balance", acct)
	if err != nil {
		t.Fatalf("balance: %v", err)
	}
	if r.Command != "balance_is" {
		t.Fatalf("balance: outcome %s", r.Command)
	}
	return r.Int(0)
}

// currentLeader returns the member store that believes it leads.
func (h *harness) currentLeader() (string, *replica.Store) {
	for _, m := range h.members {
		if _, _, isSelf := h.stores[m].Leader(); isSelf {
			return m, h.stores[m]
		}
	}
	return "", nil
}

func TestQuorumReplicationReachesFollowers(t *testing.T) {
	h := deploy(t, replica.ModeQuorum)
	svc, _ := h.resolveService()
	c := h.caller()
	mustOK(t, c, svc, "open", "alice")
	mustOK(t, c, svc, "deposit", "alice", int64(100))
	mustOK(t, c, svc, "deposit", "alice", int64(50))

	want := bankSeq(h.stores["m1"])
	if want == 0 {
		t.Fatal("primary logged nothing")
	}
	waitUntil(t, "followers to hold the primary's log", func() bool {
		return bankSeq(h.stores["m2"]) == want && bankSeq(h.stores["m3"]) == want
	})
	if s := h.stores["m1"].ReplStats(); s.ShippedRecords == 0 {
		t.Fatalf("primary shipped nothing: %+v", s)
	}
	if s := h.stores["m2"].ReplStats(); s.AppliedRecords == 0 {
		t.Fatalf("follower applied nothing: %+v", s)
	}
}

func TestAsyncModeConverges(t *testing.T) {
	h := deploy(t, replica.ModeAsync)
	svc, _ := h.resolveService()
	c := h.caller()
	mustOK(t, c, svc, "open", "alice")
	mustOK(t, c, svc, "deposit", "alice", int64(7))
	want := bankSeq(h.stores["m1"])
	waitUntil(t, "async followers to converge", func() bool {
		return bankSeq(h.stores["m2"]) == want && bankSeq(h.stores["m3"]) == want
	})
}

func TestFailoverElectsTakesOverAndRebinds(t *testing.T) {
	h := deploy(t, replica.ModeQuorum)
	svc, v0 := h.resolveService()
	c := h.caller()
	mustOK(t, c, svc, "open", "alice")
	mustOK(t, c, svc, "deposit", "alice", int64(100))
	mustOK(t, c, svc, "deposit", "alice", int64(50))

	h.nodes["m1"].Crash() // permanent: never restarted

	waitUntil(t, "a follower to take over", func() bool {
		m, st := h.currentLeader()
		return m != "" && m != "m1" && st.AppGuardian() != nil && st.AppGuardian().Alive()
	})
	waitUntil(t, "the service binding to move", func() bool {
		p, v, err := h.ns.Lookup(svcName, time.Second)
		return err == nil && v > v0 && p.Node != "m1"
	})

	// The same session keeps working: Resolve follows the re-bound name.
	newSvc, _ := h.resolveService()
	if got := balance(t, c, newSvc, "alice"); got != 150 {
		t.Fatalf("balance after failover = %d, want 150 (acknowledged effects lost)", got)
	}
	mustOK(t, c, newSvc, "deposit", "alice", int64(25))
	if got := balance(t, c, newSvc, "alice"); got != 175 {
		t.Fatalf("balance = %d, want 175", got)
	}

	var takeovers, elections int64
	for _, m := range h.members[1:] {
		s := h.stores[m].ReplStats()
		takeovers += s.Takeovers
		elections += s.Elections
	}
	if takeovers == 0 {
		t.Fatal("no takeover recorded")
	}
	if elections == 0 {
		t.Fatal("no election recorded")
	}
}

func TestStaleTermIsFenced(t *testing.T) {
	h := deploy(t, replica.ModeQuorum)
	svc, _ := h.resolveService()
	c := h.caller()
	mustOK(t, c, svc, "open", "alice")
	mustOK(t, c, svc, "deposit", "alice", int64(100))

	h.nodes["m1"].Crash()
	var leader string
	waitUntil(t, "failover", func() bool {
		m, st := h.currentLeader()
		if m == "" || m == "m1" || st.AppGuardian() == nil {
			return false
		}
		leader = m
		return true
	})

	// Replay the dead primary's voice: an append stamped with term 1,
	// which the election has left behind. The fence must reject it.
	st := h.stores[leader]
	before := st.ReplStats().FencedStale
	seqBefore := bankSeq(st)
	rec := xrep.Seq{xrep.Seq{xrep.Int(int64(seqBefore + 1)), xrep.Int(1), xrep.Bytes([]byte("forged"))}}
	if err := h.cliPr.Send(replica.PortAt(leader), "rep_append",
		"g1", int64(1), bankLogName(st), int64(1), rec); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "the stale append to be fenced", func() bool {
		return st.ReplStats().FencedStale > before
	})
	if got := bankSeq(st); got != seqBefore {
		t.Fatalf("stale append mutated the log: seq %d -> %d", seqBefore, got)
	}
}

func TestDedupStateSurvivesFailover(t *testing.T) {
	h := deploy(t, replica.ModeQuorum)
	svc, _ := h.resolveService()

	rp, err := h.cliG.NewPort(amo.ReplyType, 16)
	if err != nil {
		t.Fatal(err)
	}
	// send issues one hand-crafted at-most-once envelope and returns the
	// outcome echoed for that seq, retrying until the destination answers.
	send := func(to xrep.PortName, seq, ack int64, cmd string, args ...any) string {
		t.Helper()
		enc, err := xrep.EncodeAll(args...)
		if err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(waitFor)
		for time.Now().Before(deadline) {
			if err := h.cliPr.SendReplyTo(to, rp.Name(), amo.ReqCommand,
				"dup-client", seq, ack, cmd, enc); err != nil {
				t.Fatal(err)
			}
			m, st := h.cliPr.Receive(250*time.Millisecond, rp)
			if st != guardian.RecvOK || m.IsFailure() {
				continue
			}
			if m.Command == amo.ReplyCommand && m.Int(0) == seq {
				return m.Str(1)
			}
		}
		t.Fatalf("no reply for seq %d", seq)
		return ""
	}

	if out := send(svc, 1, 0, "open", "alice"); out != bank.OutcomeOK {
		t.Fatalf("open: %s", out)
	}
	if out := send(svc, 2, 1, "deposit", "alice", int64(100)); out != bank.OutcomeOK {
		t.Fatalf("deposit: %s", out)
	}

	h.nodes["m1"].Crash()
	waitUntil(t, "failover", func() bool {
		m, st := h.currentLeader()
		return m != "" && m != "m1" && st.AppGuardian() != nil && st.AppGuardian().Alive()
	})
	waitUntil(t, "rebind", func() bool {
		p, _, err := h.ns.Lookup(svcName, time.Second)
		return err == nil && p.Node != "m1"
	})
	newSvc, _ := h.resolveService()

	// The client's retry of the already-acknowledged deposit arrives at
	// the NEW primary. The dedup table rode the replicated log: the retry
	// must echo the remembered outcome without re-applying.
	if out := send(newSvc, 2, 1, "deposit", "alice", int64(100)); out != bank.OutcomeOK {
		t.Fatalf("duplicate deposit: %s", out)
	}
	if out := send(newSvc, 3, 2, "balance", "alice"); out != "balance_is" {
		t.Fatalf("balance: %s", out)
	}
	_, lst := h.currentLeader()
	applies, err := bank.Applies(lst.AppGuardian())
	if err != nil {
		t.Fatal(err)
	}
	if applies != 0 {
		t.Fatalf("retry re-applied on the new primary: applies = %d, want 0", applies)
	}
	// And the money is right: exactly one deposit.
	c := h.caller()
	if got := balance(t, c, newSvc, "alice"); got != 100 {
		t.Fatalf("balance = %d, want 100 (dedup state lost in failover)", got)
	}
}

func TestCheckpointCatchUpAfterFollowerOutage(t *testing.T) {
	// Branch checkpoints every 4 mutating messages, so the log compacts
	// past what the crashed follower holds.
	h := deploy(t, replica.ModeQuorum, int64(4))
	svc, _ := h.resolveService()
	c := h.caller()
	mustOK(t, c, svc, "open", "alice")
	mustOK(t, c, svc, "deposit", "alice", int64(1))

	h.nodes["m3"].Crash()

	for i := 0; i < 12; i++ {
		mustOK(t, c, svc, "deposit", "alice", int64(1))
	}
	if err := h.nodes["m3"].Restart(); err != nil {
		t.Fatal(err)
	}
	waitUntil(t, "the restarted follower to catch up", func() bool {
		return bankSeq(h.stores["m3"]) == bankSeq(h.stores["m1"])
	})
	if got := balance(t, c, svc, "alice"); got != 13 {
		t.Fatalf("balance = %d, want 13", got)
	}
	if s := h.stores["m1"].ReplStats(); s.CheckpointsShipped == 0 {
		t.Fatalf("catch-up used no checkpoint: %+v", s)
	}
}
