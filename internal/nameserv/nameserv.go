// Package nameserv provides a name-service guardian: a durable mapping
// from human-chosen service names to port names. Ports are the only
// entities with global names (§3.2), and the paper's systems keep finding
// ports through maps (the flight directory of Figure 4, the UI guardian's
// directory of Figure 5); this guardian turns that recurring map into a
// shared service so that port names can be published once and looked up by
// anyone — including guardians created after the publisher.
//
// Bindings are versioned: re-registering a name bumps its version, so a
// client holding a stale port (e.g. of a guardian that self-destructed)
// can detect that the binding moved. The registry is logged and recovers
// after a crash; lookups are reads and cost one message pair.
package nameserv

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/guardian"
	"repro/internal/wire"
	"repro/internal/xrep"
)

// DefName is the library name of the name-service guardian definition.
const DefName = "name_service"

// Outcome identifiers.
const (
	OutcomeBound    = "bound"
	OutcomeNotBound = "not_bound"
	OutcomeDropped  = "dropped"
	OutcomeDenied   = "denied"
)

// PortType describes the name-service port.
var PortType = guardian.NewPortType("name_service_port").
	Msg("register", xrep.KindString, xrep.KindPortName).
	Replies("register", OutcomeBound, OutcomeDenied).
	Msg("register_keyed", xrep.KindString, xrep.KindPortName, xrep.KindString).
	Replies("register_keyed", OutcomeBound, OutcomeDenied).
	Msg("unregister", xrep.KindString).
	Replies("unregister", OutcomeDropped, OutcomeNotBound, OutcomeDenied).
	Msg("lookup", xrep.KindString).
	Replies("lookup", "binding", OutcomeNotBound).
	Msg("list").
	Replies("list", "bindings").
	Msg("ring_get", xrep.KindString).
	Replies("ring_get", RingStateReply).
	Msg("ring_propose", xrep.KindString, xrep.KindInt, xrep.KindString).
	Replies("ring_propose", RingStaged, RingStale).
	Msg("ring_commit", xrep.KindString, xrep.KindInt).
	Replies("ring_commit", RingCommitted, RingStale)

// ClientReplyType receives name-service replies.
var ClientReplyType = guardian.NewPortType("name_service_client_port").
	Msg(OutcomeBound, xrep.KindInt).
	Msg(OutcomeNotBound).
	Msg(OutcomeDropped).
	Msg(OutcomeDenied).
	Msg("binding", xrep.KindPortName, xrep.KindInt).
	Msg("bindings", xrep.KindSeq).
	Msg(RingStateReply, xrep.KindInt, xrep.KindString, xrep.KindInt, xrep.KindString).
	Msg(RingStaged, xrep.KindInt).
	Msg(RingCommitted, xrep.KindInt).
	Msg(RingStale, xrep.KindInt, xrep.KindString)

// binding is one name's durable state.
type binding struct {
	port    xrep.PortName
	version int64
	// owner is the principal that first registered the name; only the
	// owner (or a same-node principal) may rebind or drop it.
	owner guardian.Principal
	// key, when non-empty, is a shared management capability: any
	// principal presenting it via register_keyed may rebind the name,
	// whatever node it calls from. This is how a replica group's members
	// — different guardians on different nodes — hand a well-known name
	// to whichever of them wins an election.
	key string
}

type state struct {
	mu       sync.Mutex
	bindings map[string]*binding
	// rings holds the versioned consistent-hash rings (see ring.go).
	rings map[string]*ringEntry
}

func record(kind, name string, port xrep.PortName, version int64, owner guardian.Principal, key string) []byte {
	fields := xrep.Seq{
		xrep.Str(kind), xrep.Str(name), port, xrep.Int(version),
		xrep.Str(owner.Node), xrep.Int(owner.Guardian),
	}
	// The shared key is a seventh, optional field: records written before
	// keys existed stay six-field and replay unchanged.
	if key != "" {
		fields = append(fields, xrep.Str(key))
	}
	b, err := wire.MarshalValue(fields)
	if err != nil {
		panic(err)
	}
	return b
}

func (st *state) replay(data []byte) {
	v, err := wire.UnmarshalValue(data)
	if err != nil {
		return
	}
	if st.replayRing(v) {
		return
	}
	seq, ok := v.(xrep.Seq)
	if !ok || (len(seq) != 6 && len(seq) != 7) {
		return
	}
	kind, _ := seq[0].(xrep.Str)
	name, _ := seq[1].(xrep.Str)
	port, _ := seq[2].(xrep.PortName)
	version, _ := seq[3].(xrep.Int)
	ownerNode, _ := seq[4].(xrep.Str)
	ownerG, _ := seq[5].(xrep.Int)
	var key xrep.Str
	if len(seq) == 7 {
		key, _ = seq[6].(xrep.Str)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	switch string(kind) {
	case "bind":
		st.bindings[string(name)] = &binding{
			port:    port,
			version: int64(version),
			owner:   guardian.Principal{Node: string(ownerNode), Guardian: uint64(ownerG)},
			key:     string(key),
		}
	case "drop":
		delete(st.bindings, string(name))
	}
}

// Def returns the name-service guardian definition. No creation arguments.
func Def() *guardian.GuardianDef {
	main := func(ctx *guardian.Ctx) {
		st := &state{bindings: make(map[string]*binding), rings: make(map[string]*ringEntry)}
		ctx.G.SetState(st)
		log := ctx.G.Log()
		if ctx.Recovering {
			_, recs, _ := log.Recover()
			for _, r := range recs {
				st.replay(r.Data)
			}
		}
		reply := func(pr *guardian.Process, m *guardian.Message, cmd string, args ...any) {
			if !m.ReplyTo.IsZero() {
				_ = pr.Send(m.ReplyTo, cmd, args...)
			}
		}
		// mayManage: the binding's owner, or any principal at the name
		// service's own node (physical control), may rebind/drop.
		mayManage := func(b *binding, m *guardian.Message) bool {
			p := guardian.PrincipalOf(m)
			return p == b.owner || m.SrcNode == ctx.G.Node().Name()
		}

		// bind is the shared rebind path. key is the capability the caller
		// presented ("" for plain register): a binding holding a key may be
		// rebound by anyone presenting the same key, from any node.
		//
		// The key is a BEARER SECRET carried in cleartext, and the first
		// registrant sets it: any principal that knows — or guesses — the
		// key can pre-claim or rebind the name from any node. This is
		// deliberately weaker than the sealed capability Tokens used
		// elsewhere: it is what lets a replica group's elected leader,
		// a different principal on a different node each term, reclaim
		// the service name. Callers must treat the key like a minted
		// token (unguessable, never a predictable name) on any cluster
		// that is not fully trusted; see replica.Config.Group.
		bind := func(pr *guardian.Process, m *guardian.Message, name string, port xrep.PortName, key string) {
			st.mu.Lock()
			b, exists := st.bindings[name]
			st.mu.Unlock()
			allowed := !exists || mayManage(b, m) || (key != "" && key == b.key)
			if !allowed {
				reply(pr, m, OutcomeDenied)
				return
			}
			version := int64(1)
			owner := guardian.PrincipalOf(m)
			if exists {
				version = b.version + 1
				owner = b.owner
				if key == "" {
					key = b.key // a plain rebind keeps the key alive
				}
			}
			log.AppendSync(record("bind", name, port, version, owner, key))
			st.mu.Lock()
			st.bindings[name] = &binding{port: port, version: version, owner: owner, key: key}
			st.mu.Unlock()
			reply(pr, m, OutcomeBound, version)
		}

		guardian.NewReceiver(ctx.Ports[0]).
			When("register", func(pr *guardian.Process, m *guardian.Message) {
				bind(pr, m, m.Str(0), m.Port(1), "")
			}).
			When("register_keyed", func(pr *guardian.Process, m *guardian.Message) {
				bind(pr, m, m.Str(0), m.Port(1), m.Str(2))
			}).
			When("unregister", func(pr *guardian.Process, m *guardian.Message) {
				name := m.Str(0)
				st.mu.Lock()
				b, exists := st.bindings[name]
				st.mu.Unlock()
				if !exists {
					reply(pr, m, OutcomeNotBound)
					return
				}
				if !mayManage(b, m) {
					reply(pr, m, OutcomeDenied)
					return
				}
				log.AppendSync(record("drop", name, xrep.PortName{}, 0, b.owner, ""))
				st.mu.Lock()
				delete(st.bindings, name)
				st.mu.Unlock()
				reply(pr, m, OutcomeDropped)
			}).
			When("lookup", func(pr *guardian.Process, m *guardian.Message) {
				st.mu.Lock()
				b, exists := st.bindings[m.Str(0)]
				st.mu.Unlock()
				if !exists {
					reply(pr, m, OutcomeNotBound)
					return
				}
				reply(pr, m, "binding", b.port, b.version)
			}).
			When("ring_get", func(pr *guardian.Process, m *guardian.Message) {
				st.mu.Lock()
				e := st.rings[m.Str(0)]
				if e == nil {
					e = &ringEntry{}
				}
				cEpoch, cBlob := e.committedEpoch, e.committed
				pEpoch, pBlob := e.pendingEpoch, e.pending
				st.mu.Unlock()
				reply(pr, m, RingStateReply, cEpoch, cBlob, pEpoch, pBlob)
			}).
			When("ring_propose", func(pr *guardian.Process, m *guardian.Message) {
				name, epoch, blob := m.Str(0), m.Int(1), m.Str(2)
				st.mu.Lock()
				e := st.rings[name]
				if e == nil {
					e = &ringEntry{}
					st.rings[name] = e
				}
				if epoch != e.committedEpoch+1 {
					cEpoch, cBlob := e.committedEpoch, e.committed
					st.mu.Unlock()
					reply(pr, m, RingStale, cEpoch, cBlob)
					return
				}
				st.mu.Unlock()
				log.AppendSync(ringRecord("stage", name, epoch, blob))
				st.mu.Lock()
				e.pendingEpoch, e.pending = epoch, blob
				st.mu.Unlock()
				reply(pr, m, RingStaged, epoch)
			}).
			When("ring_commit", func(pr *guardian.Process, m *guardian.Message) {
				name, epoch := m.Str(0), m.Int(1)
				st.mu.Lock()
				e := st.rings[name]
				if e == nil {
					e = &ringEntry{}
				}
				// A retried commit of the live epoch converges; only the
				// staged epoch may flip.
				if epoch == e.committedEpoch {
					st.mu.Unlock()
					reply(pr, m, RingCommitted, epoch)
					return
				}
				if epoch != e.pendingEpoch {
					cEpoch, cBlob := e.committedEpoch, e.committed
					st.mu.Unlock()
					reply(pr, m, RingStale, cEpoch, cBlob)
					return
				}
				blob := e.pending
				st.mu.Unlock()
				log.AppendSync(ringRecord("commit", name, epoch, blob))
				st.mu.Lock()
				e.committedEpoch, e.committed = epoch, blob
				e.pendingEpoch, e.pending = 0, ""
				st.mu.Unlock()
				reply(pr, m, RingCommitted, epoch)
			}).
			When("list", func(pr *guardian.Process, m *guardian.Message) {
				st.mu.Lock()
				out := make(xrep.Seq, 0, len(st.bindings))
				for name, b := range st.bindings {
					out = append(out, xrep.Seq{xrep.Str(name), b.port, xrep.Int(b.version)})
				}
				st.mu.Unlock()
				reply(pr, m, "bindings", out)
			}).
			WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
				// §3.4 failure arm: a discarded message named this port as
				// its replyto. Bindings are already durable; the caller's
				// timeout owns recovery, so the report is dropped.
			}).
			Loop(ctx.Proc, nil)
	}
	return &guardian.GuardianDef{
		TypeName: DefName,
		Provides: []*guardian.PortType{PortType},
		Init:     main,
		Recover:  main,
	}
}

// Client is a convenience wrapper for talking to a name service.
type Client struct {
	proc  *guardian.Process
	reply *guardian.Port
	ns    xrep.PortName
}

// NewClient builds a client for the name service at ns, using the given
// process (any guardian's process will do).
func NewClient(proc *guardian.Process, ns xrep.PortName) (*Client, error) {
	reply, err := proc.Guardian().NewPort(ClientReplyType, 8)
	if err != nil {
		return nil, err
	}
	return &Client{proc: proc, reply: reply, ns: ns}, nil
}

// Register binds name to port and returns the binding version.
func (c *Client) Register(name string, port xrep.PortName, timeout time.Duration) (int64, error) {
	m, err := c.call(timeout, "register", name, port)
	if err != nil {
		return 0, err
	}
	if m.Command != OutcomeBound {
		return 0, &Error{Outcome: m.Command}
	}
	return m.Int(0), nil
}

// RegisterKeyed binds name to port under a shared management key: any
// later caller presenting the same key may rebind the name from any node.
// A replica group registers its service name this way so the election
// winner — a different guardian on a different node — can take it over.
func (c *Client) RegisterKeyed(name string, port xrep.PortName, key string, timeout time.Duration) (int64, error) {
	m, err := c.call(timeout, "register_keyed", name, port, key)
	if err != nil {
		return 0, err
	}
	if m.Command != OutcomeBound {
		return 0, &Error{Outcome: m.Command}
	}
	return m.Int(0), nil
}

// Lookup resolves name to its port and version.
func (c *Client) Lookup(name string, timeout time.Duration) (xrep.PortName, int64, error) {
	m, err := c.call(timeout, "lookup", name)
	if err != nil {
		return xrep.PortName{}, 0, err
	}
	if m.Command != "binding" {
		return xrep.PortName{}, 0, &Error{Outcome: m.Command}
	}
	return m.Port(0), m.Int(1), nil
}

// Unregister drops a binding.
func (c *Client) Unregister(name string, timeout time.Duration) error {
	m, err := c.call(timeout, "unregister", name)
	if err != nil {
		return err
	}
	if m.Command != OutcomeDropped {
		return &Error{Outcome: m.Command}
	}
	return nil
}

// List returns all bindings as (name, port, version) triples.
func (c *Client) List(timeout time.Duration) (map[string]xrep.PortName, error) {
	m, err := c.call(timeout, "list")
	if err != nil {
		return nil, err
	}
	out := make(map[string]xrep.PortName)
	seq, _ := m.Args[0].(xrep.Seq)
	for _, e := range seq {
		triple, ok := e.(xrep.Seq)
		if !ok || len(triple) != 3 {
			continue
		}
		name, ok1 := triple[0].(xrep.Str)
		port, ok2 := triple[1].(xrep.PortName)
		if ok1 && ok2 {
			out[string(name)] = port
		}
	}
	return out, nil
}

func (c *Client) call(timeout time.Duration, cmd string, args ...any) (*guardian.Message, error) {
	if err := c.proc.SendReplyTo(c.ns, c.reply.Name(), cmd, args...); err != nil {
		return nil, err
	}
	m, st := c.proc.Receive(timeout, c.reply)
	switch st {
	case guardian.RecvOK:
		if m.IsFailure() {
			return nil, &Error{Outcome: "failure: " + m.FailureText()}
		}
		return m, nil
	case guardian.RecvTimeout:
		return nil, &Error{Outcome: "timeout"}
	default:
		return nil, guardian.ErrKilled
	}
}

// Error reports a non-success outcome from the service.
type Error struct{ Outcome string }

// Error implements error.
func (e *Error) Error() string { return "nameserv: " + e.Outcome }

// FormatPort renders a port's global name as "node/guardian/port" — the
// textual form ports cross process boundaries in when no name service is
// reachable yet (configuration files, command lines, log output). It is
// the bootstrap complement of the name service: something has to name the
// name service's own port.
func FormatPort(p xrep.PortName) string {
	return fmt.Sprintf("%s/%d/%d", p.Node, p.Guardian, p.Port)
}

// ParsePort is FormatPort's inverse. Node names containing '/' are not
// representable; the runtime never generates them.
func ParsePort(s string) (xrep.PortName, error) {
	i := strings.LastIndexByte(s, '/')
	if i < 0 {
		return xrep.PortName{}, fmt.Errorf("nameserv: port name %q: want node/guardian/port", s)
	}
	j := strings.LastIndexByte(s[:i], '/')
	if j <= 0 {
		return xrep.PortName{}, fmt.Errorf("nameserv: port name %q: want node/guardian/port", s)
	}
	g, err := strconv.ParseUint(s[j+1:i], 10, 64)
	if err != nil {
		return xrep.PortName{}, fmt.Errorf("nameserv: port name %q: bad guardian id: %w", s, err)
	}
	p, err := strconv.ParseUint(s[i+1:], 10, 64)
	if err != nil {
		return xrep.PortName{}, fmt.Errorf("nameserv: port name %q: bad port id: %w", s, err)
	}
	if g == 0 || p == 0 {
		return xrep.PortName{}, fmt.Errorf("nameserv: port name %q: ids start at 1", s)
	}
	return xrep.PortName{Node: s[:j], Guardian: g, Port: p}, nil
}
