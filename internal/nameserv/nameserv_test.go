package nameserv

import (
	"testing"
	"time"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

const testTimeout = 5 * time.Second

func deploy(t *testing.T) (*guardian.World, xrep.PortName, *Client, *guardian.Node) {
	t.Helper()
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(Def())
	nsNode := w.MustAddNode("registry")
	created, err := nsNode.Bootstrap(DefName)
	if err != nil {
		t.Fatal(err)
	}
	cliNode := w.MustAddNode("app")
	_, proc, err := cliNode.NewDriver("svc")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(proc, created.Ports[0])
	if err != nil {
		t.Fatal(err)
	}
	return w, created.Ports[0], c, nsNode
}

func somePort(node string, g, p uint64) xrep.PortName {
	return xrep.PortName{Node: node, Guardian: g, Port: p}
}

func TestRegisterLookup(t *testing.T) {
	_, _, c, _ := deploy(t)
	target := somePort("app", 7, 1)
	v, err := c.Register("airline/east", target, testTimeout)
	if err != nil || v != 1 {
		t.Fatalf("register: v=%d err=%v", v, err)
	}
	got, gv, err := c.Lookup("airline/east", testTimeout)
	if err != nil || got != target || gv != 1 {
		t.Fatalf("lookup: %v v=%d err=%v", got, gv, err)
	}
}

func TestLookupUnbound(t *testing.T) {
	_, _, c, _ := deploy(t)
	_, _, err := c.Lookup("ghost", testTimeout)
	if err == nil {
		t.Fatal("lookup of unbound name succeeded")
	}
	if nserr, ok := err.(*Error); !ok || nserr.Outcome != OutcomeNotBound {
		t.Fatalf("err = %v, want not_bound", err)
	}
}

func TestRebindBumpsVersion(t *testing.T) {
	_, _, c, _ := deploy(t)
	if _, err := c.Register("svc", somePort("app", 1, 1), testTimeout); err != nil {
		t.Fatal(err)
	}
	v, err := c.Register("svc", somePort("app", 2, 1), testTimeout)
	if err != nil || v != 2 {
		t.Fatalf("rebind: v=%d err=%v", v, err)
	}
	port, gv, err := c.Lookup("svc", testTimeout)
	if err != nil || port.Guardian != 2 || gv != 2 {
		t.Fatalf("lookup after rebind: %v v=%d", port, gv)
	}
}

func TestOnlyOwnerMayRebindOrDrop(t *testing.T) {
	w, ns, c, _ := deploy(t)
	if _, err := c.Register("mine", somePort("app", 1, 1), testTimeout); err != nil {
		t.Fatal(err)
	}
	// A different principal on another node.
	other := w.MustAddNode("intruder")
	_, proc2, err := other.NewDriver("x")
	if err != nil {
		t.Fatal(err)
	}
	c2, err := NewClient(proc2, ns)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c2.Register("mine", somePort("intruder", 9, 9), testTimeout); err == nil {
		t.Fatal("foreign rebind succeeded")
	}
	if err := c2.Unregister("mine", testTimeout); err == nil {
		t.Fatal("foreign unregister succeeded")
	}
	// The owner can still manage it.
	if err := c.Unregister("mine", testTimeout); err != nil {
		t.Fatalf("owner unregister: %v", err)
	}
	if err := c.Unregister("mine", testTimeout); err == nil {
		t.Fatal("double unregister succeeded")
	}
}

func TestRegistryNodeMayManageAnyBinding(t *testing.T) {
	w, ns, c, nsNode := deploy(t)
	_ = w
	if _, err := c.Register("svc", somePort("app", 1, 1), testTimeout); err != nil {
		t.Fatal(err)
	}
	// The owner of the registry's node exercises physical control.
	_, admin, err := nsNode.NewDriver("admin")
	if err != nil {
		t.Fatal(err)
	}
	ca, err := NewClient(admin, ns)
	if err != nil {
		t.Fatal(err)
	}
	if err := ca.Unregister("svc", testTimeout); err != nil {
		t.Fatalf("registry-node admin unregister: %v", err)
	}
}

func TestList(t *testing.T) {
	_, _, c, _ := deploy(t)
	names := []string{"a", "b", "c"}
	for i, n := range names {
		if _, err := c.Register(n, somePort("app", uint64(i+1), 1), testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	got, err := c.List(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("List = %v", got)
	}
	for i, n := range names {
		if got[n].Guardian != uint64(i+1) {
			t.Fatalf("List[%s] = %v", n, got[n])
		}
	}
}

func TestBindingsSurviveCrash(t *testing.T) {
	_, _, c, nsNode := deploy(t)
	target := somePort("app", 3, 2)
	if _, err := c.Register("durable", target, testTimeout); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Register("durable", target, testTimeout); err != nil {
		t.Fatal(err) // bump to v2
	}
	if _, err := c.Register("gone", somePort("app", 4, 1), testTimeout); err != nil {
		t.Fatal(err)
	}
	if err := c.Unregister("gone", testTimeout); err != nil {
		t.Fatal(err)
	}
	nsNode.Crash()
	if err := nsNode.Restart(); err != nil {
		t.Fatal(err)
	}
	port, v, err := c.Lookup("durable", testTimeout)
	if err != nil || port != target || v != 2 {
		t.Fatalf("after recovery: %v v=%d err=%v", port, v, err)
	}
	if _, _, err := c.Lookup("gone", testTimeout); err == nil {
		t.Fatal("dropped binding resurrected by recovery")
	}
	// Ownership also recovers: the original owner can still rebind.
	if v, err := c.Register("durable", somePort("app", 5, 1), testTimeout); err != nil || v != 3 {
		t.Fatalf("owner rebind after recovery: v=%d err=%v", v, err)
	}
}

func TestEndToEndDiscovery(t *testing.T) {
	// The full pattern: a service registers itself, an unrelated client
	// discovers it by name and talks to it.
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(Def())
	echoType := guardian.NewPortType("echo_port").
		Msg("echo", xrep.KindString).Replies("echo", "echoed")
	echoReply := guardian.NewPortType("echo_reply").Msg("echoed", xrep.KindString)
	w.MustRegister(&guardian.GuardianDef{
		TypeName: "echo",
		Provides: []*guardian.PortType{echoType},
		Init: func(ctx *guardian.Ctx) {
			// The service registers its own port at startup; the name
			// service's port arrives as a creation argument.
			if len(ctx.Args) == 1 {
				if nsPort, ok := ctx.Args[0].(xrep.PortName); ok {
					if cl, err := NewClient(ctx.Proc, nsPort); err == nil {
						_, _ = cl.Register("echo-service", ctx.Ports[0].Name(), testTimeout)
					}
				}
			}
			//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
			guardian.NewReceiver(ctx.Ports[0]).
				When("echo", func(pr *guardian.Process, m *guardian.Message) {
					if !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "echoed", m.Str(0))
					}
				}).
				Loop(ctx.Proc, nil)
		},
	})
	registry := w.MustAddNode("registry")
	nsCreated, err := registry.Bootstrap(DefName)
	if err != nil {
		t.Fatal(err)
	}
	svcNode := w.MustAddNode("svc")
	if _, err := svcNode.Bootstrap("echo", nsCreated.Ports[0]); err != nil {
		t.Fatal(err)
	}
	cliNode := w.MustAddNode("cli")
	g, proc, err := cliNode.NewDriver("user")
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(proc, nsCreated.Ports[0])
	if err != nil {
		t.Fatal(err)
	}
	// Discover (the service registers asynchronously; poll briefly).
	var echoPort xrep.PortName
	deadline := time.Now().Add(2 * time.Second)
	for {
		if p, _, err := c.Lookup("echo-service", testTimeout); err == nil {
			echoPort = p
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("service never registered itself")
		}
		time.Sleep(5 * time.Millisecond)
	}
	reply := g.MustNewPort(echoReply, 4)
	if err := proc.SendReplyTo(echoPort, reply.Name(), "echo", "found you"); err != nil {
		t.Fatal(err)
	}
	m, st := proc.Receive(testTimeout, reply)
	if st != guardian.RecvOK || m.Str(0) != "found you" {
		t.Fatalf("discovered service: %v %v", st, m)
	}
}

func TestFormatParsePort(t *testing.T) {
	cases := []xrep.PortName{
		{Node: "alpha", Guardian: 1, Port: 1},
		{Node: "branch-east", Guardian: 42, Port: 7},
		{Node: "a/b", Guardian: 2, Port: 3}, // '/' in node: parse still splits on the LAST two
	}
	for _, want := range cases {
		got, err := ParsePort(FormatPort(want))
		if err != nil {
			t.Fatalf("%v: %v", want, err)
		}
		if got != want {
			t.Fatalf("round trip: %v != %v", got, want)
		}
	}
	for _, bad := range []string{"", "alpha", "alpha/1", "/1/2", "alpha/x/2", "alpha/1/y", "alpha/0/1", "alpha/1/0"} {
		if _, err := ParsePort(bad); err == nil {
			t.Fatalf("ParsePort(%q) succeeded", bad)
		}
	}
}
