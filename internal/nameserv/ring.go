package nameserv

// Ring membership. The name service hosts the versioned consistent-hash
// rings package ring defines, the same way it hosts name bindings: a ring
// is an opaque, epoch-stamped blob the service stores durably and serves
// to anyone, with a two-step update protocol —
//
//	ring_propose(name, epoch, blob)   stage epoch = committed+1
//	ring_commit(name, epoch)          flip the staged epoch live
//
// The gap between propose and commit is where live rebalancing happens:
// a rebalance driver stages the next ring, migrates every affected range
// guardian-to-guardian (bank shard handoff), and only then commits, so a
// client can never resolve an epoch whose ranges have not been moved.
// The blob is opaque here on purpose: the name service versions placement,
// it does not interpret it, which keeps this package free of a dependency
// on package ring (whose Router depends on this package).
//
// Proposals are idempotent (re-proposing the staged epoch restages it) so
// a rebalance driver that crashed mid-migration can retry from the top.
// Epoch arithmetic is the only arbitration: a proposal for any epoch other
// than committed+1 is refused with the current state. Concurrent drivers
// racing distinct changes at the same epoch are not arbitrated beyond
// last-write-wins on the staged blob; deployments run one rebalancer, as
// cmd/node's ring commands and the DST harness both do.

import (
	"time"

	"repro/internal/wire"
	"repro/internal/xrep"
)

// Ring reply commands.
const (
	RingStateReply = "ring_state"
	RingStaged     = "ring_staged"
	RingCommitted  = "ring_committed"
	RingStale      = "ring_stale"
)

// ringEntry is one ring's durable state.
type ringEntry struct {
	committedEpoch int64
	committed      string // opaque marshaled ring
	pendingEpoch   int64
	pending        string
}

// ringLogRec names the stable-log record for ring state changes.
const ringLogRec = "ns/ring"

// ringRecord encodes one ring stage/commit for the log.
func ringRecord(kind, name string, epoch int64, blob string) []byte {
	b, err := wire.MarshalValue(xrep.Rec{Name: ringLogRec, Fields: xrep.Seq{
		xrep.Str(kind), xrep.Str(name), xrep.Int(epoch), xrep.Str(blob),
	}})
	if err != nil {
		panic(err)
	}
	return b
}

// replayRing folds one record into the ring table; ok is false for
// records that are not ring records.
func (st *state) replayRing(v xrep.Value) bool {
	rec, isRec := v.(xrep.Rec)
	if !isRec || rec.Name != ringLogRec || len(rec.Fields) != 4 {
		return false
	}
	kind, _ := rec.Fields[0].(xrep.Str)
	name, _ := rec.Fields[1].(xrep.Str)
	epoch, _ := rec.Fields[2].(xrep.Int)
	blob, _ := rec.Fields[3].(xrep.Str)
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.rings[string(name)]
	if e == nil {
		e = &ringEntry{}
		st.rings[string(name)] = e
	}
	switch string(kind) {
	case "stage":
		e.pendingEpoch, e.pending = int64(epoch), string(blob)
	case "commit":
		e.committedEpoch, e.committed = int64(epoch), string(blob)
		if e.pendingEpoch == int64(epoch) {
			e.pendingEpoch, e.pending = 0, ""
		}
	}
	return true
}

// RingState is a client's view of one ring's versions.
type RingState struct {
	CommittedEpoch int64
	Committed      []byte
	PendingEpoch   int64
	Pending        []byte
}

// RingGet fetches a ring's current state. A ring nobody has proposed yet
// comes back with all fields zero — bootstrapping is proposing epoch 1.
func (c *Client) RingGet(name string, timeout time.Duration) (RingState, error) {
	m, err := c.call(timeout, "ring_get", name)
	if err != nil {
		return RingState{}, err
	}
	if m.Command != RingStateReply {
		return RingState{}, &Error{Outcome: m.Command}
	}
	return RingState{
		CommittedEpoch: m.Int(0), Committed: []byte(m.Str(1)),
		PendingEpoch: m.Int(2), Pending: []byte(m.Str(3)),
	}, nil
}

// RingPropose stages blob as the ring's next epoch, which must be the
// committed epoch + 1. On an epoch mismatch it returns ErrRingStale along
// with the service's committed state so the caller can rebase.
func (c *Client) RingPropose(name string, epoch int64, blob []byte, timeout time.Duration) (RingState, error) {
	m, err := c.call(timeout, "ring_propose", name, epoch, string(blob))
	if err != nil {
		return RingState{}, err
	}
	switch m.Command {
	case RingStaged:
		return RingState{PendingEpoch: m.Int(0), Pending: blob}, nil
	case RingStale:
		return RingState{CommittedEpoch: m.Int(0), Committed: []byte(m.Str(1))}, ErrRingStale
	}
	return RingState{}, &Error{Outcome: m.Command}
}

// RingCommit flips the staged epoch live. Committing the already-committed
// epoch is an idempotent success, so a driver retrying after a lost reply
// converges.
func (c *Client) RingCommit(name string, epoch int64, timeout time.Duration) error {
	m, err := c.call(timeout, "ring_commit", name, epoch)
	if err != nil {
		return err
	}
	switch m.Command {
	case RingCommitted:
		return nil
	case RingStale:
		return ErrRingStale
	}
	return &Error{Outcome: m.Command}
}

// ErrRingStale reports a ring operation against the wrong epoch.
var ErrRingStale = &Error{Outcome: "ring epoch stale"}
