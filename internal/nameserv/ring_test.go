package nameserv

import (
	"bytes"
	"testing"
)

func TestRingProposeCommitGet(t *testing.T) {
	_, _, c, _ := deploy(t)

	// Fresh ring: all zeros.
	rs, err := c.RingGet("accts", testTimeout)
	if err != nil || rs.CommittedEpoch != 0 || rs.PendingEpoch != 0 {
		t.Fatalf("fresh ring: %+v err=%v", rs, err)
	}

	// Bootstrap is proposing epoch 1.
	blob1 := []byte("ring-epoch-1")
	if _, err := c.RingPropose("accts", 1, blob1, testTimeout); err != nil {
		t.Fatal(err)
	}
	rs, _ = c.RingGet("accts", testTimeout)
	if rs.PendingEpoch != 1 || !bytes.Equal(rs.Pending, blob1) || rs.CommittedEpoch != 0 {
		t.Fatalf("after propose: %+v", rs)
	}

	// Idempotent re-propose (a driver retrying after a lost reply).
	if _, err := c.RingPropose("accts", 1, blob1, testTimeout); err != nil {
		t.Fatalf("re-propose: %v", err)
	}

	if err := c.RingCommit("accts", 1, testTimeout); err != nil {
		t.Fatal(err)
	}
	rs, _ = c.RingGet("accts", testTimeout)
	if rs.CommittedEpoch != 1 || !bytes.Equal(rs.Committed, blob1) || rs.PendingEpoch != 0 {
		t.Fatalf("after commit: %+v", rs)
	}

	// Idempotent re-commit of the live epoch.
	if err := c.RingCommit("accts", 1, testTimeout); err != nil {
		t.Fatalf("re-commit: %v", err)
	}

	// Wrong-epoch proposals and commits are refused with the live state.
	if _, err := c.RingPropose("accts", 3, []byte("x"), testTimeout); err != ErrRingStale {
		t.Fatalf("skip-epoch propose: err=%v", err)
	}
	if st, err := c.RingPropose("accts", 1, []byte("x"), testTimeout); err != ErrRingStale {
		t.Fatalf("replay-epoch propose: err=%v", err)
	} else if st.CommittedEpoch != 1 || !bytes.Equal(st.Committed, blob1) {
		t.Fatalf("stale propose reply state: %+v", st)
	}
	if err := c.RingCommit("accts", 2, testTimeout); err != ErrRingStale {
		t.Fatalf("commit of unstaged epoch: err=%v", err)
	}
}

func TestRingSurvivesCrash(t *testing.T) {
	_, _, c, nsNode := deploy(t)

	blob1, blob2 := []byte("epoch-1"), []byte("epoch-2")
	if _, err := c.RingPropose("accts", 1, blob1, testTimeout); err != nil {
		t.Fatal(err)
	}
	if err := c.RingCommit("accts", 1, testTimeout); err != nil {
		t.Fatal(err)
	}
	// Stage epoch 2 but crash before committing: the staged state must
	// survive so the rebalance driver can resume and commit.
	if _, err := c.RingPropose("accts", 2, blob2, testTimeout); err != nil {
		t.Fatal(err)
	}

	nsNode.Crash()
	if err := nsNode.Restart(); err != nil {
		t.Fatal(err)
	}

	rs, err := c.RingGet("accts", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if rs.CommittedEpoch != 1 || !bytes.Equal(rs.Committed, blob1) {
		t.Fatalf("committed ring lost: %+v", rs)
	}
	if rs.PendingEpoch != 2 || !bytes.Equal(rs.Pending, blob2) {
		t.Fatalf("staged ring lost: %+v", rs)
	}
	if err := c.RingCommit("accts", 2, testTimeout); err != nil {
		t.Fatal(err)
	}
	rs, _ = c.RingGet("accts", testTimeout)
	if rs.CommittedEpoch != 2 || !bytes.Equal(rs.Committed, blob2) {
		t.Fatalf("post-recovery commit: %+v", rs)
	}

	// Name bindings and rings share the log without interference.
	if _, err := c.Register("svc", somePort("app", 9, 1), testTimeout); err != nil {
		t.Fatal(err)
	}
}
