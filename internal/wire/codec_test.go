package wire

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/xrep"
)

func roundTrip(t *testing.T, v xrep.Value) xrep.Value {
	t.Helper()
	b, err := MarshalValue(v)
	if err != nil {
		t.Fatalf("MarshalValue(%v): %v", v, err)
	}
	got, err := UnmarshalValue(b)
	if err != nil {
		t.Fatalf("UnmarshalValue(%v): %v", v, err)
	}
	return got
}

func TestValueRoundTripScalars(t *testing.T) {
	cases := []xrep.Value{
		xrep.Null{},
		xrep.Bool(true),
		xrep.Bool(false),
		xrep.Int(0),
		xrep.Int(1),
		xrep.Int(-1),
		xrep.Int(math.MaxInt64),
		xrep.Int(math.MinInt64),
		xrep.Real(0),
		xrep.Real(3.141592653589793),
		xrep.Real(math.Inf(1)),
		xrep.Str(""),
		xrep.Str("hello, 世界"),
		xrep.Bytes{},
		xrep.Bytes{0, 255, 127},
	}
	for _, v := range cases {
		if got := roundTrip(t, v); !xrep.Equal(got, v) {
			t.Errorf("round trip %v = %v", v, got)
		}
	}
}

func TestValueRoundTripNaN(t *testing.T) {
	b, err := MarshalValue(xrep.Real(math.NaN()))
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalValue(b)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(got.(xrep.Real))) {
		t.Fatalf("NaN round trip = %v", got)
	}
}

func TestValueRoundTripComposites(t *testing.T) {
	cases := []xrep.Value{
		xrep.Seq{},
		xrep.Seq{xrep.Int(1), xrep.Str("a"), xrep.Seq{xrep.Bool(true)}},
		xrep.Rec{Name: "flight", Fields: xrep.Seq{xrep.Int(22), xrep.Str("BOS")}},
		xrep.Rec{Name: "empty", Fields: xrep.Seq{}},
		xrep.PortName{Node: "node-7", Guardian: 42, Port: 3},
		xrep.PortName{},
		xrep.Token{Issuer: 9, Body: []byte("obj#4"), Seal: []byte{1, 2, 3, 4}},
		xrep.Token{Issuer: 0},
	}
	for _, v := range cases {
		if got := roundTrip(t, v); !xrep.Equal(got, v) {
			t.Errorf("round trip %v = %v", v, got)
		}
	}
}

func TestValueRoundTripRandomProperty(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		v := genValue(r, 4)
		if got := roundTrip(t, v); !xrep.Equal(got, v) {
			t.Fatalf("iteration %d: %v round-tripped to %v", i, v, got)
		}
	}
}

// genValue mirrors the xrep test generator for codec fuzzing.
func genValue(r *rand.Rand, depth int) xrep.Value {
	if depth <= 0 {
		switch r.Intn(8) {
		case 0:
			return xrep.Int(r.Int63() - r.Int63())
		case 1:
			return xrep.Str(strings.Repeat("s", r.Intn(20)))
		case 2:
			return xrep.Bool(r.Intn(2) == 0)
		case 3:
			return xrep.Real(r.NormFloat64() * 1e6)
		case 4:
			b := make(xrep.Bytes, r.Intn(16))
			r.Read(b)
			return b
		case 5:
			return xrep.PortName{Node: "n" + string(rune('0'+r.Intn(10))), Guardian: r.Uint64() % 1000, Port: r.Uint64() % 100}
		case 6:
			body := make([]byte, r.Intn(8))
			r.Read(body)
			return xrep.Token{Issuer: r.Uint64() % 50, Body: body, Seal: []byte{byte(r.Intn(256))}}
		default:
			return xrep.Null{}
		}
	}
	switch r.Intn(3) {
	case 0:
		n := r.Intn(5)
		s := make(xrep.Seq, n)
		for i := range s {
			s[i] = genValue(r, depth-1)
		}
		return s
	case 1:
		n := r.Intn(4)
		f := make(xrep.Seq, n)
		for i := range f {
			f[i] = genValue(r, depth-1)
		}
		return xrep.Rec{Name: "rec" + string(rune('a'+r.Intn(4))), Fields: f}
	default:
		return genValue(r, 0)
	}
}

func TestUnmarshalRejectsTruncation(t *testing.T) {
	full, err := MarshalValue(xrep.Seq{xrep.Int(12345), xrep.Str("truncate me")})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(full); i++ {
		if _, err := UnmarshalValue(full[:i]); err == nil {
			t.Fatalf("UnmarshalValue accepted %d-byte prefix of %d-byte value", i, len(full))
		}
	}
}

func TestUnmarshalRejectsTrailingGarbage(t *testing.T) {
	b, err := MarshalValue(xrep.Int(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalValue(append(b, 0x00)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

func TestUnmarshalRejectsBadTag(t *testing.T) {
	if _, err := UnmarshalValue([]byte{0x7F}); err == nil {
		t.Fatal("unknown tag accepted")
	}
}

func TestUnmarshalRejectsHostileLength(t *testing.T) {
	// A seq claiming 2^40 elements must fail fast, not allocate.
	buf := []byte{tagSeq, 0x80, 0x80, 0x80, 0x80, 0x80, 0x20}
	if _, err := UnmarshalValue(buf); err == nil {
		t.Fatal("hostile length accepted")
	}
	// A string claiming more bytes than remain.
	buf = []byte{tagStr, 0x20, 'a'}
	if _, err := UnmarshalValue(buf); err == nil {
		t.Fatal("oversize string length accepted")
	}
}

func TestUnmarshalRejectsDeepNesting(t *testing.T) {
	var b []byte
	for i := 0; i < maxWireDepth+10; i++ {
		b = append(b, tagSeq, 1)
	}
	b = append(b, tagNull)
	if _, err := UnmarshalValue(b); err == nil {
		t.Fatal("over-deep nesting accepted")
	}
}

func TestDecodedBytesDoNotAliasInput(t *testing.T) {
	b, err := MarshalValue(xrep.Bytes{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	v, err := UnmarshalValue(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range b {
		b[i] = 0xEE
	}
	if !bytes.Equal(v.(xrep.Bytes), []byte{1, 2, 3}) {
		t.Fatal("decoded bytes alias the input buffer")
	}
}

func TestEncodingDeterministic(t *testing.T) {
	v := xrep.Rec{Name: "r", Fields: xrep.Seq{xrep.Int(7), xrep.Str("x")}}
	a, err := MarshalValue(v)
	if err != nil {
		t.Fatal(err)
	}
	b, err := MarshalValue(v)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same value produced different encodings")
	}
}
