package wire

import (
	"testing"
	"time"

	"repro/internal/xrep"
)

func sampleFrame() *Frame {
	return &Frame{
		Dest:    xrep.PortName{Node: "boston", Guardian: 4, Port: 1},
		SrcNode: "chicago",
		MsgID:   77,
		Command: "reserve",
		Args: xrep.Seq{
			xrep.Int(22),         // flight_no
			xrep.Str("p-100432"), // passenger_id
			xrep.Str("1979-12-10"),
		},
		ReplyTo: xrep.PortName{Node: "chicago", Guardian: 9, Port: 2},
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := sampleFrame()
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Dest != f.Dest || got.SrcNode != f.SrcNode || got.MsgID != f.MsgID ||
		got.Command != f.Command || got.ReplyTo != f.ReplyTo {
		t.Fatalf("frame fields changed: %+v vs %+v", got, f)
	}
	if !xrep.Equal(got.Args, f.Args) {
		t.Fatalf("args changed: %v vs %v", got.Args, f.Args)
	}
}

func TestFrameWithoutReply(t *testing.T) {
	f := sampleFrame()
	f.ReplyTo = xrep.PortName{}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if !got.ReplyTo.IsZero() {
		t.Fatalf("replyless frame decoded with ReplyTo %v", got.ReplyTo)
	}
}

func TestFrameChecksumDetectsEveryBitFlip(t *testing.T) {
	f := sampleFrame()
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	for bit := 0; bit < len(b)*8; bit++ {
		mut := make([]byte, len(b))
		copy(mut, b)
		mut[bit/8] ^= 1 << (bit % 8)
		if _, err := UnmarshalFrame(mut); err == nil {
			t.Fatalf("bit flip at %d went undetected", bit)
		}
	}
}

func TestFrameRejectsShortInput(t *testing.T) {
	for n := 0; n < 10; n++ {
		if _, err := UnmarshalFrame(make([]byte, n)); err == nil {
			t.Fatalf("%d-byte frame accepted", n)
		}
	}
}

func TestFrameEmptyArgs(t *testing.T) {
	f := &Frame{
		Dest:    xrep.PortName{Node: "n", Guardian: 1, Port: 1},
		SrcNode: "m",
		Command: "done",
		Args:    xrep.Seq{},
	}
	b, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalFrame(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != "done" || len(got.Args) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestFragmentSinglePacketWhenSmall(t *testing.T) {
	pkts, err := Fragment(1, []byte("small"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) != 1 {
		t.Fatalf("got %d packets, want 1", len(pkts))
	}
}

func TestFragmentReassembleRoundTrip(t *testing.T) {
	frame := make([]byte, 10_000)
	for i := range frame {
		frame[i] = byte(i * 7)
	}
	pkts, err := Fragment(42, frame, 512)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 20 {
		t.Fatalf("10KB at 512 MTU produced only %d packets", len(pkts))
	}
	for _, p := range pkts {
		if len(p) > 512 {
			t.Fatalf("packet of %d bytes exceeds MTU 512", len(p))
		}
	}
	ra := NewReassembler()
	now := time.Unix(0, 0)
	var out []byte
	for i, p := range pkts {
		got, err := ra.Add("src", p, now)
		if err != nil {
			t.Fatalf("Add packet %d: %v", i, err)
		}
		if i < len(pkts)-1 && got != nil {
			t.Fatalf("message completed early at packet %d", i)
		}
		if got != nil {
			out = got
		}
	}
	if len(out) != len(frame) {
		t.Fatalf("reassembled %d bytes, want %d", len(out), len(frame))
	}
	for i := range out {
		if out[i] != frame[i] {
			t.Fatalf("byte %d: %d != %d", i, out[i], frame[i])
		}
	}
}

func TestReassembleOutOfOrder(t *testing.T) {
	frame := make([]byte, 3000)
	for i := range frame {
		frame[i] = byte(i)
	}
	pkts, err := Fragment(7, frame, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Deliver in reverse order.
	ra := NewReassembler()
	now := time.Unix(0, 0)
	var out []byte
	for i := len(pkts) - 1; i >= 0; i-- {
		got, err := ra.Add("s", pkts[i], now)
		if err != nil {
			t.Fatal(err)
		}
		if got != nil {
			out = got
		}
	}
	if len(out) != len(frame) {
		t.Fatalf("reverse-order reassembly gave %d bytes, want %d", len(out), len(frame))
	}
	for i := range out {
		if out[i] != frame[i] {
			t.Fatalf("byte %d mismatch", i)
		}
	}
}

func TestReassembleIgnoresDuplicates(t *testing.T) {
	pkts, err := Fragment(9, make([]byte, 1500), 600)
	if err != nil {
		t.Fatal(err)
	}
	ra := NewReassembler()
	now := time.Unix(0, 0)
	if _, err := ra.Add("s", pkts[0], now); err != nil {
		t.Fatal(err)
	}
	if got, err := ra.Add("s", pkts[0], now); err != nil || got != nil {
		t.Fatalf("duplicate fragment: got %v, err %v", got, err)
	}
	for _, p := range pkts[1:] {
		if _, err := ra.Add("s", p, now); err != nil {
			t.Fatal(err)
		}
	}
	// Late duplicate after completion must not resurrect the message.
	if got, err := ra.Add("s", pkts[1], now); err != nil || got != nil {
		t.Fatalf("post-completion duplicate: got %v, err %v", got, err)
	}
}

func TestReassembleSeparatesSenders(t *testing.T) {
	// Same msgID from different senders must not be merged.
	pktsA, _ := Fragment(5, []byte("aaaaaaaaaa"), 0)
	pktsB, _ := Fragment(5, []byte("bbbbbbbbbb"), 0)
	ra := NewReassembler()
	now := time.Unix(0, 0)
	gotA, err := ra.Add("A", pktsA[0], now)
	if err != nil {
		t.Fatal(err)
	}
	gotB, err := ra.Add("B", pktsB[0], now)
	if err != nil {
		t.Fatal(err)
	}
	if string(gotA) != "aaaaaaaaaa" || string(gotB) != "bbbbbbbbbb" {
		t.Fatalf("senders merged: %q / %q", gotA, gotB)
	}
}

func TestReassemblerRejectsCorruptPacket(t *testing.T) {
	pkts, _ := Fragment(3, []byte("payload payload"), 0)
	pkt := pkts[0]
	pkt[len(pkt)/2] ^= 0x10
	ra := NewReassembler()
	if _, err := ra.Add("s", pkt, time.Unix(0, 0)); err == nil {
		t.Fatal("corrupt packet accepted")
	}
}

func TestReassemblerRejectsInconsistentCount(t *testing.T) {
	a, _ := Fragment(4, make([]byte, 1000), 400)
	b, _ := Fragment(4, make([]byte, 5000), 400)
	ra := NewReassembler()
	now := time.Unix(0, 0)
	if _, err := ra.Add("s", a[0], now); err != nil {
		t.Fatal(err)
	}
	if _, err := ra.Add("s", b[3], now); err == nil {
		t.Fatal("inconsistent fragment count accepted")
	}
}

func TestReassemblerSweepEvictsStale(t *testing.T) {
	pkts, _ := Fragment(8, make([]byte, 2000), 600)
	ra := NewReassembler()
	t0 := time.Unix(100, 0)
	if _, err := ra.Add("s", pkts[0], t0); err != nil {
		t.Fatal(err)
	}
	if ra.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", ra.Pending())
	}
	if n := ra.Sweep(t0.Add(time.Second), 10*time.Second); n != 0 {
		t.Fatalf("early sweep evicted %d", n)
	}
	if n := ra.Sweep(t0.Add(time.Minute), 10*time.Second); n != 1 {
		t.Fatalf("late sweep evicted %d, want 1", n)
	}
	if ra.Pending() != 0 {
		t.Fatalf("Pending = %d after sweep, want 0", ra.Pending())
	}
}

func TestFragmentRejectsTinyMTU(t *testing.T) {
	if _, err := Fragment(1, []byte("x"), 10); err == nil {
		t.Fatal("MTU below packet overhead accepted")
	}
}

func TestFragmentEndToEndWithFrame(t *testing.T) {
	f := sampleFrame()
	f.Args = append(f.Args, xrep.Bytes(make([]byte, 5000)))
	raw, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	pkts, err := Fragment(f.MsgID, raw, 1000)
	if err != nil {
		t.Fatal(err)
	}
	ra := NewReassembler()
	now := time.Unix(0, 0)
	var frameBytes []byte
	for _, p := range pkts {
		got, err := ra.Add(f.SrcNode, p, now)
		if err != nil {
			t.Fatal(err)
		}
		if got != nil {
			frameBytes = got
		}
	}
	got, err := UnmarshalFrame(frameBytes)
	if err != nil {
		t.Fatal(err)
	}
	if got.Command != "reserve" || !xrep.Equal(got.Args, f.Args) {
		t.Fatal("frame did not survive fragmentation round trip")
	}
}
