package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"repro/internal/xrep"
)

// Frame is a complete message as constructed by the send command (§3.4
// step 2): the destination port, the command identifier, the encoded
// arguments, and the optional replyto port (which "is really an extra
// argument of the message").
type Frame struct {
	// Dest is the target port's global name.
	Dest xrep.PortName
	// SrcNode is the sending node's address, used to route system failure
	// replies and for reassembly keying.
	SrcNode string
	// MsgID is unique per sending node; it keys fragment reassembly.
	MsgID uint64
	// SrcGuardian identifies the sending guardian on SrcNode. The runtime
	// stamps it; receiving guardians may use it as the principal for
	// access-control checks (§2.3).
	SrcGuardian uint64
	// Command is the command identifier.
	Command string
	// Args holds the already-encoded argument values, left to right.
	Args xrep.Seq
	// ReplyTo, when non-zero, is where responses (including system failure
	// messages) should be sent.
	ReplyTo xrep.PortName
}

// Frame format constants.
const (
	frameMagic   = 0x4C477D9 // "LG" + 1979 & 0xFFF
	frameVersion = 1

	flagHasReply = 0x01
)

// Frame errors.
var (
	ErrBadMagic    = errors.New("wire: bad frame magic")
	ErrBadVersion  = errors.New("wire: unsupported frame version")
	ErrBadChecksum = errors.New("wire: frame checksum mismatch")
	ErrFrameShort  = errors.New("wire: frame too short")
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Marshal encodes the frame, appending a CRC-32C of the body — the
// "redundant information for error detection" the paper assigns to the
// system.
func (f *Frame) Marshal() ([]byte, error) {
	buf := make([]byte, 0, 64+len(f.Command))
	buf = binary.BigEndian.AppendUint32(buf, frameMagic)
	buf = append(buf, frameVersion)
	flags := byte(0)
	if !f.ReplyTo.IsZero() {
		flags |= flagHasReply
	}
	buf = append(buf, flags)
	var err error
	if buf, err = AppendValue(buf, f.Dest); err != nil {
		return nil, err
	}
	buf = binary.AppendUvarint(buf, uint64(len(f.SrcNode)))
	buf = append(buf, f.SrcNode...)
	buf = binary.AppendUvarint(buf, f.MsgID)
	buf = binary.AppendUvarint(buf, f.SrcGuardian)
	buf = binary.AppendUvarint(buf, uint64(len(f.Command)))
	buf = append(buf, f.Command...)
	if buf, err = AppendValue(buf, f.Args); err != nil {
		return nil, err
	}
	if flags&flagHasReply != 0 {
		if buf, err = AppendValue(buf, f.ReplyTo); err != nil {
			return nil, err
		}
	}
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, crcTable)), nil
}

// UnmarshalFrame verifies the checksum and decodes a frame. A checksum
// mismatch returns ErrBadChecksum; the runtime discards such messages, so a
// corrupted message is never forwarded to its target port.
func UnmarshalFrame(buf []byte) (*Frame, error) {
	if len(buf) < 10 {
		return nil, ErrFrameShort
	}
	body, sum := buf[:len(buf)-4], binary.BigEndian.Uint32(buf[len(buf)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return nil, ErrBadChecksum
	}
	r := &reader{buf: body}
	magic, err := r.take(4)
	if err != nil {
		return nil, err
	}
	if binary.BigEndian.Uint32(magic) != frameMagic {
		return nil, ErrBadMagic
	}
	ver, err := r.byte()
	if err != nil {
		return nil, err
	}
	if ver != frameVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, ver)
	}
	flags, err := r.byte()
	if err != nil {
		return nil, err
	}
	f := &Frame{}
	destV, err := r.value(0)
	if err != nil {
		return nil, fmt.Errorf("wire: frame dest: %w", err)
	}
	dest, ok := destV.(xrep.PortName)
	if !ok {
		return nil, errors.New("wire: frame dest is not a port name")
	}
	f.Dest = dest
	n, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	src, err := r.take(n)
	if err != nil {
		return nil, err
	}
	f.SrcNode = string(src)
	if f.MsgID, err = r.uvarint(); err != nil {
		return nil, err
	}
	if f.SrcGuardian, err = r.uvarint(); err != nil {
		return nil, err
	}
	cn, err := r.uvarint()
	if err != nil {
		return nil, err
	}
	cmd, err := r.take(cn)
	if err != nil {
		return nil, err
	}
	f.Command = string(cmd)
	argsV, err := r.value(0)
	if err != nil {
		return nil, fmt.Errorf("wire: frame args: %w", err)
	}
	args, ok := argsV.(xrep.Seq)
	if !ok {
		return nil, errors.New("wire: frame args are not a sequence")
	}
	f.Args = args
	if flags&flagHasReply != 0 {
		rv, err := r.value(0)
		if err != nil {
			return nil, fmt.Errorf("wire: frame replyto: %w", err)
		}
		rp, ok := rv.(xrep.PortName)
		if !ok {
			return nil, errors.New("wire: frame replyto is not a port name")
		}
		f.ReplyTo = rp
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes in frame", r.remaining())
	}
	return f, nil
}
