package wire

// Reassembly hygiene under a real receiver: these tests push fragments
// through actual UDP sockets on loopback and feed whatever the kernel
// hands back into a Reassembler, keyed by the observed source address —
// exactly what a node's network attachment does on the UDP transport. The
// interesting properties are the ones pre-split in-memory buffers cannot
// exercise: datagrams truncated in flight, two senders sharing a msgID
// space distinguished only by source address, and partial messages that
// must be evicted rather than retained forever.

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"
)

// udpPair is a receiver socket plus n sender sockets on loopback.
type udpPair struct {
	recv    *net.UDPConn
	senders []*net.UDPConn
}

func newUDPPair(t *testing.T, senders int) *udpPair {
	t.Helper()
	recv, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { recv.Close() })
	p := &udpPair{recv: recv}
	for i := 0; i < senders; i++ {
		s, err := net.DialUDP("udp", nil, recv.LocalAddr().(*net.UDPAddr))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		p.senders = append(p.senders, s)
	}
	return p
}

// read returns the next datagram and its observed source, or fails after
// the deadline.
func (p *udpPair) read(t *testing.T) (string, []byte) {
	t.Helper()
	buf := make([]byte, 65536)
	_ = p.recv.SetReadDeadline(time.Now().Add(5 * time.Second))
	n, src, err := p.recv.ReadFromUDP(buf)
	if err != nil {
		t.Fatalf("udp read: %v", err)
	}
	out := make([]byte, n)
	copy(out, buf[:n])
	return src.String(), out
}

func TestUDPReassemblyStalePartialEviction(t *testing.T) {
	p := newUDPPair(t, 1)
	ra := NewReassembler()

	frame := bytes.Repeat([]byte("stale?"), 200)
	pkts, err := Fragment(9, frame, 256)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkts) < 3 {
		t.Fatalf("want >=3 fragments, got %d", len(pkts))
	}
	// All but the last fragment arrive; the last is "lost in flight".
	start := time.Unix(1000, 0)
	for _, pkt := range pkts[:len(pkts)-1] {
		if _, err := p.senders[0].Write(pkt); err != nil {
			t.Fatal(err)
		}
		src, got := p.read(t)
		frameBytes, err := ra.Add(src, got, start)
		if err != nil {
			t.Fatalf("fragment rejected: %v", err)
		}
		if frameBytes != nil {
			t.Fatal("incomplete message delivered")
		}
	}
	if ra.Pending() != 1 {
		t.Fatalf("pending %d, want 1", ra.Pending())
	}
	// Too young to evict; then old enough.
	if dropped := ra.Sweep(start.Add(time.Second), 30*time.Second); dropped != 0 {
		t.Fatalf("young partial evicted: %d", dropped)
	}
	if dropped := ra.Sweep(start.Add(31*time.Second), 30*time.Second); dropped != 1 {
		t.Fatalf("stale partial not evicted: %d", dropped)
	}
	if ra.Pending() != 0 {
		t.Fatalf("pending %d after sweep", ra.Pending())
	}
	// A straggler fragment of the evicted message starts a fresh (and
	// forever-incomplete) partial rather than crashing or completing.
	if _, err := p.senders[0].Write(pkts[len(pkts)-1]); err != nil {
		t.Fatal(err)
	}
	src, got := p.read(t)
	if frameBytes, err := ra.Add(src, got, start.Add(32*time.Second)); err != nil || frameBytes != nil {
		t.Fatalf("straggler: frame=%v err=%v", frameBytes != nil, err)
	}
}

func TestUDPReassemblyInterleavedSendersSharedMsgIDs(t *testing.T) {
	p := newUDPPair(t, 2)
	ra := NewReassembler()

	// Both senders use msgID 7 — per-node id spaces overlap freely; only
	// the observed source address separates their fragment streams.
	frameA := bytes.Repeat([]byte("AAAA"), 300)
	frameB := bytes.Repeat([]byte("BBBB"), 300)
	pktsA, err := Fragment(7, frameA, 200)
	if err != nil {
		t.Fatal(err)
	}
	pktsB, err := Fragment(7, frameB, 200)
	if err != nil {
		t.Fatal(err)
	}
	if len(pktsA) < 2 || len(pktsB) < 2 {
		t.Fatalf("want multi-fragment messages, got %d/%d", len(pktsA), len(pktsB))
	}
	// Strictly interleave the two fragment trains on the wire.
	n := len(pktsA)
	if len(pktsB) > n {
		n = len(pktsB)
	}
	sent := 0
	for i := 0; i < n; i++ {
		if i < len(pktsA) {
			if _, err := p.senders[0].Write(pktsA[i]); err != nil {
				t.Fatal(err)
			}
			sent++
		}
		if i < len(pktsB) {
			if _, err := p.senders[1].Write(pktsB[i]); err != nil {
				t.Fatal(err)
			}
			sent++
		}
	}
	now := time.Unix(2000, 0)
	var gotA, gotB []byte
	for i := 0; i < sent; i++ {
		src, pkt := p.read(t)
		frame, err := ra.Add(src, pkt, now)
		if err != nil {
			t.Fatalf("fragment %d rejected: %v", i, err)
		}
		if frame == nil {
			continue
		}
		switch src {
		case p.senders[0].LocalAddr().String():
			gotA = frame
		case p.senders[1].LocalAddr().String():
			gotB = frame
		default:
			t.Fatalf("frame from unexpected source %s", src)
		}
	}
	if !bytes.Equal(gotA, frameA) {
		t.Fatalf("sender A's message corrupted or lost (%d bytes)", len(gotA))
	}
	if !bytes.Equal(gotB, frameB) {
		t.Fatalf("sender B's message corrupted or lost (%d bytes)", len(gotB))
	}
	if ra.Pending() != 0 {
		t.Fatalf("pending %d after both completed", ra.Pending())
	}
}

func TestUDPReassemblyTruncatedDatagramRejected(t *testing.T) {
	p := newUDPPair(t, 1)
	ra := NewReassembler()
	now := time.Unix(3000, 0)

	pkts, err := Fragment(3, bytes.Repeat([]byte("x"), 400), 0)
	if err != nil {
		t.Fatal(err)
	}
	pkt := pkts[0]
	for _, cut := range []int{1, 4, len(pkt) / 2, len(pkt) - 1} {
		if _, err := p.senders[0].Write(pkt[:cut]); err != nil {
			t.Fatal(err)
		}
		src, got := p.read(t)
		if len(got) != cut {
			t.Fatalf("kernel reshaped datagram: wrote %d read %d", cut, len(got))
		}
		frame, err := ra.Add(src, got, now)
		if frame != nil || err == nil {
			t.Fatalf("truncated datagram (%d of %d bytes) accepted", cut, len(pkt))
		}
		if !errors.Is(err, ErrBadPacket) && !errors.Is(err, ErrPacketCRC) {
			t.Fatalf("unexpected rejection: %v", err)
		}
	}
	// Truncation leaves no partial state behind...
	if ra.Pending() != 0 {
		t.Fatalf("pending %d after rejects", ra.Pending())
	}
	// ...and the intact datagram still goes through afterward.
	if _, err := p.senders[0].Write(pkt); err != nil {
		t.Fatal(err)
	}
	src, got := p.read(t)
	frame, err := ra.Add(src, got, now)
	if err != nil || frame == nil {
		t.Fatalf("intact datagram rejected: %v", err)
	}
}
