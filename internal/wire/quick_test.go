package wire

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/xrep"
)

// genFrame builds a random but well-formed frame.
func genFrame(r *rand.Rand) *Frame {
	f := &Frame{
		Dest: xrep.PortName{
			Node:     "n" + string(rune('a'+r.Intn(5))),
			Guardian: r.Uint64() % 1000,
			Port:     r.Uint64() % 100,
		},
		SrcNode:     "src" + string(rune('a'+r.Intn(5))),
		MsgID:       r.Uint64(),
		SrcGuardian: r.Uint64() % 1000,
		Command:     []string{"reserve", "cancel", "x", ""}[r.Intn(4)],
		Args:        genArgsSeq(r),
	}
	if r.Intn(2) == 0 {
		f.ReplyTo = xrep.PortName{Node: "r", Guardian: 1 + r.Uint64()%9, Port: 1 + r.Uint64()%9}
	}
	return f
}

// genArgsSeq makes sure the top-level value is a Seq, as frames require.
func genArgsSeq(r *rand.Rand) xrep.Seq {
	n := r.Intn(5)
	s := make(xrep.Seq, n)
	for i := range s {
		s[i] = genValue(r, 2)
	}
	return s
}

func TestFrameRoundTripQuick(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fr := genFrame(r)
		fr.Args = genArgsSeq(r)
		raw, err := fr.Marshal()
		if err != nil {
			return false
		}
		got, err := UnmarshalFrame(raw)
		if err != nil {
			return false
		}
		return got.Dest == fr.Dest &&
			got.SrcNode == fr.SrcNode &&
			got.MsgID == fr.MsgID &&
			got.SrcGuardian == fr.SrcGuardian &&
			got.Command == fr.Command &&
			got.ReplyTo == fr.ReplyTo &&
			xrep.Equal(got.Args, fr.Args)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestFragmentReassembleQuick(t *testing.T) {
	f := func(seed int64, sizeHint uint16, mtuHint uint8) bool {
		r := rand.New(rand.NewSource(seed))
		size := int(sizeHint)%8000 + 1
		mtu := int(mtuHint)%900 + 64 // ≥ packet overhead
		frame := make([]byte, size)
		r.Read(frame)
		pkts, err := Fragment(r.Uint64(), frame, mtu)
		if err != nil {
			return false
		}
		// Shuffle delivery order.
		r.Shuffle(len(pkts), func(i, j int) { pkts[i], pkts[j] = pkts[j], pkts[i] })
		ra := NewReassembler()
		var out []byte
		for _, p := range pkts {
			got, err := ra.Add("s", p, time.Unix(0, 0))
			if err != nil {
				return false
			}
			if got != nil {
				out = got
			}
		}
		if len(out) != len(frame) {
			return false
		}
		for i := range out {
			if out[i] != frame[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCorruptFrameNeverDecodesQuick(t *testing.T) {
	// Random single-bit flips must always be rejected by the checksum.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		fr := genFrame(r)
		fr.Args = genArgsSeq(r)
		raw, err := fr.Marshal()
		if err != nil {
			return false
		}
		bit := r.Intn(len(raw) * 8)
		raw[bit/8] ^= 1 << (bit % 8)
		_, err = UnmarshalFrame(raw)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
