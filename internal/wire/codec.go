// Package wire implements the system's low-level message machinery (§3.3,
// §3.4): turning a message (command identifier plus external-rep argument
// values) into "a string of bits with appropriate format", breaking large
// messages into packets and reassembling them, and using "redundant
// information for error detection" (CRC-32 checksums) so that a message is
// forwarded to its target port only "when the bits of the message are not
// in error".
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/xrep"
)

// Value tags on the wire. These are part of the system-wide fixed meaning
// of the built-in types and must never be renumbered.
const (
	tagNull  = 0x00
	tagFalse = 0x01
	tagTrue  = 0x02
	tagInt   = 0x03
	tagReal  = 0x04
	tagStr   = 0x05
	tagBytes = 0x06
	tagSeq   = 0x07
	tagRec   = 0x08
	tagPort  = 0x09
	tagToken = 0x0A
)

// Codec errors.
var (
	ErrTruncated  = errors.New("wire: truncated value")
	ErrBadTag     = errors.New("wire: unknown value tag")
	ErrOversize   = errors.New("wire: length field exceeds remaining input")
	ErrValueDepth = errors.New("wire: value nesting too deep")
)

// maxWireDepth bounds decoder recursion against hostile input.
const maxWireDepth = 128

// AppendValue appends the wire encoding of v to dst and returns the
// extended slice.
func AppendValue(dst []byte, v xrep.Value) ([]byte, error) {
	switch x := v.(type) {
	case nil, xrep.Null:
		return append(dst, tagNull), nil
	case xrep.Bool:
		if x {
			return append(dst, tagTrue), nil
		}
		return append(dst, tagFalse), nil
	case xrep.Int:
		dst = append(dst, tagInt)
		return binary.AppendVarint(dst, int64(x)), nil
	case xrep.Real:
		dst = append(dst, tagReal)
		return binary.BigEndian.AppendUint64(dst, math.Float64bits(float64(x))), nil
	case xrep.Str:
		dst = append(dst, tagStr)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...), nil
	case xrep.Bytes:
		dst = append(dst, tagBytes)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		return append(dst, x...), nil
	case xrep.Seq:
		dst = append(dst, tagSeq)
		dst = binary.AppendUvarint(dst, uint64(len(x)))
		var err error
		for _, e := range x {
			if dst, err = AppendValue(dst, e); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case xrep.Rec:
		dst = append(dst, tagRec)
		dst = binary.AppendUvarint(dst, uint64(len(x.Name)))
		dst = append(dst, x.Name...)
		dst = binary.AppendUvarint(dst, uint64(len(x.Fields)))
		var err error
		for _, f := range x.Fields {
			if dst, err = AppendValue(dst, f); err != nil {
				return nil, err
			}
		}
		return dst, nil
	case xrep.PortName:
		dst = append(dst, tagPort)
		dst = binary.AppendUvarint(dst, uint64(len(x.Node)))
		dst = append(dst, x.Node...)
		dst = binary.AppendUvarint(dst, x.Guardian)
		return binary.AppendUvarint(dst, x.Port), nil
	case xrep.Token:
		dst = append(dst, tagToken)
		dst = binary.AppendUvarint(dst, x.Issuer)
		dst = binary.AppendUvarint(dst, uint64(len(x.Body)))
		dst = append(dst, x.Body...)
		dst = binary.AppendUvarint(dst, uint64(len(x.Seal)))
		return append(dst, x.Seal...), nil
	default:
		return nil, fmt.Errorf("wire: cannot encode %T", v)
	}
}

// MarshalValue returns the wire encoding of v.
func MarshalValue(v xrep.Value) ([]byte, error) {
	return AppendValue(nil, v)
}

// reader is a cursor over an immutable byte slice.
type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) byte() (byte, error) {
	if r.off >= len(r.buf) {
		return 0, ErrTruncated
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

func (r *reader) uvarint() (uint64, error) {
	v, n := binary.Uvarint(r.buf[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

func (r *reader) varint() (int64, error) {
	v, n := binary.Varint(r.buf[r.off:])
	if n <= 0 {
		return 0, ErrTruncated
	}
	r.off += n
	return v, nil
}

func (r *reader) take(n uint64) ([]byte, error) {
	if n > uint64(r.remaining()) {
		return nil, ErrOversize
	}
	b := r.buf[r.off : r.off+int(n)]
	r.off += int(n)
	return b, nil
}

// DecodeValue decodes one value from r.
func (r *reader) value(depth int) (xrep.Value, error) {
	if depth > maxWireDepth {
		return nil, ErrValueDepth
	}
	tag, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch tag {
	case tagNull:
		return xrep.Null{}, nil
	case tagFalse:
		return xrep.Bool(false), nil
	case tagTrue:
		return xrep.Bool(true), nil
	case tagInt:
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		return xrep.Int(v), nil
	case tagReal:
		b, err := r.take(8)
		if err != nil {
			return nil, err
		}
		return xrep.Real(math.Float64frombits(binary.BigEndian.Uint64(b))), nil
	case tagStr:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.take(n)
		if err != nil {
			return nil, err
		}
		return xrep.Str(b), nil
	case tagBytes:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		b, err := r.take(n)
		if err != nil {
			return nil, err
		}
		out := make([]byte, n)
		copy(out, b)
		return xrep.Bytes(out), nil
	case tagSeq:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if n > uint64(r.remaining()) {
			return nil, ErrOversize // each element needs ≥1 byte
		}
		seq := make(xrep.Seq, n)
		for i := range seq {
			if seq[i], err = r.value(depth + 1); err != nil {
				return nil, err
			}
		}
		return seq, nil
	case tagRec:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		name, err := r.take(n)
		if err != nil {
			return nil, err
		}
		cnt, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		if cnt > uint64(r.remaining()) {
			return nil, ErrOversize
		}
		fields := make(xrep.Seq, cnt)
		for i := range fields {
			if fields[i], err = r.value(depth + 1); err != nil {
				return nil, err
			}
		}
		return xrep.Rec{Name: string(name), Fields: fields}, nil
	case tagPort:
		n, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		node, err := r.take(n)
		if err != nil {
			return nil, err
		}
		g, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		p, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		return xrep.PortName{Node: string(node), Guardian: g, Port: p}, nil
	case tagToken:
		issuer, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		bn, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		body, err := r.take(bn)
		if err != nil {
			return nil, err
		}
		sn, err := r.uvarint()
		if err != nil {
			return nil, err
		}
		seal, err := r.take(sn)
		if err != nil {
			return nil, err
		}
		bodyC := make([]byte, len(body))
		copy(bodyC, body)
		sealC := make([]byte, len(seal))
		copy(sealC, seal)
		return xrep.Token{Issuer: issuer, Body: bodyC, Seal: sealC}, nil
	default:
		return nil, fmt.Errorf("%w: 0x%02x", ErrBadTag, tag)
	}
}

// UnmarshalValue decodes a single value, requiring the buffer to be fully
// consumed.
func UnmarshalValue(buf []byte) (xrep.Value, error) {
	r := &reader{buf: buf}
	v, err := r.value(0)
	if err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("wire: %d trailing bytes after value", r.remaining())
	}
	return v, nil
}
