package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"
	"time"
)

// This file implements §3.4 step 3: "The message is sent (after being
// broken into packets if necessary)" and the receiving side's rule that a
// message is forwarded to its port only "when the message is entirely and
// correctly received at the receiving node (i.e., all packets have arrived,
// and the bits of the message are not in error)".

// Packet header layout (big endian):
//
//	byte  0     magic 'K'
//	bytes 1-8   message id
//	then uvarint index, uvarint count, uvarint payload length, payload,
//	and a trailing CRC-32C over everything before it.
const packetMagic = 0x4B

// Fragmentation errors.
var (
	ErrBadPacket    = errors.New("wire: malformed packet")
	ErrPacketCRC    = errors.New("wire: packet checksum mismatch")
	ErrInconsistent = errors.New("wire: packet inconsistent with earlier fragments")
)

// packetOverhead is a safe upper bound on header+trailer bytes per packet.
const packetOverhead = 1 + 8 + 5 + 5 + 5 + 4

// Fragment splits a marshalled frame into packets no larger than mtu. When
// mtu is zero or the frame (plus one header) fits, a single packet is
// produced. The msgID ties the fragments back together at the receiver.
func Fragment(msgID uint64, frame []byte, mtu int) ([][]byte, error) {
	if len(frame) == 0 {
		return nil, errors.New("wire: empty frame")
	}
	chunk := len(frame)
	if mtu > 0 {
		avail := mtu - packetOverhead
		if avail <= 0 {
			return nil, fmt.Errorf("wire: MTU %d cannot fit packet overhead %d", mtu, packetOverhead)
		}
		if avail < chunk {
			chunk = avail
		}
	}
	count := (len(frame) + chunk - 1) / chunk
	out := make([][]byte, 0, count)
	for i := 0; i < count; i++ {
		lo, hi := i*chunk, (i+1)*chunk
		if hi > len(frame) {
			hi = len(frame)
		}
		payload := frame[lo:hi]
		pkt := make([]byte, 0, len(payload)+packetOverhead)
		pkt = append(pkt, packetMagic)
		pkt = binary.BigEndian.AppendUint64(pkt, msgID)
		pkt = binary.AppendUvarint(pkt, uint64(i))
		pkt = binary.AppendUvarint(pkt, uint64(count))
		pkt = binary.AppendUvarint(pkt, uint64(len(payload)))
		pkt = append(pkt, payload...)
		pkt = binary.BigEndian.AppendUint32(pkt, crc32.Checksum(pkt, crcTable))
		out = append(out, pkt)
	}
	return out, nil
}

// parsedPacket is one decoded, checksum-verified fragment.
type parsedPacket struct {
	msgID   uint64
	index   uint64
	count   uint64
	payload []byte
}

// parsePacket verifies the packet checksum and decodes the header. Corrupt
// packets fail here and are dropped, which is how "the bits of the message
// are not in error" is enforced.
func parsePacket(pkt []byte) (*parsedPacket, error) {
	// Minimum well-formed packet: magic(1) + id(8) + three 1-byte varints
	// + empty payload + CRC(4).
	if len(pkt) < 16 {
		return nil, ErrBadPacket
	}
	body, sum := pkt[:len(pkt)-4], binary.BigEndian.Uint32(pkt[len(pkt)-4:])
	if crc32.Checksum(body, crcTable) != sum {
		return nil, ErrPacketCRC
	}
	if body[0] != packetMagic {
		return nil, ErrBadPacket
	}
	r := &reader{buf: body, off: 1}
	idBytes, err := r.take(8)
	if err != nil {
		return nil, ErrBadPacket
	}
	p := &parsedPacket{msgID: binary.BigEndian.Uint64(idBytes)}
	if p.index, err = r.uvarint(); err != nil {
		return nil, ErrBadPacket
	}
	if p.count, err = r.uvarint(); err != nil {
		return nil, ErrBadPacket
	}
	n, err := r.uvarint()
	if err != nil {
		return nil, ErrBadPacket
	}
	if p.payload, err = r.take(n); err != nil {
		return nil, ErrBadPacket
	}
	if r.remaining() != 0 || p.count == 0 || p.index >= p.count {
		return nil, ErrBadPacket
	}
	return p, nil
}

// Reassembler collects fragments per (sender, message id) and yields the
// complete frame once every fragment has arrived. Duplicate fragments are
// ignored; partial messages are evicted by Sweep after MaxAge, modeling the
// receiver giving up on a message some of whose packets were lost.
type Reassembler struct {
	mu      sync.Mutex
	pending map[reasmKey]*reasmState
	// completed remembers recently finished message ids so duplicated
	// trailing fragments do not resurrect a message.
	completed map[reasmKey]time.Time
}

type reasmKey struct {
	sender string
	msgID  uint64
}

type reasmState struct {
	parts    [][]byte
	have     int
	count    int
	firstAdd time.Time
}

// NewReassembler returns an empty reassembler.
func NewReassembler() *Reassembler {
	return &Reassembler{
		pending:   make(map[reasmKey]*reasmState),
		completed: make(map[reasmKey]time.Time),
	}
}

// Add processes one packet from sender. When the packet completes a
// message it returns the reassembled frame bytes; otherwise it returns nil.
// Corrupt or inconsistent packets return an error and are dropped. now is
// the receiver's clock reading, used for age-based eviction.
func (ra *Reassembler) Add(sender string, pkt []byte, now time.Time) ([]byte, error) {
	p, err := parsePacket(pkt)
	if err != nil {
		return nil, err
	}
	key := reasmKey{sender, p.msgID}
	ra.mu.Lock()
	defer ra.mu.Unlock()
	if _, done := ra.completed[key]; done {
		return nil, nil // duplicate of an already-delivered message
	}
	st, ok := ra.pending[key]
	if !ok {
		st = &reasmState{parts: make([][]byte, p.count), count: int(p.count), firstAdd: now}
		ra.pending[key] = st
	}
	if int(p.count) != st.count {
		return nil, fmt.Errorf("%w: count %d vs %d", ErrInconsistent, p.count, st.count)
	}
	if st.parts[p.index] != nil {
		return nil, nil // duplicate fragment
	}
	buf := make([]byte, len(p.payload))
	copy(buf, p.payload)
	st.parts[p.index] = buf
	st.have++
	if st.have < st.count {
		return nil, nil
	}
	delete(ra.pending, key)
	ra.completed[key] = now
	total := 0
	for _, part := range st.parts {
		total += len(part)
	}
	frame := make([]byte, 0, total)
	for _, part := range st.parts {
		frame = append(frame, part...)
	}
	return frame, nil
}

// Sweep evicts partial messages older than maxAge and forgets completed
// ids older than maxAge. It returns the number of partial messages
// abandoned (each is a message that will never be delivered — exactly the
// paper's best-effort contract).
func (ra *Reassembler) Sweep(now time.Time, maxAge time.Duration) int {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	dropped := 0
	for k, st := range ra.pending {
		if now.Sub(st.firstAdd) > maxAge {
			delete(ra.pending, k)
			dropped++
		}
	}
	for k, t := range ra.completed {
		if now.Sub(t) > maxAge {
			delete(ra.completed, k)
		}
	}
	return dropped
}

// Pending reports the number of incomplete messages held.
func (ra *Reassembler) Pending() int {
	ra.mu.Lock()
	defer ra.mu.Unlock()
	return len(ra.pending)
}
