package exp

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/airline"
	"repro/internal/guardian"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// E6Params configures the transaction-robustness experiment.
type E6Params struct {
	// Transactions per scenario.
	Transactions int
	// RequestsPerTransaction is the reserve count per transaction.
	RequestsPerTransaction int
	// Capacity per (flight, date); small enough that oversell would show.
	Capacity int64
	// DeadlineMS is the transaction process's reply deadline.
	DeadlineMS int64
	Timeout    time.Duration
}

// E6Defaults is the full-size configuration.
var E6Defaults = E6Params{
	Transactions:           30,
	RequestsPerTransaction: 4,
	Capacity:               1000,
	DeadlineMS:             200,
	Timeout:                20 * time.Second,
}

// RunE6Transactions reproduces §3.5's robustness narrative: transactions
// run while the regional node or the UI node crashes; timeouts select the
// timeout arm, clerks retry idempotent requests, crashed UI nodes forget
// their transactions, and after final recovery no acknowledged reservation
// is lost and no seat double-booked.
func RunE6Transactions(p E6Params, scale Scale) (*Result, error) {
	p.Transactions = scale.N(p.Transactions, 4)
	res := &Result{ID: "E6 (Figure 5 / §3.5)"}
	tab := metrics.NewTable(
		"Figure 5 — transaction robustness under crash injection",
		"scenario", "transactions", "acked-reserves", "cant-communicate", "retries", "forgotten-trans", "lost-acked", "oversold-dates")
	res.Tables = append(res.Tables, tab)

	for _, scenario := range []string{"no-crash", "regional-crash", "ui-crash"} {
		row, err := runE6Scenario(p, scenario)
		if err != nil {
			return nil, err
		}
		tab.AddRow(scenario, p.Transactions, row.acked, row.cantComm, row.retries, row.forgotten, row.lostAcked, row.oversold)
		if row.lostAcked == 0 {
			res.Notef("HOLDS (%s): every acknowledged reservation survived (permanence of effect)", scenario)
		} else {
			res.Notef("DEVIATES (%s): %d acknowledged reservations lost", scenario, row.lostAcked)
		}
		if row.oversold == 0 {
			res.Notef("HOLDS (%s): no date oversold despite retries (idempotency)", scenario)
		} else {
			res.Notef("DEVIATES (%s): %d dates oversold", scenario, row.oversold)
		}
		if scenario == "regional-crash" && row.cantComm == 0 {
			res.Notef("NOTE (regional-crash): crash injected but no timeout observed — crash window may be too narrow")
		}
		if scenario == "ui-crash" {
			if row.forgotten > 0 {
				res.Notef("HOLDS (ui-crash): %d in-flight transaction(s) forgotten by the crash; the clerk redid the pending request in a fresh transaction without double booking", row.forgotten)
			} else {
				res.Notef("DEVIATES (ui-crash): crash did not forget the in-flight transaction")
			}
		}
	}
	return res, nil
}

type e6Row struct {
	acked     int
	cantComm  int
	retries   int
	forgotten int
	lostAcked int
	oversold  int
}

func runE6Scenario(p E6Params, scenario string) (e6Row, error) {
	var row e6Row
	w := guardian.NewWorld(guardian.Config{
		Net: netsim.Config{Seed: 11, BaseLatency: time.Millisecond},
	})
	if err := airline.RegisterDefs(w); err != nil {
		return row, err
	}
	sys, err := airline.Deploy(w, airline.SystemConfig{
		Regions:    []airline.RegionConfig{{Node: "region", Flights: []int64{1, 2}}},
		UINodes:    []string{"office"},
		Capacity:   p.Capacity,
		Org:        airline.OrgMonitor,
		DeadlineMS: p.DeadlineMS,
	})
	if err != nil {
		return row, err
	}
	office, _ := w.Node("office")
	region, _ := w.Node("region")

	// acked tracks every (flight, passenger, date) whose reserve the clerk
	// saw acknowledged "ok" — the ground truth for the permanence audit.
	type seat struct {
		flight int64
		pid    string
		date   string
	}
	var acked []seat

	ui := sys.UIPorts["office"]
	dg := workload.NewDateGen(3, workload.SkewUniform, 8)
	for tx := 0; tx < p.Transactions; tx++ {
		// Crash injection windows.
		if scenario == "regional-crash" && tx == p.Transactions/3 {
			region.Crash()
		}
		if scenario == "regional-crash" && tx == p.Transactions/3+2 {
			if err := region.Restart(); err != nil {
				return row, err
			}
		}
		clerk, err := airline.NewClerk(office, fmt.Sprintf("clerk%d", tx))
		if err != nil {
			return row, err
		}
		pid := fmt.Sprintf("cust-%03d", tx)
		if err := clerk.Begin(ui, pid, p.Timeout); err != nil {
			// UI briefly unavailable around a crash: skip this customer.
			continue
		}
		for r := 0; r < p.RequestsPerTransaction; r++ {
			flight := int64(r%2 + 1)
			date := dg.Next()
			// §3.5's second failure story: the node running the
			// transaction process fails mid-conversation. The transaction
			// is forgotten; the clerk starts a new one at the re-deployed
			// interface guardian, "beginning with the request being worked
			// on when the node failed".
			if scenario == "ui-crash" && tx == p.Transactions/2 && r == p.RequestsPerTransaction/2 {
				office.Crash()
				if err := office.Restart(); err != nil {
					return row, err
				}
				if ui, err = sys.RedeployUI("office", p.DeadlineMS); err != nil {
					return row, err
				}
				if _, err := clerk.Reserve(flight, date, p.Timeout); err != nil {
					row.forgotten++ // old transaction port is gone
				}
				// The clerk (a driver guardian) also died with the node;
				// re-create it and redo the request in a new transaction.
				clerk, err = airline.NewClerk(office, fmt.Sprintf("clerk%db", tx))
				if err != nil {
					return row, err
				}
				if err := clerk.Begin(ui, pid, p.Timeout); err != nil {
					return row, err
				}
			}
			outcome, err := clerk.Reserve(flight, date, p.Timeout)
			if err != nil {
				break // transaction process gone (ui crash window)
			}
			if strings.Contains(outcome, "communicate") {
				row.cantComm++
				// The clerk retries the idempotent request once.
				row.retries++
				outcome, err = clerk.Reserve(flight, date, p.Timeout)
				if err != nil {
					break
				}
			}
			if outcome == airline.OutcomeOK || outcome == airline.OutcomePreReserved {
				row.acked++
				acked = append(acked, seat{flight, pid, date})
			}
		}
		_, _, _ = clerk.Done(p.Timeout) // best-effort finish
	}

	// Final recovery: bounce the regional node once more so the audit sees
	// only durable state.
	region.Crash()
	if err := region.Restart(); err != nil {
		return row, err
	}
	waitQuiesce(w)

	// Audit: every acknowledged reserve must still be present, and no
	// (flight, date) may exceed capacity.
	auditor, err := airline.NewAgent(office, "auditor")
	if err != nil {
		return row, err
	}
	checked := make(map[seat]bool)
	for _, s := range acked {
		if checked[s] {
			continue
		}
		checked[s] = true
		out, err := auditor.Request(sys.Directory[s.flight], "reserve", s.flight, s.pid, s.date, p.Timeout)
		if err != nil || out != airline.OutcomePreReserved {
			row.lostAcked++
		}
	}
	// Oversell check via guardian snapshots at the regional node.
	for _, id := range region.Guardians() {
		g, ok := region.GuardianByID(id)
		if !ok || g.DefName() != airline.FlightDefName {
			continue
		}
		for _, date := range dg.Dates() {
			snap, ok := airline.SnapshotFlight(g, date)
			if ok && int64(snap.Reserved) > p.Capacity {
				row.oversold++
			}
		}
	}
	return row, nil
}
