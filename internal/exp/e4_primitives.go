package exp

import (
	"fmt"
	"time"

	"repro/internal/guardian"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sendprim"
	"repro/internal/xrep"
)

// E4Params configures the send-primitive comparison.
type E4Params struct {
	// Exchanges per (pattern, primitive) cell.
	Exchanges int
	// BatchK is the request count of the many-requests/one-response
	// pattern.
	BatchK int
	// NetLatency is the one-way latency, making blocking visible.
	NetLatency time.Duration
	Timeout    time.Duration
}

// E4Defaults is the full-size configuration.
var E4Defaults = E4Params{
	Exchanges:  30,
	BatchK:     4,
	NetLatency: 2 * time.Millisecond,
	Timeout:    10 * time.Second,
}

// Port types of the E4 protocol guardians.
var (
	e4PrimaryType = guardian.NewPortType("e4_primary_port").
			Msg("req", xrep.KindString).
			Replies("req", "resp").
			Msg("req_sync", xrep.KindString, xrep.KindPortName, xrep.KindRec).
			Msg("batch", xrep.KindString, xrep.KindBool).
			Replies("batch", "resp").
			Msg("batch_sync", xrep.KindString, xrep.KindBool, xrep.KindPortName, xrep.KindRec).
			Msg("batch_call", xrep.KindString, xrep.KindBool).
			Replies("batch_call", "resp").
			Msg("fwd", xrep.KindString).
			Msg("fwd_sync", xrep.KindString, xrep.KindPortName, xrep.KindRec).
			Msg("fwd_call", xrep.KindString).
			Replies("fwd_call", "resp")

	e4SecondaryType = guardian.NewPortType("e4_secondary_port").
			Msg("handoff", xrep.KindString).
			Replies("handoff", "resp").
			Msg("handoff_to", xrep.KindString, xrep.KindPortName).
			Msg("handoff_call", xrep.KindString).
			Replies("handoff_call", "resp")

	e4RespType = guardian.NewPortType("e4_resp_port").
			Msg("resp", xrep.KindString)
)

// e4Secondary answers handoffs: directly to the carried reply port (the
// paper's third-party response pattern) or back to the caller.
func e4SecondaryDef() *guardian.GuardianDef {
	return &guardian.GuardianDef{
		TypeName: "e4_secondary",
		Provides: []*guardian.PortType{e4SecondaryType},
		Init: func(ctx *guardian.Ctx) {
			guardian.NewReceiver(ctx.Ports[0]).
				When("handoff", func(pr *guardian.Process, m *guardian.Message) {
					if !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "resp", m.Str(0))
					}
				}).
				When("handoff_to", func(pr *guardian.Process, m *guardian.Message) {
					_ = pr.Send(m.Port(1), "resp", m.Str(0))
				}).
				When("handoff_call", func(pr *guardian.Process, m *guardian.Message) {
					if !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "resp", m.Str(0))
					}
				}).
				WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
					// §3.4 failure arm: a discarded message named this port
					// as its replyto. The measuring client counts losses by
					// timeout, so the report is dropped — deliberately.
				}).
				Loop(ctx.Proc, nil)
		},
	}
}

// e4Primary implements the server half of every protocol variant.
func e4PrimaryDef(secondary xrep.PortName) *guardian.GuardianDef {
	return &guardian.GuardianDef{
		TypeName: "e4_primary",
		Provides: []*guardian.PortType{e4PrimaryType},
		Init: func(ctx *guardian.Ctx) {
			batchCount := 0
			guardian.NewReceiver(ctx.Ports[0]).
				When("req", func(pr *guardian.Process, m *guardian.Message) {
					if !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "resp", m.Str(0))
					}
				}).
				When("req_sync", func(pr *guardian.Process, m *guardian.Message) {
					_ = sendprim.Acknowledge(pr, m)
					_ = pr.Send(m.Port(1), "resp", m.Str(0))
				}).
				When("batch", func(pr *guardian.Process, m *guardian.Message) {
					batchCount++
					if m.Bool(1) && !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "resp", fmt.Sprintf("%d", batchCount))
						batchCount = 0
					}
				}).
				When("batch_call", func(pr *guardian.Process, m *guardian.Message) {
					// Remote-transaction semantics: the server must respond
					// to every request, even the k-1 that carry no result.
					batchCount++
					result := ""
					if m.Bool(1) {
						result = fmt.Sprintf("%d", batchCount)
						batchCount = 0
					}
					if !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "resp", result)
					}
				}).
				When("batch_sync", func(pr *guardian.Process, m *guardian.Message) {
					_ = sendprim.Acknowledge(pr, m)
					batchCount++
					if m.Bool(1) {
						_ = pr.Send(m.Port(2), "resp", fmt.Sprintf("%d", batchCount))
						batchCount = 0
					}
				}).
				When("fwd", func(pr *guardian.Process, m *guardian.Message) {
					// Pass the requester's reply port along; the secondary
					// answers the requester directly.
					_ = pr.SendReplyTo(secondary, m.ReplyTo, "handoff", m.Str(0))
				}).
				WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
					// §3.4 failure arm: a discarded message named this port
					// as its replyto. The measuring client counts losses by
					// timeout, so the report is dropped — deliberately.
				}).
				When("fwd_sync", func(pr *guardian.Process, m *guardian.Message) {
					_ = sendprim.Acknowledge(pr, m)
					_ = pr.Send(secondary, "handoff_to", m.Str(0), m.Port(1))
				}).
				When("fwd_call", func(pr *guardian.Process, m *guardian.Message) {
					// Remote-transaction semantics force the reply to come
					// from the callee, so the primary must itself call the
					// secondary and then respond — two extra messages.
					reply, err := sendprim.Call(pr, secondary, e4RespType,
						sendprim.CallOptions{Timeout: 5 * time.Second}, "handoff_call", m.Str(0))
					if err != nil {
						return
					}
					if !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "resp", reply.Str(0))
					}
				}).
				Loop(ctx.Proc, nil)
		},
	}
}

// RunE4Primitives reproduces the §3 comparison: for the three exchange
// patterns observed in real protocols, count the messages each primitive
// needs and how long the sender stays blocked inside send operations. The
// paper's claim: the no-wait send matches every pattern with the fewest
// messages; the synchronization send and remote transaction send "would
// require additional messages to be exchanged".
func RunE4Primitives(p E4Params, scale Scale) (*Result, error) {
	p.Exchanges = scale.N(p.Exchanges, 3)
	res := &Result{ID: "E4 (§3 primitives)"}
	tab := metrics.NewTable(
		"§3 — send primitives by exchange pattern: messages per exchange, sender-blocked time, exchange latency",
		"pattern", "primitive", "msgs/exchange", "blocked-mean", "exchange-mean")
	res.Tables = append(res.Tables, tab)

	w := guardian.NewWorld(guardian.Config{Net: netsim.Config{BaseLatency: p.NetLatency}})
	w.MustRegister(e4SecondaryDef())
	nodeB := w.MustAddNode("srv-b")
	createdB, err := nodeB.Bootstrap("e4_secondary")
	if err != nil {
		return nil, err
	}
	w.MustRegister(e4PrimaryDef(createdB.Ports[0]))
	nodeA := w.MustAddNode("srv-a")
	createdA, err := nodeA.Bootstrap("e4_primary")
	if err != nil {
		return nil, err
	}
	primary := createdA.Ports[0]
	cli := w.MustAddNode("cli")
	g, drv, err := cli.NewDriver("client")
	if err != nil {
		return nil, err
	}
	resp := g.MustNewPort(e4RespType, 16)
	clock := w.Clock()
	stats := w.Stats()

	e4Blocked := make(map[string]*metrics.Histogram)
	for _, prim := range []string{"no-wait", "sync", "remote-call"} {
		for _, pat := range []string{"request/response", "k-requests/1-response", "third-party-response"} {
			e4Blocked[prim+pat] = metrics.NewHistogram()
		}
	}
	type cellResult struct {
		pattern, prim string
		msgs          float64
	}
	var cells []cellResult
	runCell := func(pattern, prim string, exchange func(i int) error) error {
		blocked := metrics.NewHistogram()
		latency := metrics.NewHistogram()
		waitQuiesce(w)
		before := stats.MessagesSent.Load()
		for i := 0; i < p.Exchanges; i++ {
			t0 := clock.Now()
			if err := exchange(i); err != nil {
				return fmt.Errorf("%s/%s: %w", pattern, prim, err)
			}
			latency.Observe(clock.Now().Sub(t0))
			_ = blocked
		}
		waitQuiesce(w)
		msgs := float64(stats.MessagesSent.Load()-before) / float64(p.Exchanges)
		tab.AddRow(pattern, prim, msgs, e4Blocked[prim+pattern].Snapshot().Mean.String(),
			latency.Snapshot().Mean.String())
		cells = append(cells, cellResult{pattern, prim, msgs})
		return nil
	}

	recv := func() error {
		m, st := drv.Receive(p.Timeout, resp)
		if st != guardian.RecvOK {
			return fmt.Errorf("receive status %v", st)
		}
		if m.IsFailure() {
			return fmt.Errorf("failure: %s", m.FailureText())
		}
		return nil
	}
	block := func(key string, f func() error) error {
		h := e4Blocked[key]
		t0 := clock.Now()
		err := f()
		h.Observe(clock.Now().Sub(t0))
		return err
	}

	// Pattern 1: request / response.
	if err := runCell("request/response", "no-wait", func(i int) error {
		if err := block("no-waitrequest/response", func() error {
			return drv.SendReplyTo(primary, resp.Name(), "req", "x")
		}); err != nil {
			return err
		}
		return recv()
	}); err != nil {
		return nil, err
	}
	if err := runCell("request/response", "sync", func(i int) error {
		if err := block("syncrequest/response", func() error {
			return sendprim.SyncSend(drv, primary, p.Timeout, "req_sync", "x", resp.Name())
		}); err != nil {
			return err
		}
		return recv()
	}); err != nil {
		return nil, err
	}
	if err := runCell("request/response", "remote-call", func(i int) error {
		return block("remote-callrequest/response", func() error {
			_, err := sendprim.Call(drv, primary, e4RespType,
				sendprim.CallOptions{Timeout: p.Timeout}, "req", "x")
			return err
		})
	}); err != nil {
		return nil, err
	}

	// Pattern 2: several requests, one response.
	if err := runCell("k-requests/1-response", "no-wait", func(i int) error {
		for k := 0; k < p.BatchK; k++ {
			last := k == p.BatchK-1
			if err := block("no-waitk-requests/1-response", func() error {
				return drv.SendReplyTo(primary, resp.Name(), "batch", "x", last)
			}); err != nil {
				return err
			}
		}
		return recv()
	}); err != nil {
		return nil, err
	}
	if err := runCell("k-requests/1-response", "sync", func(i int) error {
		for k := 0; k < p.BatchK; k++ {
			last := k == p.BatchK-1
			if err := block("synck-requests/1-response", func() error {
				return sendprim.SyncSend(drv, primary, p.Timeout, "batch_sync", "x", last, resp.Name())
			}); err != nil {
				return err
			}
		}
		return recv()
	}); err != nil {
		return nil, err
	}
	if err := runCell("k-requests/1-response", "remote-call", func(i int) error {
		// Remote-transaction semantics demand a response per request.
		for k := 0; k < p.BatchK; k++ {
			last := k == p.BatchK-1
			if err := block("remote-callk-requests/1-response", func() error {
				_, err := sendprim.Call(drv, primary, e4RespType,
					sendprim.CallOptions{Timeout: p.Timeout}, "batch_call", "x", last)
				return err
			}); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return nil, err
	}

	// Pattern 3: response from a different guardian than the recipient.
	if err := runCell("third-party-response", "no-wait", func(i int) error {
		if err := block("no-waitthird-party-response", func() error {
			return drv.SendReplyTo(primary, resp.Name(), "fwd", "x")
		}); err != nil {
			return err
		}
		return recv()
	}); err != nil {
		return nil, err
	}
	if err := runCell("third-party-response", "sync", func(i int) error {
		if err := block("syncthird-party-response", func() error {
			return sendprim.SyncSend(drv, primary, p.Timeout, "fwd_sync", "x", resp.Name())
		}); err != nil {
			return err
		}
		return recv()
	}); err != nil {
		return nil, err
	}
	if err := runCell("third-party-response", "remote-call", func(i int) error {
		return block("remote-callthird-party-response", func() error {
			_, err := sendprim.Call(drv, primary, e4RespType,
				sendprim.CallOptions{Timeout: p.Timeout}, "fwd_call", "x")
			return err
		})
	}); err != nil {
		return nil, err
	}

	// Shape check: no-wait uses the fewest messages in every pattern.
	byPattern := map[string]map[string]float64{}
	for _, c := range cells {
		if byPattern[c.pattern] == nil {
			byPattern[c.pattern] = map[string]float64{}
		}
		byPattern[c.pattern][c.prim] = c.msgs
	}
	for pattern, prims := range byPattern {
		nw := prims["no-wait"]
		cheapest := true
		for prim, m := range prims {
			if prim != "no-wait" && m < nw {
				cheapest = false
			}
		}
		if cheapest {
			res.Notef("HOLDS: no-wait send needs the fewest messages for %s (%.1f vs sync %.1f, call %.1f)",
				pattern, nw, prims["sync"], prims["remote-call"])
		} else {
			res.Notef("DEVIATES: no-wait send not cheapest for %s (%v)", pattern, prims)
		}
	}
	return res, nil
}
