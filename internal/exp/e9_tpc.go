package exp

import (
	"fmt"
	"time"

	"repro/internal/guardian"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/tpc"
	"repro/internal/xrep"
)

// E9Params configures the atomic-commitment experiment.
type E9Params struct {
	// ParticipantCounts is the fan-out sweep.
	ParticipantCounts []int
	// Transactions per cell.
	Transactions int
	// NetLatency is one-way latency between nodes.
	NetLatency time.Duration
	// LossRate for the fault-injected atomicity audit cell.
	LossRate float64
	Timeout  time.Duration
}

// E9Defaults is the full-size configuration.
var E9Defaults = E9Params{
	ParticipantCounts: []int{2, 4, 8},
	Transactions:      25,
	NetLatency:        time.Millisecond,
	LossRate:          0.15,
	Timeout:           30 * time.Second,
}

// RunE9Tpc validates the paper's §3/§4 claim that the chosen primitive
// "can implement currently known protocols" by measuring the two-phase
// commit built entirely on the no-wait send (internal/tpc): message cost
// and latency per transaction as participants scale, and an atomicity
// audit under message loss and node crashes.
func RunE9Tpc(p E9Params, scale Scale) (*Result, error) {
	p.Transactions = scale.N(p.Transactions, 4)
	res := &Result{ID: "E9 (extension: §3 protocol expressiveness)"}
	tab := metrics.NewTable(
		"Two-phase commit on the no-wait send: cost vs participant count",
		"participants", "faults", "transactions", "committed", "msgs/tx", "mean-latency", "atomicity")
	res.Tables = append(res.Tables, tab)

	for _, n := range p.ParticipantCounts {
		row, err := runE9Cell(p, n, 0, false)
		if err != nil {
			return nil, err
		}
		tab.AddRow(n, "none", p.Transactions, row.committed, row.msgsPerTx, row.mean.String(), row.atomicity)
		if row.atomicity != "all-or-nothing" {
			res.Notef("DEVIATES: atomicity violated with %d participants, no faults", n)
		}
		// The theoretical floor is 4 messages per participant (prepare,
		// vote, decision, ack) plus 2 for the client exchange.
		floor := float64(4*n + 2)
		if row.msgsPerTx < floor-0.01 {
			res.Notef("DEVIATES: %d participants measured %.1f msgs/tx below the 4n+2 floor %.1f",
				n, row.msgsPerTx, floor)
		} else if row.msgsPerTx < floor+1.0 {
			res.Notef("HOLDS: %d participants cost %.1f msgs/tx (theoretical floor 4n+2 = %.0f)",
				n, row.msgsPerTx, floor)
		}
	}

	// Fault-injected cell: loss plus a participant crash mid-run.
	n := p.ParticipantCounts[len(p.ParticipantCounts)-1]
	row, err := runE9Cell(p, n, p.LossRate, true)
	if err != nil {
		return nil, err
	}
	tab.AddRow(n, fmt.Sprintf("%.0f%% loss + crash", p.LossRate*100),
		p.Transactions, row.committed, row.msgsPerTx, row.mean.String(), row.atomicity)
	if row.atomicity == "all-or-nothing" {
		res.Notef("HOLDS: atomicity preserved under %.0f%% loss and a participant crash (%d/%d committed, retries cost %.1f msgs/tx)",
			p.LossRate*100, row.committed, p.Transactions, row.msgsPerTx)
	} else {
		res.Notef("DEVIATES: atomicity violated under faults: %s", row.atomicity)
	}
	return res, nil
}

type e9Row struct {
	committed int
	msgsPerTx float64
	mean      time.Duration
	atomicity string
}

func runE9Cell(p E9Params, nParts int, loss float64, crash bool) (e9Row, error) {
	var row e9Row
	w := guardian.NewWorld(guardian.Config{
		Net: netsim.Config{Seed: 17, BaseLatency: p.NetLatency, LossRate: loss},
	})
	w.MustRegister(tpc.CoordinatorDef())
	w.MustRegister(tpc.NewParticipantDef("e9_participant", func() tpc.Resource {
		return tpc.NewSlotResource(map[string]int64{"unit": 1 << 30})
	}))
	coordNode := w.MustAddNode("coord")
	created, err := coordNode.Bootstrap(tpc.CoordinatorDefName, int64(300), int64(5))
	if err != nil {
		return row, err
	}
	parts := make([]xrep.PortName, nParts)
	partNodes := make([]*guardian.Node, nParts)
	partIDs := make([]uint64, nParts)
	for i := 0; i < nParts; i++ {
		pn := w.MustAddNode(fmt.Sprintf("part%d", i))
		pc, err := pn.Bootstrap("e9_participant")
		if err != nil {
			return row, err
		}
		parts[i] = pc.Ports[0]
		partNodes[i] = pn
		partIDs[i] = pc.GuardianID
	}
	clientNode := w.MustAddNode("client")
	g, client, err := clientNode.NewDriver("c")
	if err != nil {
		return row, err
	}
	reply := g.MustNewPort(tpc.ClientReplyType, 32)

	hist := metrics.NewHistogram()
	clock := w.Clock()
	stats := w.Stats()
	before := stats.MessagesSent.Load()
	outcomes := make(map[string]string, p.Transactions)

	for i := 0; i < p.Transactions; i++ {
		if crash && i == p.Transactions/2 {
			partNodes[0].Crash()
			if err := partNodes[0].Restart(); err != nil {
				return row, err
			}
		}
		txid := fmt.Sprintf("tx%03d", i)
		ops := make(xrep.Seq, nParts)
		for j, pp := range parts {
			ops[j] = xrep.Seq{pp, tpc.SlotOp("unit", 1)}
		}
		t0 := clock.Now()
		outcome := ""
		for attempt := 0; attempt < 12 && outcome == ""; attempt++ {
			if err := client.SendReplyTo(created.Ports[0], reply.Name(), "begin", txid, ops); err != nil {
				return row, err
			}
			deadline := clock.Now().Add(2 * time.Second)
			for clock.Now().Before(deadline) {
				m, st := client.Receive(deadline.Sub(clock.Now()), reply)
				if st != guardian.RecvOK {
					break
				}
				if !m.IsFailure() && m.Str(0) == txid {
					outcome = m.Command
					break
				}
			}
		}
		hist.Observe(clock.Now().Sub(t0))
		outcomes[txid] = outcome
		if outcome == tpc.OutcomeCommitted {
			row.committed++
		}
	}
	waitQuiesce(w)
	time.Sleep(20 * time.Millisecond)
	row.msgsPerTx = float64(stats.MessagesSent.Load()-before) / float64(p.Transactions)
	row.mean = hist.Snapshot().Mean

	// Atomicity audit: every participant must have applied exactly the
	// committed transactions' units.
	row.atomicity = "all-or-nothing"
	for i := range parts {
		pg, ok := partNodes[i].GuardianByID(partIDs[i])
		if !ok {
			row.atomicity = fmt.Sprintf("participant %d missing", i)
			break
		}
		r, ok := tpc.ParticipantResource(pg)
		if !ok || r == nil {
			row.atomicity = fmt.Sprintf("participant %d uninitialized", i)
			break
		}
		if got := r.(*tpc.SlotResource).Committed("unit"); got != int64(row.committed) {
			row.atomicity = fmt.Sprintf("participant %d has %d units, want %d", i, got, row.committed)
			break
		}
	}
	return row, nil
}
