package exp

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/amo"
	"repro/internal/bank"
	"repro/internal/durable"
	"repro/internal/guardian"
	"repro/internal/metrics"
	"repro/internal/nameserv"
	"repro/internal/netsim"
	"repro/internal/replica"
	"repro/internal/stable"
	"repro/internal/vtime"
	"repro/internal/xrep"
)

// E14Params configures the replication experiment.
type E14Params struct {
	// Transfers is the timed workload size across all clients, per arm.
	Transfers int
	// Clients run concurrently, each owning a disjoint account pair.
	Clients int
	// NetLatency is the one-way base latency; it is what a quorum ack
	// round costs on the wire.
	NetLatency time.Duration
	// SyncDelay models one forced write: the primary pays it on commit,
	// followers pay it again before acking.
	SyncDelay time.Duration
	// AttemptTimeout and Retries shape the at-most-once calls.
	AttemptTimeout time.Duration
	Retries        int
	// Heartbeat and Threshold shape failure detection: silence for about
	// Heartbeat×(Threshold+1) starts an election.
	Heartbeat time.Duration
	Threshold int
}

// E14Defaults is the full-size configuration.
var E14Defaults = E14Params{
	Transfers:      240,
	Clients:        6,
	NetLatency:     300 * time.Microsecond,
	SyncDelay:      200 * time.Microsecond,
	AttemptTimeout: 50 * time.Millisecond,
	Retries:        40,
	Heartbeat:      5 * time.Millisecond,
	Threshold:      2,
}

// RunE14Replica prices what replication adds to the paper's "permanence
// of effect" (§2.2). The same concurrent transfer workload runs against
// three arms of the same bank branch: a single node with group-committed
// durable storage (the baseline the durable-storage work established), a
// three-member replica group acking asynchronously, and the same group
// in quorum mode, where a commit does not return until a majority holds
// it. The quorum arm then loses its primary outright — permanent death,
// not a restart — and the time until a client, re-resolving the
// well-known name, gets its next reply is the failover cost. Money must
// be conserved across the takeover.
func RunE14Replica(p E14Params, scale Scale) (*Result, error) {
	p.Transfers = scale.N(p.Transfers, 30)
	if p.Clients > p.Transfers {
		p.Clients = p.Transfers
	}
	res := &Result{ID: "E14 (extension: replicated guardians with automatic failover)"}
	tab := metrics.NewTable(
		fmt.Sprintf("Replication arms: %d transfers, %v net latency, %v fsync",
			p.Transfers, p.NetLatency, p.SyncDelay),
		"mode", "ok", "failed", "commit-mean", "commit-p99", "shipped", "applied", "takeovers", "failover")
	res.Tables = append(res.Tables, tab)

	var single, quorum time.Duration
	for _, mode := range []string{"single", "async", "quorum"} {
		row, err := runE14Cell(p, mode)
		if err != nil {
			return nil, fmt.Errorf("exp: %s arm: %w", mode, err)
		}
		failover := "-"
		if mode != "single" {
			failover = row.failover.Round(time.Millisecond).String()
		}
		tab.AddRow(mode, row.ok, row.failed,
			row.mean.Round(time.Microsecond).String(), row.p99.Round(time.Microsecond).String(),
			row.shipped, row.applied, row.takeovers, failover)
		switch mode {
		case "single":
			single = row.mean
		case "quorum":
			quorum = row.mean
		}
		if !row.conserved {
			res.Notef("DEVIATES: %s arm lost money across the run (%d != %d)", mode, row.total, row.expected)
			continue
		}
		if mode != "single" {
			if row.takeovers >= 1 && row.afterOK {
				res.Notef("HOLDS: %s arm survived permanent primary death — takeover in %v, money conserved, client resumed via re-resolution",
					mode, row.failover.Round(time.Millisecond))
			} else {
				res.Notef("DEVIATES: %s arm did not fail over (takeovers=%d, resumed=%v)", mode, row.takeovers, row.afterOK)
			}
		}
	}
	if single > 0 && quorum > single {
		res.Notef("quorum-ack cost: %.1fx the single-node group commit per transfer (%v vs %v) — the price of surviving the primary",
			float64(quorum)/float64(single), quorum.Round(time.Microsecond), single.Round(time.Microsecond))
	}
	return res, nil
}

type e14Row struct {
	ok, failed int64
	mean, p99  time.Duration
	shipped    int64
	applied    int64
	takeovers  int64
	failover   time.Duration
	afterOK    bool
	conserved  bool
	total      int64
	expected   int64
}

const e14Service = "bank/main"

var e14Members = []string{"m1", "m2", "m3"}

func runE14Cell(p E14Params, mode string) (e14Row, error) {
	var row e14Row
	replicated := mode != "single"
	nsPort := xrep.PortName{Node: "clients", Guardian: 2, Port: 1}

	var storesMu sync.Mutex
	stores := make(map[string]*replica.Store)
	cfg := guardian.Config{Net: netsim.Config{Seed: 14, BaseLatency: p.NetLatency}}
	cfg.Store = func(node string) (durable.Store, error) {
		var inner durable.Store = durable.NewSim(stable.NewDisk(vtime.NewReal(), stable.DiskConfig{
			SyncDelay: p.SyncDelay,
		}))
		member := false
		for _, m := range e14Members {
			member = member || m == node
		}
		if !replicated || !member {
			return inner, nil
		}
		rm := replica.ModeQuorum
		if mode == "async" {
			rm = replica.ModeAsync
		}
		st, err := replica.NewStore(inner, replica.Config{
			Group:       "e14",
			Self:        node,
			Members:     e14Members,
			Mode:        rm,
			Heartbeat:   p.Heartbeat,
			Threshold:   p.Threshold,
			AppDef:      bank.BranchDefName,
			Service:     e14Service,
			NS:          nsPort,
			ServicePort: 1,
		})
		if err != nil {
			return nil, err
		}
		storesMu.Lock()
		stores[node] = st
		storesMu.Unlock()
		return st, nil
	}
	w := guardian.NewWorld(cfg)
	defer w.Close()
	w.MustRegister(bank.BranchDef())
	w.MustRegister(nameserv.Def())
	w.MustRegister(replica.Def())

	clients := w.MustAddNode("clients")
	if _, err := clients.Bootstrap(nameserv.DefName); err != nil {
		return row, err
	}
	members := e14Members
	if !replicated {
		members = e14Members[:1]
	}
	for _, m := range members {
		n := w.MustAddNode(m)
		if replicated {
			// The replicator must be each member's first guardian: its port
			// name {node, 2, 1} is the a-priori address of the group.
			if _, err := n.Bootstrap(replica.DefName); err != nil {
				return row, err
			}
		}
	}
	primary, err := w.Node(members[0])
	if err != nil {
		return row, err
	}
	created, err := primary.Bootstrap(bank.BranchDefName)
	if err != nil {
		return row, err
	}
	if replicated {
		storesMu.Lock()
		st := stores[members[0]]
		storesMu.Unlock()
		st.Adopt(primary, created)
	}

	newCaller := func(name string) (*amo.Caller, *guardian.Process, error) {
		_, pr, err := clients.NewDriver(name)
		if err != nil {
			return nil, nil, err
		}
		opts := amo.CallerOptions{
			Timeout: p.AttemptTimeout,
			Retries: p.Retries,
			Backoff: amo.BackoffPolicy{Base: 2 * time.Millisecond, Jitter: 0.5},
		}
		if replicated {
			nc, err := nameserv.NewClient(pr, nsPort)
			if err != nil {
				return nil, nil, err
			}
			opts.Resolve = func() (xrep.PortName, bool) {
				port, _, err := nc.Lookup(e14Service, p.AttemptTimeout)
				return port, err == nil
			}
		}
		c, err := amo.NewCaller(pr, opts)
		return c, pr, err
	}
	// All arms call the same port name the service would resolve to; the
	// replica arms re-resolve on retries, which is what carries a client
	// across the failover below.
	svc := created.Ports[1]

	const seedFunds = int64(1_000_000)
	perClient := p.Transfers / p.Clients
	extra := p.Transfers % p.Clients
	type clientResult struct {
		ok, failed int64
		durs       []time.Duration
		err        error
	}
	results := make([]clientResult, p.Clients)
	var wg sync.WaitGroup
	for i := 0; i < p.Clients; i++ {
		caller, _, err := newCaller(fmt.Sprintf("teller-%d", i))
		if err != nil {
			return row, err
		}
		calls := perClient
		if i < extra {
			calls++
		}
		wg.Add(1)
		go func(i, calls int, caller *amo.Caller) {
			defer wg.Done()
			defer caller.Close()
			r := &results[i]
			a, b := fmt.Sprintf("c%d-a", i), fmt.Sprintf("c%d-b", i)
			for _, op := range [][]any{{"open", a}, {"open", b}, {"deposit", a, seedFunds}} {
				if _, err := caller.Call(svc, op[0].(string), op[1:]...); err != nil {
					r.err = err
					return
				}
			}
			for j := 0; j < calls; j++ {
				start := time.Now()
				rep, err := caller.Call(svc, "transfer", a, b, int64(1+j%7))
				if err != nil {
					r.failed++
					continue
				}
				if rep.Command == bank.OutcomeOK {
					r.ok++
					r.durs = append(r.durs, time.Since(start))
				}
			}
		}(i, calls, caller)
	}
	wg.Wait()

	var durs []time.Duration
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return row, r.err
		}
		row.ok += r.ok
		row.failed += r.failed
		durs = append(durs, r.durs...)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	if n := len(durs); n > 0 {
		var sum time.Duration
		for _, d := range durs {
			sum += d
		}
		row.mean = sum / time.Duration(n)
		row.p99 = durs[n*99/100]
	}

	// Failover: kill the primary permanently — no restart is coming — and
	// clock how long until a re-resolving client gets its next reply.
	if replicated {
		probe, _, err := newCaller("probe")
		if err != nil {
			return row, err
		}
		defer probe.Close()
		if _, err := probe.Call(svc, "open", "probe-acct"); err != nil {
			return row, fmt.Errorf("probe warmup: %w", err)
		}
		start := time.Now()
		primary.Crash()
		for {
			if _, err := probe.Call(svc, "balance", "probe-acct"); err == nil {
				row.afterOK = true
				break
			}
			if time.Since(start) > 30*time.Second {
				break
			}
		}
		row.failover = time.Since(start)
	}
	waitQuiesce(w)

	// Audit on whatever member now serves the branch: every seeded pot is
	// intact — transfers move money, the takeover must not mint or burn it.
	row.expected = seedFunds * int64(p.Clients)
	serving, err := e14ServingGuardian(w, replicated, created, stores)
	if err != nil {
		return row, err
	}
	balances, err := bank.Snapshot(serving)
	if err != nil {
		return row, err
	}
	for i := 0; i < p.Clients; i++ {
		row.total += balances[fmt.Sprintf("c%d-a", i)] + balances[fmt.Sprintf("c%d-b", i)]
	}
	row.conserved = row.total == row.expected
	storesMu.Lock()
	for _, st := range stores {
		s := st.ReplStats()
		row.shipped += s.ShippedRecords
		row.applied += s.AppliedRecords
		row.takeovers += s.Takeovers
	}
	storesMu.Unlock()
	return row, nil
}

// e14ServingGuardian locates the branch: the bootstrapped guardian in the
// single arm, the elected leader's takeover instance after the failover.
func e14ServingGuardian(w *guardian.World, replicated bool, created *guardian.Created,
	stores map[string]*replica.Store) (*guardian.Guardian, error) {
	if !replicated {
		n, err := w.Node(e14Members[0])
		if err != nil {
			return nil, err
		}
		g, ok := n.GuardianByID(created.GuardianID)
		if !ok {
			return nil, fmt.Errorf("exp: branch guardian vanished")
		}
		return g, nil
	}
	for _, m := range e14Members {
		n, err := w.Node(m)
		if err != nil || !n.Alive() {
			continue
		}
		if st := stores[m]; st != nil {
			if _, _, isSelf := st.Leader(); isSelf {
				if g := st.AppGuardian(); g != nil {
					return g, nil
				}
			}
		}
	}
	return nil, fmt.Errorf("exp: no live leader serves the branch after failover")
}
