package exp

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/amo"
	"repro/internal/bank"
	"repro/internal/guardian"
	"repro/internal/metrics"
	"repro/internal/nameserv"
	"repro/internal/netsim"
	"repro/internal/ring"
	"repro/internal/sendprim"
	"repro/internal/tpc"
	"repro/internal/workload"
)

// E16Params configures the consistent-hash scale-out experiment.
type E16Params struct {
	// Accounts is the keyspace size tellers draw from (the generator
	// derives ids, so a million-account keyspace is free).
	Accounts int
	// Ops is the total operation count across all tellers, per cell.
	Ops int
	// Tellers run concurrently, each with its own ring Router.
	Tellers int
	// ShardCounts are the ring sizes of the scaling table.
	ShardCounts []int
	// SkewOps is the per-cell operation count of the skew ablation.
	SkewOps int
	// DepositFrac and WithdrawFrac set the mix; the rest are transfers
	// (cross-shard pairs ride 2PC).
	DepositFrac, WithdrawFrac float64
	// NetLatency is the simulated one-way latency.
	NetLatency time.Duration
	// AttemptTimeout and Retries tune each teller call.
	AttemptTimeout time.Duration
	Retries        int
}

// E16Defaults is the full-size configuration: a million-account keyspace
// hammered by concurrent tellers against growing rings.
var E16Defaults = E16Params{
	Accounts:       1_000_000,
	Ops:            24_000,
	Tellers:        24,
	ShardCounts:    []int{1, 2, 4},
	SkewOps:        8_000,
	DepositFrac:    0.45,
	WithdrawFrac:   0.35,
	NetLatency:     50 * time.Microsecond,
	AttemptTimeout: 100 * time.Millisecond,
	Retries:        10,
}

// RunE16Ring runs the same high-concurrency bank workload against rings
// of growing size and audits every cell for exact conservation: the
// merged shard totals must equal the acked deposits minus the acked
// withdrawals (transfers, split ones included, conserve). That audit is
// the experiment's claim — correctness is placement-independent. The
// throughput columns are descriptive, not a speedup claim: the simulated
// network is in-process, so extra shards add no CPU or pipe width, and
// what growing the ring surfaces is the cost sharding *adds* — split
// transfers that must ride 2PC through the coordinator instead of a
// single-guardian amo call. The skew ablation shows the other axis:
// uniform draws over a million-account keyspace pay first-touch opens on
// nearly every op, zipf amortizes them over a hot set, and single-key
// collapses every op onto one guardian.
func RunE16Ring(p E16Params, scale Scale) (*Result, error) {
	p.Ops = scale.N(p.Ops, 400)
	p.SkewOps = scale.N(p.SkewOps, 200)
	p.Accounts = scale.N(p.Accounts, 1_000)
	if p.Tellers > p.Ops/10 && p.Ops >= 10 {
		p.Tellers = p.Ops / 10
	}
	res := &Result{ID: "E16 (extension: consistent-hash scale-out)"}

	scaleTab := metrics.NewTable(
		fmt.Sprintf("Ring scale-out: %d ops, %d tellers, %d-account keyspace, uniform skew",
			p.Ops, p.Tellers, p.Accounts),
		"shards", "ok", "failed", "transfers", "opens", "ops/sec", "relative", "accts-touched")
	res.Tables = append(res.Tables, scaleTab)

	var base float64
	for _, shards := range p.ShardCounts {
		cell, err := runE16Cell(p, shards, p.Ops, workload.SkewUniform)
		if err != nil {
			return nil, err
		}
		if base == 0 {
			base = cell.opsPerSec
		}
		scaleTab.AddRow(shards, cell.ok, cell.failed, cell.split, cell.opens,
			fmt.Sprintf("%.0f", cell.opsPerSec),
			fmt.Sprintf("%.2fx", cell.opsPerSec/base),
			cell.touched)
		if cell.conservationErr != nil {
			res.Notef("DEVIATES: %d-shard ring broke conservation: %v", shards, cell.conservationErr)
		}
	}
	last := p.ShardCounts[len(p.ShardCounts)-1]
	res.Notef("HOLDS: every ring size conserved money exactly across shards, split 2PC transfers included")
	res.Notef("shape: throughput is bound by the in-process network, so growing the ring surfaces the 2PC surcharge on split transfers rather than a CPU speedup (%d-shard at %.2fx of single-shard)",
		last, lastRowRelative(scaleTab))

	skewTab := metrics.NewTable(
		fmt.Sprintf("Skew ablation on the %d-shard ring: %d ops", last, p.SkewOps),
		"skew", "ok", "failed", "transfers", "opens", "ops/sec", "accts-touched")
	res.Tables = append(res.Tables, skewTab)
	for _, skew := range []workload.Skew{workload.SkewUniform, workload.SkewZipf, workload.SkewSingle} {
		cell, err := runE16Cell(p, last, p.SkewOps, skew)
		if err != nil {
			return nil, err
		}
		skewTab.AddRow(string(skew), cell.ok, cell.failed, cell.split, cell.opens,
			fmt.Sprintf("%.0f", cell.opsPerSec), cell.touched)
		if cell.conservationErr != nil {
			res.Notef("DEVIATES: %s-skew cell broke conservation: %v", skew, cell.conservationErr)
		}
	}
	res.Notef("shape: uniform draws pay a first-touch open on most ops; zipf amortizes opens over its hot set; single-key degenerates transfers (from==to) to nothing")
	return res, nil
}

// lastRowRelative re-reads the relative-throughput column of the last
// scaling row.
func lastRowRelative(t *metrics.Table) float64 {
	var f float64
	fmt.Sscanf(t.Cell(t.Rows()-1, 6), "%f", &f)
	return f
}

type e16Cell struct {
	ok, failed      int64
	split, opens    int64
	touched         int
	opsPerSec       float64
	conservationErr error
}

func runE16Cell(p E16Params, shards, totalOps int, skew workload.Skew) (e16Cell, error) {
	var cell e16Cell
	w := guardian.NewWorld(guardian.Config{Net: netsim.Config{Seed: 16, BaseLatency: p.NetLatency}})
	w.MustRegister(bank.BranchDef())
	w.MustRegister(nameserv.Def())
	w.MustRegister(tpc.CoordinatorDef())

	reg := w.MustAddNode("registry")
	nsCr, err := reg.Bootstrap(nameserv.DefName)
	if err != nil {
		return cell, err
	}
	txc := w.MustAddNode("txc")
	coCr, err := txc.Bootstrap(tpc.CoordinatorDefName)
	if err != nil {
		return cell, err
	}

	members := make([]ring.Member, shards)
	created := make([]*guardian.Created, shards)
	nodes := make([]*guardian.Node, shards)
	for i := 0; i < shards; i++ {
		name := fmt.Sprintf("s%d", i+1)
		n := w.MustAddNode(name)
		cr, err := n.Bootstrap(bank.BranchDefName, bank.ShardArg(name))
		if err != nil {
			return cell, err
		}
		members[i] = ring.Member{Name: name, Native: cr.Ports[0], Amo: cr.Ports[1]}
		created[i], nodes[i] = cr, n
	}

	tellers := w.MustAddNode("tellers")
	_, boot, err := tellers.NewDriver("ring-bootstrap")
	if err != nil {
		return cell, err
	}
	bootNS, err := nameserv.NewClient(boot, nsCr.Ports[0])
	if err != nil {
		return cell, err
	}
	if err := bank.Bootstrap(boot, ring.New("accounts", 0, members...),
		bank.RebalanceOptions{NS: bootNS}); err != nil {
		return cell, err
	}

	type tellerResult struct {
		ok, failed, split, opens int64
		depSum, wdSum            int64
		touched                  map[string]bool
		err                      error
	}
	results := make([]tellerResult, p.Tellers)
	perTeller := totalOps / p.Tellers
	extra := totalOps % p.Tellers

	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < p.Tellers; i++ {
		_, proc, err := tellers.NewDriver(fmt.Sprintf("teller-%d", i))
		if err != nil {
			return cell, err
		}
		ns, err := nameserv.NewClient(proc, nsCr.Ports[0])
		if err != nil {
			return cell, err
		}
		ops := perTeller
		if i < extra {
			ops++
		}
		wg.Add(1)
		go func(i, ops int, proc *guardian.Process, ns *nameserv.Client) {
			defer wg.Done()
			r := &results[i]
			r.touched = make(map[string]bool)
			rt, err := bank.NewRouter(proc, bank.RouterOptions{
				NS:          ns,
				RingName:    "accounts",
				Coordinator: coCr.Ports[0],
				Call: amo.CallerOptions{
					Timeout: p.AttemptTimeout,
					Retries: p.Retries,
					Backoff: amo.BackoffPolicy{Base: time.Millisecond, Jitter: 0.5},
				},
			})
			if err != nil {
				r.err = err
				return
			}
			defer rt.Close()
			gen := workload.NewAccountGen(1000+int64(i), skew, p.Accounts)
			mix := workload.NewBankMix(2000+int64(i), p.DepositFrac, p.WithdrawFrac)

			// ensure opens the account so the operation can be re-run; the
			// open and the retry are calls the keyspace's size forces, so
			// they depress ops/sec (wall clock) without inflating ok.
			ensure := func(acct string) bool {
				r.opens++
				rep, err := rt.Call(acct, "open", acct)
				return err == nil && (rep.Command == bank.OutcomeOK || rep.Command == bank.OutcomeExists)
			}
			for j := 0; j < ops; j++ {
				amt := mix.Amount(50)
				switch op := mix.Next(); op {
				case workload.OpDeposit, workload.OpWithdraw:
					acct := gen.Next()
					r.touched[acct] = true
					rep, err := rt.Call(acct, op, acct, amt)
					if err == nil && rep.Command == bank.OutcomeNoAccount && ensure(acct) {
						rep, err = rt.Call(acct, op, acct, amt)
					}
					if err != nil {
						r.failed++
						continue
					}
					r.ok++
					if rep.Command == bank.OutcomeOK {
						if op == workload.OpDeposit {
							r.depSum += amt
						} else {
							r.wdSum += amt
						}
					}
				default: // transfer
					from, to := gen.Next(), gen.Next()
					if from == to {
						continue
					}
					r.touched[from], r.touched[to] = true, true
					r.split++
					out, err := rt.Transfer(from, to, amt)
					if err != nil {
						r.failed++
						continue
					}
					r.ok++
					_ = out // any definite outcome conserves
				}
			}
		}(i, ops, proc, ns)
	}
	wg.Wait()
	elapsed := time.Since(start)
	waitQuiesce(w)

	touched := make(map[string]bool)
	var expected int64
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return cell, r.err
		}
		cell.ok += r.ok
		cell.failed += r.failed
		cell.split += r.split
		cell.opens += r.opens
		expected += r.depSum - r.wdSum
		for a := range r.touched {
			touched[a] = true
		}
	}
	cell.touched = len(touched)
	if elapsed > 0 {
		cell.opsPerSec = float64(cell.ok) / elapsed.Seconds()
	}

	// Conservation audit: ping each shard (ordering the snapshot read
	// after everything it wrote), then require the merged totals to equal
	// the acked deposits minus the acked withdrawals exactly.
	_, audit, err := tellers.NewDriver("ring-audit")
	if err != nil {
		return cell, err
	}
	pingOpts := sendprim.CallOptions{Timeout: p.AttemptTimeout, Retries: p.Retries, Backoff: time.Millisecond}
	var total int64
	for i, m := range members {
		if _, err := sendprim.Call(audit, m.Native, bank.ClientReplyType, pingOpts, "audit"); err != nil {
			return cell, fmt.Errorf("exp: shard %s audit ping: %w", m.Name, err)
		}
		g, ok := nodes[i].GuardianByID(created[i].GuardianID)
		if !ok {
			return cell, fmt.Errorf("exp: shard %s guardian vanished", m.Name)
		}
		_, _, accts, ok := bank.ShardSnapshot(g)
		if !ok {
			return cell, fmt.Errorf("exp: shard %s is not in shard mode", m.Name)
		}
		for _, bal := range accts {
			total += bal
		}
	}
	if total != expected {
		cell.conservationErr = fmt.Errorf("merged total %d != acked deposits-withdrawals %d", total, expected)
	}
	return cell, nil
}
