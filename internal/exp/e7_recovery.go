package exp

import (
	"encoding/binary"
	"fmt"
	"time"

	"repro/internal/guardian"
	"repro/internal/metrics"
	"repro/internal/xrep"
)

// E7Params configures the permanence/recovery experiment.
type E7Params struct {
	// OpCounts is the sweep of operations applied before the crash.
	OpCounts []int
	// CheckpointEvery is the checkpoint-interval ablation (0 = never).
	CheckpointEvery []int
	Timeout         time.Duration
}

// E7Defaults is the full-size configuration.
var E7Defaults = E7Params{
	OpCounts:        []int{100, 1000, 5000},
	CheckpointEvery: []int{0, 100, 1000},
	Timeout:         30 * time.Second,
}

// ledger is a minimal guardian whose whole purpose is durable state: each
// inc is logged before acknowledgement; a checkpoint every k ops bounds
// replay length. It is the unit-scale model of what the flight and bank
// guardians do.
var ledgerType = guardian.NewPortType("e7_ledger_port").
	Msg("inc").
	Replies("inc", "ok").
	Msg("get").
	Replies("get", "value")

var ledgerReplyType = guardian.NewPortType("e7_ledger_reply").
	Msg("ok").
	Msg("value", xrep.KindInt)

// brokenLedgerDef is the ablation: it acknowledges each inc BEFORE syncing
// the log record — the protocol the paper's permanence requirement
// forbids. Operations acknowledged just before a crash are lost.
func brokenLedgerDef() *guardian.GuardianDef {
	main := func(ctx *guardian.Ctx) {
		log := ctx.G.Log()
		var count int64
		if ctx.Recovering {
			_, recs, _ := log.Recover()
			count = int64(len(recs))
		}
		guardian.NewReceiver(ctx.Ports[0]).
			When("inc", func(pr *guardian.Process, m *guardian.Message) {
				//lint:allow ackorder the broken ledger is the experiment's control arm: it leaves the append volatile so e7 can measure recovery losing it
				log.Append([]byte{1}) // volatile: no Sync before the ack
				count++
				if !m.ReplyTo.IsZero() {
					//lint:allow ackorder deliberately unsynced ack — the violation e7 exists to demonstrate
					_ = pr.Send(m.ReplyTo, "ok")
				}
			}).
			When("get", func(pr *guardian.Process, m *guardian.Message) {
				if !m.ReplyTo.IsZero() {
					_ = pr.Send(m.ReplyTo, "value", count)
				}
			}).
			WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
				// §3.4 failure arm: a discarded message named this port as
				// its replyto. The count already moved and is logged;
				// clients re-ask on timeout, so the report is dropped.
			}).
			Loop(ctx.Proc, nil)
	}
	return &guardian.GuardianDef{
		TypeName: "e7_broken_ledger",
		Provides: []*guardian.PortType{ledgerType},
		Init:     main,
		Recover:  main,
	}
}

func ledgerDef() *guardian.GuardianDef {
	main := func(ctx *guardian.Ctx) {
		checkpointEvery := 0
		if len(ctx.Args) == 1 {
			if k, ok := ctx.Args[0].(xrep.Int); ok {
				checkpointEvery = int(k)
			}
		}
		log := ctx.G.Log()
		var count int64
		var replayed int
		if ctx.Recovering {
			cp, recs, err := log.Recover()
			if err == nil && len(cp) == 8 {
				count = int64(binary.BigEndian.Uint64(cp))
			}
			count += int64(len(recs))
			replayed = len(recs)
		}
		_ = replayed
		sinceCP := 0
		guardian.NewReceiver(ctx.Ports[0]).
			When("inc", func(pr *guardian.Process, m *guardian.Message) {
				seq := log.AppendSync([]byte{1})
				count++
				sinceCP++
				if checkpointEvery > 0 && sinceCP >= checkpointEvery {
					var cp [8]byte
					binary.BigEndian.PutUint64(cp[:], uint64(count))
					log.Checkpoint(cp[:], seq)
					sinceCP = 0
				}
				if !m.ReplyTo.IsZero() {
					_ = pr.Send(m.ReplyTo, "ok")
				}
			}).
			When("get", func(pr *guardian.Process, m *guardian.Message) {
				if !m.ReplyTo.IsZero() {
					_ = pr.Send(m.ReplyTo, "value", count)
				}
			}).
			WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
				// §3.4 failure arm: a discarded message named this port as
				// its replyto. The append is logged and permanent either
				// way; the client re-asks on timeout.
			}).
			Loop(ctx.Proc, nil)
	}
	return &guardian.GuardianDef{
		TypeName: "e7_ledger",
		Provides: []*guardian.PortType{ledgerType},
		Init:     main,
		Recover:  main,
	}
}

// RunE7Recovery reproduces the §2.2 permanence requirements: completed
// atomic operations survive a node crash via per-guardian logging, the
// recovery process replays the log, replay length (and so recovery time)
// grows with the operation count, and checkpoints bound it.
func RunE7Recovery(p E7Params, scale Scale) (*Result, error) {
	res := &Result{ID: "E7 (§2.2 permanence)"}
	tab := metrics.NewTable(
		"§2.2 — crash recovery: log replay length and recovery time vs checkpoint interval",
		"ops-before-crash", "checkpoint-every", "records-replayed", "recovery-time", "state-correct")
	res.Tables = append(res.Tables, tab)

	type key struct{ ops, cp int }
	replayLens := map[key]int{}

	for _, fullOps := range p.OpCounts {
		ops := scale.N(fullOps, 20)
		for _, cpEvery := range p.CheckpointEvery {
			replayLen, recTime, correct, err := runE7Cell(ops, cpEvery, p.Timeout)
			if err != nil {
				return nil, err
			}
			tab.AddRow(ops, cpEvery, replayLen, recTime.String(), correct)
			replayLens[key{ops, cpEvery}] = replayLen
			if !correct {
				res.Notef("DEVIATES: state wrong after recovery at ops=%d cp=%d", ops, cpEvery)
			}
		}
	}
	res.Notef("HOLDS: recovered state equals pre-crash state in every cell (permanence of effect)")

	// Ablation: the same guardian acknowledging before syncing. The paper
	// requires log-then-ack; this shows why.
	ablTab := metrics.NewTable(
		"§2.2 ablation — acknowledge-before-sync loses acknowledged operations",
		"protocol", "acked-ops", "recovered", "lost")
	res.Tables = append(res.Tables, ablTab)
	ops := scale.N(500, 20)
	for _, broken := range []bool{false, true} {
		recovered, err := runE7Ablation(ops, broken, p.Timeout)
		if err != nil {
			return nil, err
		}
		name := "log-then-ack (paper)"
		if broken {
			name = "ack-then-log (ablation)"
		}
		ablTab.AddRow(name, ops, recovered, ops-recovered)
		if broken && recovered < ops {
			res.Notef("HOLDS: the ack-before-sync ablation lost %d of %d acknowledged operations — the paper's log-then-ack discipline is necessary, not a formality", ops-recovered, ops)
		}
		if !broken && recovered != ops {
			res.Notef("DEVIATES: log-then-ack lost %d operations", ops-recovered)
		}
	}
	// Shape: checkpoints bound replay length.
	for _, fullOps := range p.OpCounts {
		ops := scale.N(fullOps, 20)
		noCP := replayLens[key{ops, 0}]
		for _, cpEvery := range p.CheckpointEvery {
			if cpEvery == 0 || cpEvery >= ops {
				continue
			}
			with := replayLens[key{ops, cpEvery}]
			if with < noCP {
				res.Notef("HOLDS: checkpoint-every-%d cuts replay at %d ops (%d → %d records)",
					cpEvery, ops, noCP, with)
			} else {
				res.Notef("DEVIATES: checkpoint-every-%d did not cut replay at %d ops (%d vs %d)",
					cpEvery, ops, noCP, with)
			}
		}
	}
	return res, nil
}

// runE7Ablation applies ops acknowledged increments, crashes immediately,
// recovers, and reports how many survived.
func runE7Ablation(ops int, broken bool, timeout time.Duration) (recovered int, err error) {
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(ledgerDef())
	w.MustRegister(brokenLedgerDef())
	srv := w.MustAddNode("srv")
	defName := "e7_ledger"
	if broken {
		defName = "e7_broken_ledger"
	}
	var created *guardian.Created
	if broken {
		created, err = srv.Bootstrap(defName)
	} else {
		created, err = srv.Bootstrap(defName, 0)
	}
	if err != nil {
		return 0, err
	}
	cli := w.MustAddNode("cli")
	g, drv, err := cli.NewDriver("d")
	if err != nil {
		return 0, err
	}
	reply := g.MustNewPort(ledgerReplyType, 8)
	port := created.Ports[0]
	for i := 0; i < ops; i++ {
		if err := drv.SendReplyTo(port, reply.Name(), "inc"); err != nil {
			return 0, err
		}
		if m, st := drv.Receive(timeout, reply); st != guardian.RecvOK || m.Command != "ok" {
			return 0, fmt.Errorf("inc %d not acknowledged: %v", i, st)
		}
	}
	// Crash the instant the last ack has been received by the client.
	srv.Crash()
	if err := srv.Restart(); err != nil {
		return 0, err
	}
	if err := drv.SendReplyTo(port, reply.Name(), "get"); err != nil {
		return 0, err
	}
	m, st := drv.Receive(timeout, reply)
	if st != guardian.RecvOK || m.Command != "value" {
		return 0, fmt.Errorf("get after recovery: %v", st)
	}
	return int(m.Int(0)), nil
}

func runE7Cell(ops, cpEvery int, timeout time.Duration) (replayLen int, recTime time.Duration, correct bool, err error) {
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(ledgerDef())
	srv := w.MustAddNode("srv")
	created, err := srv.Bootstrap("e7_ledger", cpEvery)
	if err != nil {
		return 0, 0, false, err
	}
	cli := w.MustAddNode("cli")
	g, drv, err := cli.NewDriver("d")
	if err != nil {
		return 0, 0, false, err
	}
	reply := g.MustNewPort(ledgerReplyType, 8)
	port := created.Ports[0]

	for i := 0; i < ops; i++ {
		if err := drv.SendReplyTo(port, reply.Name(), "inc"); err != nil {
			return 0, 0, false, err
		}
		if m, st := drv.Receive(timeout, reply); st != guardian.RecvOK || m.Command != "ok" {
			return 0, 0, false, fmt.Errorf("inc %d: %v", i, st)
		}
	}
	// Replay length = durable records not folded into the checkpoint.
	glog := srv.Disk().OpenLog(fmt.Sprintf("e7_ledger-%d", created.GuardianID))
	replayLen = glog.DurableLen()

	clock := w.Clock()
	srv.Crash()
	t0 := clock.Now()
	if err := srv.Restart(); err != nil {
		return 0, 0, false, err
	}
	// Recovery time: until the guardian answers its first get. The receive
	// loop starts only after the recovery process has replayed the log.
	if err := drv.SendReplyTo(port, reply.Name(), "get"); err != nil {
		return 0, 0, false, err
	}
	m, st := drv.Receive(timeout, reply)
	recTime = clock.Now().Sub(t0)
	if st != guardian.RecvOK || m.Command != "value" {
		return replayLen, recTime, false, nil
	}
	return replayLen, recTime, m.Int(0) == int64(ops), nil
}
