package exp

import (
	"fmt"

	"repro/internal/dst"
	"repro/internal/metrics"
)

// E11Params configures the deterministic-simulation sweep.
type E11Params struct {
	// SeedsPerCell is how many seeds each (profile, workload) cell runs.
	SeedsPerCell int
	// Clients and OpsPerClient size each simulated run.
	Clients      int
	OpsPerClient int
}

// E11Defaults is the full-size configuration.
var E11Defaults = E11Params{
	SeedsPerCell: 6,
	Clients:      3,
	OpsPerClient: 12,
}

// RunE11DST sweeps the deterministic simulation harness across every fault
// profile and both workloads, checking the invariants the paper states only
// informally: conservation of money and exactly-once application for the
// bank (§3.5), no-overbooking for the airline (§2.3), and
// recovery-equals-replay for both (§2.2). A control arm re-runs the lossy
// profile with the at-most-once filter deliberately disabled; the sweep
// must catch that injected bug, or the harness is not discriminating.
func RunE11DST(p E11Params, scale Scale) (*Result, error) {
	p.SeedsPerCell = scale.N(p.SeedsPerCell, 2)
	res := &Result{ID: "E11 (extension: deterministic simulation of the failure model)"}
	tab := metrics.NewTable(
		fmt.Sprintf("Seed sweep: %d seeds per cell, %d clients x %d ops",
			p.SeedsPerCell, p.Clients, p.OpsPerClient),
		"profile", "workload", "seeds", "pass", "fail", "acked", "retries", "lost", "dup", "partition")
	res.Tables = append(res.Tables, tab)

	type cell struct {
		profile  dst.Profile
		workload string
		bug      string
	}
	var cells []cell
	for _, prof := range dst.Profiles() {
		for _, wl := range []string{"bank", "airline"} {
			cells = append(cells, cell{profile: prof, workload: wl})
		}
	}
	// The control arm: same lossy network, dedup filter off.
	cells = append(cells, cell{profile: dst.LossyProfile(), workload: "bank", bug: dst.BugDisableDedup})

	cleanFailures := 0
	bugCaught := 0
	var firstClean *dst.Report
	for _, c := range cells {
		var pass, fail, acked, retries, lost, dup, part int64
		for seed := int64(1); seed <= int64(p.SeedsPerCell); seed++ {
			rep := dst.Run(dst.Options{
				Seed:         seed,
				Workload:     c.workload,
				Profile:      c.profile,
				Clients:      p.Clients,
				OpsPerClient: p.OpsPerClient,
				Bug:          c.bug,
			})
			acked += rep.OpsAcked
			retries += rep.Retries
			lost += rep.Net.Lost
			dup += rep.Net.Duplicated
			part += rep.Net.Partition
			if rep.Failed() {
				fail++
				if c.bug == "" && firstClean == nil {
					firstClean = rep
				}
			} else {
				pass++
			}
		}
		label := c.profile.Name
		if c.bug != "" {
			label += "+" + c.bug
			bugCaught += int(fail)
		} else {
			cleanFailures += int(fail)
		}
		tab.AddRow(label, c.workload, int64(p.SeedsPerCell), pass, fail,
			acked, retries, lost, dup, part)
	}

	if cleanFailures == 0 {
		res.Notef("HOLDS: all invariants (conservation, exactly-once, no-overbooking, recovery==replay) held over %d simulated runs across %d fault profiles",
			p.SeedsPerCell*2*len(dst.Profiles()), len(dst.Profiles()))
	} else {
		res.Notef("DEVIATES: %d clean runs violated an invariant; first: seed %d (%s/%s): %s",
			cleanFailures, firstClean.Seed, firstClean.Workload, firstClean.Profile,
			firstClean.Violations[0].Invariant)
	}
	if bugCaught > 0 {
		res.Notef("HOLDS: the sweep is discriminating — the injected %s bug was caught in %d/%d control runs",
			dst.BugDisableDedup, bugCaught, p.SeedsPerCell)
	} else {
		res.Notef("DEVIATES: injected %s bug escaped all %d control runs",
			dst.BugDisableDedup, p.SeedsPerCell)
	}
	return res, nil
}
