package exp

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/guardian"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/transport"
	"repro/internal/xrep"
)

// E17Params configures the transport-comparison experiment.
type E17Params struct {
	// Rounds is the number of timed guardian-level round trips per arm.
	Rounds int
	// Warmup round trips run before timing starts, so connection dialing
	// (TCP) and route learning stay out of the measured distribution.
	Warmup int
	// RepSizes are the external-rep payload sizes of the ceiling table.
	RepSizes []int
	// Timeout bounds each round trip.
	Timeout time.Duration
}

// E17Defaults is the full-size configuration.
var E17Defaults = E17Params{
	Rounds:   3_000,
	Warmup:   50,
	RepSizes: []int{1 << 10, 64 << 10, 1 << 20, 4 << 20},
	Timeout:  10 * time.Second,
}

// RunE17Transport compares one guardian-level round trip — no-wait ping
// out, echoed pong back — across the three Transport implementations: the
// in-memory simulator every test runs on, UDP datagrams through the
// kernel's loopback, and framed persistent TCP connections (two
// transports, two listeners — a stream has distinct endpoints by
// construction). The latency table is descriptive: what the experiment
// *claims* is the second table, the ceiling the stream removes. A
// datagram transport refuses any packet over its MTU, so an external rep
// bigger than ~64 KiB can never cross UDP no matter how the runtime
// fragments; over TCP the same rep rides a single frame and round-trips
// intact.
func RunE17Transport(p E17Params, scale Scale) (*Result, error) {
	p.Rounds = scale.N(p.Rounds, 200)
	res := &Result{ID: "E17 (extension: stream transport)"}

	latTab := metrics.NewTable(
		fmt.Sprintf("Guardian round trip by transport: %d rounds, 64-byte payload", p.Rounds),
		"transport", "p50", "p99", "avg", "rt/sec")
	res.Tables = append(res.Tables, latTab)

	payload := strings.Repeat("x", 64)
	arms := []struct {
		name  string
		build func() (wSrv, wCli *guardian.World, err error)
	}{
		{"netsim", func() (*guardian.World, *guardian.World, error) {
			w := guardian.NewWorld(guardian.Config{Net: netsim.Config{Seed: 17}})
			return w, w, nil
		}},
		{"udp", func() (*guardian.World, *guardian.World, error) {
			udp, err := transport.NewUDP(transport.UDPConfig{
				Peers: map[transport.Addr]string{"srv": "127.0.0.1:0", "cli": "127.0.0.1:0"},
			})
			if err != nil {
				return nil, nil, err
			}
			w := guardian.NewWorld(guardian.Config{Transport: udp})
			return w, w, nil
		}},
		{"tcp", e17TCPWorlds},
	}
	for _, arm := range arms {
		wSrv, wCli, err := arm.build()
		if err != nil {
			return nil, fmt.Errorf("exp: %s arm: %w", arm.name, err)
		}
		cell, err := runE17RoundTrips(wSrv, wCli, p, payload)
		wSrv.Close()
		if wCli != wSrv {
			wCli.Close()
		}
		if err != nil {
			return nil, fmt.Errorf("exp: %s arm: %w", arm.name, err)
		}
		latTab.AddRow(arm.name, cell.p50, cell.p99, cell.avg, fmt.Sprintf("%.0f", cell.perSec))
	}
	res.Notef("shape: the simulator dispatches in-process, UDP pays syscalls and copies, TCP adds stream framing on the same loopback — all three agree on the guardian semantics above them")

	repTab := metrics.NewTable(
		"External reps vs the datagram ceiling (UDP MTU 1400, absolute max 65507)",
		"rep bytes", "udp datagram", "tcp round trip")
	res.Tables = append(res.Tables, repTab)

	// The UDP column is a direct transport-level verdict: one attached
	// pair, one Send per size, the error (or its absence) recorded as-is.
	udp, err := transport.NewUDP(transport.UDPConfig{
		Peers: map[transport.Addr]string{"a": "127.0.0.1:0", "b": "127.0.0.1:0"},
	})
	if err != nil {
		return nil, err
	}
	if err := udp.Attach("a", func(from transport.Addr, payload []byte) {}); err != nil {
		return nil, err
	}
	if err := udp.Attach("b", func(from transport.Addr, payload []byte) {}); err != nil {
		return nil, err
	}
	// The TCP column round-trips the whole rep through a guardian echo:
	// one two-world pair reused across sizes, FragmentMTU raised to the
	// frame bound so each rep ships as a single frame.
	wSrv, wCli, err := e17TCPWorlds()
	if err != nil {
		return nil, err
	}
	defer wSrv.Close()
	defer wCli.Close()
	echo, drv, reply, err := e17EchoPair(wSrv, wCli)
	if err != nil {
		return nil, err
	}
	allCarried := true
	for _, size := range p.RepSizes {
		verdict := "carried"
		if err := udp.Send("a", "b", make([]byte, size)); err != nil {
			verdict = fmt.Sprintf("refused (%v)", err)
		}
		start := time.Now()
		if err := e17RoundTrip(drv, echo, reply, strings.Repeat("y", size), p.Timeout); err != nil {
			allCarried = false
			repTab.AddRow(size, verdict, fmt.Sprintf("FAILED: %v", err))
			continue
		}
		repTab.AddRow(size, verdict, time.Since(start).Round(10*time.Microsecond))
	}
	udp.Close()
	if allCarried {
		res.Notef("HOLDS: every rep, including those far past the 65507-byte datagram maximum, round-tripped intact over one TCP frame")
	} else {
		res.Notef("DEVIATES: a rep failed to round-trip over TCP; the stream transport did not remove the ceiling")
	}
	return res, nil
}

// e17TCPWorlds builds the two-listener TCP pair: the server world hosts
// the echo, the client world routes "srv" at the server's bound address
// and learns the reply route from inbound frames.
func e17TCPWorlds() (*guardian.World, *guardian.World, error) {
	srvTr, err := transport.NewTCP(transport.TCPConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		return nil, nil, err
	}
	cliTr, err := transport.NewTCP(transport.TCPConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		srvTr.Close()
		return nil, nil, err
	}
	if err := cliTr.SetPeer("srv", srvTr.ListenAddr()); err != nil {
		srvTr.Close()
		cliTr.Close()
		return nil, nil, err
	}
	// Streams have no MTU: let the runtime ship a whole rep as one frame.
	mtu := transport.DefaultTCPMaxFrame
	wSrv := guardian.NewWorld(guardian.Config{Transport: srvTr, FragmentMTU: mtu})
	wCli := guardian.NewWorld(guardian.Config{Transport: cliTr, FragmentMTU: mtu})
	return wSrv, wCli, nil
}

// e17EchoPair boots the echo guardian on wSrv's "srv" node and a driver
// with a reply port on wCli's "cli" node.
func e17EchoPair(wSrv, wCli *guardian.World) (echo xrep.PortName, drv *guardian.Process, reply *guardian.Port, err error) {
	pt := guardian.NewPortType("echo").
		Msg("ping", xrep.KindString, xrep.KindPortName).
		Replies("ping", "pong")
	wSrv.MustRegister(&guardian.GuardianDef{
		TypeName:     "echo",
		Provides:     []*guardian.PortType{pt},
		PortCapacity: 1024,
		Init: func(ctx *guardian.Ctx) {
			guardian.NewReceiver(ctx.Ports[0]).
				When("ping", func(pr *guardian.Process, m *guardian.Message) {
					_ = pr.Send(m.Port(1), "pong", m.Str(0))
				}).
				WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
					// A pong bounced off a driver that gave up; the
					// round-trip timeout already charged the miss.
				}).
				Loop(ctx.Proc, nil)
		},
	})
	created, err := wSrv.MustAddNode("srv").Bootstrap("echo")
	if err != nil {
		return echo, nil, nil, err
	}
	g, drv, err := wCli.MustAddNode("cli").NewDriver("d")
	if err != nil {
		return echo, nil, nil, err
	}
	reply, err = g.NewPort(guardian.NewPortType("pong_port").Msg("pong", xrep.KindString), 64)
	if err != nil {
		return echo, nil, nil, err
	}
	return created.Ports[0], drv, reply, nil
}

// e17RoundTrip sends one ping and waits for its pong.
func e17RoundTrip(drv *guardian.Process, echo xrep.PortName, reply *guardian.Port, payload string, timeout time.Duration) error {
	if err := drv.Send(echo, "ping", payload, reply.Name()); err != nil {
		return err
	}
	m, st := drv.Receive(timeout, reply)
	if st != guardian.RecvOK {
		return fmt.Errorf("receive status %v", st)
	}
	if len(m.Str(0)) != len(payload) {
		return fmt.Errorf("echoed %d bytes, want %d", len(m.Str(0)), len(payload))
	}
	return nil
}

type e17Cell struct {
	p50, p99, avg time.Duration
	perSec        float64
}

// runE17RoundTrips times p.Rounds ping/pong exchanges after p.Warmup
// unmeasured ones.
func runE17RoundTrips(wSrv, wCli *guardian.World, p E17Params, payload string) (e17Cell, error) {
	var cell e17Cell
	echo, drv, reply, err := e17EchoPair(wSrv, wCli)
	if err != nil {
		return cell, err
	}
	for i := 0; i < p.Warmup; i++ {
		if err := e17RoundTrip(drv, echo, reply, payload, p.Timeout); err != nil {
			return cell, fmt.Errorf("warmup %d: %w", i, err)
		}
	}
	durs := make([]time.Duration, p.Rounds)
	start := time.Now()
	for i := range durs {
		t0 := time.Now()
		if err := e17RoundTrip(drv, echo, reply, payload, p.Timeout); err != nil {
			return cell, fmt.Errorf("round %d: %w", i, err)
		}
		durs[i] = time.Since(t0)
	}
	elapsed := time.Since(start)
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	cell.p50 = durs[len(durs)/2].Round(100 * time.Nanosecond)
	cell.p99 = durs[len(durs)*99/100].Round(100 * time.Nanosecond)
	cell.avg = (elapsed / time.Duration(len(durs))).Round(100 * time.Nanosecond)
	cell.perSec = float64(len(durs)) / elapsed.Seconds()
	return cell, nil
}
