package exp

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/airline"
	"repro/internal/guardian"
	"repro/internal/metrics"
	"repro/internal/workload"
)

// E1Params configures the Figure-1 organization experiment.
type E1Params struct {
	// Clients is the number of concurrent requesting agents.
	Clients int
	// RequestsPerClient is each agent's closed-loop request count.
	RequestsPerClient int
	// Dates is the size of the date range.
	Dates int
	// WorkCostUS is the simulated per-request work in microseconds; it is
	// what concurrency can overlap.
	WorkCostUS int64
	// Capacity is seats per date (large, so outcomes stay "ok").
	Capacity int64
	// Timeout bounds each request.
	Timeout time.Duration
}

// E1Defaults is the full-size configuration.
var E1Defaults = E1Params{
	Clients:           8,
	RequestsPerClient: 60,
	Dates:             16,
	WorkCostUS:        2000,
	Capacity:          1 << 30,
	Timeout:           30 * time.Second,
}

// RunE1Fig1 reproduces Figure 1: the three flight-guardian organizations
// under three date skews. The paper's claim: "Organizations 2 and 3 can
// provide concurrent manipulation of the data base, while organization 1
// cannot" — so the serializer and monitor organizations should outperform
// one-at-a-time whenever requests spread over dates, and collapse to its
// throughput when every request hits a single date.
func RunE1Fig1(p E1Params, scale Scale) (*Result, error) {
	p.Clients = scale.N(p.Clients, 2)
	p.RequestsPerClient = scale.N(p.RequestsPerClient, 5)
	res := &Result{ID: "E1 (Figure 1)"}
	tab := metrics.NewTable(
		"Figure 1 — flight guardian organizations: throughput (req/s) and latency by date skew",
		"org", "skew", "requests", "throughput", "p50", "p95")
	res.Tables = append(res.Tables, tab)

	type cell struct {
		org, skew string
		tput      float64
	}
	var cells []cell

	for _, org := range []string{airline.OrgSequential, airline.OrgSerializer, airline.OrgMonitor} {
		for _, skew := range []workload.Skew{workload.SkewUniform, workload.SkewZipf, workload.SkewSingle} {
			tput, snap, err := runE1Cell(p, org, skew)
			if err != nil {
				return nil, err
			}
			tab.AddRow(org, string(skew), p.Clients*p.RequestsPerClient,
				tput, snap.P50.String(), snap.P95.String())
			cells = append(cells, cell{org, string(skew), tput})
		}
	}

	// Shape checks against the paper's claim.
	get := func(org, skew string) float64 {
		for _, c := range cells {
			if c.org == org && c.skew == skew {
				return c.tput
			}
		}
		return 0
	}
	seqUni := get(airline.OrgSequential, "uniform")
	for _, org := range []string{airline.OrgSerializer, airline.OrgMonitor} {
		if u := get(org, "uniform"); u > seqUni {
			res.Notef("HOLDS: %s beats sequential under uniform skew (%.1f vs %.1f req/s, %.2fx)",
				org, u, seqUni, u/seqUni)
		} else {
			res.Notef("DEVIATES: %s did not beat sequential under uniform skew (%.1f vs %.1f)",
				org, u, seqUni)
		}
		single, uni := get(org, "single"), get(org, "uniform")
		if single < uni {
			res.Notef("HOLDS: %s degrades under single-date contention (%.1f vs %.1f req/s)",
				org, single, uni)
		} else {
			res.Notef("DEVIATES: %s did not degrade under single-date contention", org)
		}
	}
	return res, nil
}

func runE1Cell(p E1Params, org string, skew workload.Skew) (float64, metrics.Snapshot, error) {
	w := guardian.NewWorld(guardian.Config{})
	if err := airline.RegisterDefs(w); err != nil {
		return 0, metrics.Snapshot{}, err
	}
	sys, err := airline.Deploy(w, airline.SystemConfig{
		Regions:    []airline.RegionConfig{{Node: "hub", Flights: []int64{1}}},
		Capacity:   p.Capacity,
		Org:        org,
		WorkCostUS: p.WorkCostUS,
	})
	if err != nil {
		return 0, metrics.Snapshot{}, err
	}
	cli := w.MustAddNode("clients")
	hist := metrics.NewHistogram()
	clock := w.Clock()

	agents := make([]*airline.Agent, p.Clients)
	gens := make([]*workload.DateGen, p.Clients)
	pgens := make([]*workload.PassengerGen, p.Clients)
	for i := range agents {
		a, err := airline.NewAgent(cli, fmt.Sprintf("agent%d", i))
		if err != nil {
			return 0, metrics.Snapshot{}, err
		}
		agents[i] = a
		gens[i] = workload.NewDateGen(int64(i+1), skew, p.Dates)
		pgens[i] = workload.NewPassengerGen(fmt.Sprintf("c%d", i))
	}
	port := sys.Directory[1]

	start := clock.Now()
	var wg sync.WaitGroup
	errCh := make(chan error, p.Clients)
	for i := 0; i < p.Clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for r := 0; r < p.RequestsPerClient; r++ {
				t0 := clock.Now()
				_, err := agents[i].Request(port, "reserve", 1, pgens[i].Next(), gens[i].Next(), p.Timeout)
				if err != nil {
					errCh <- err
					return
				}
				hist.Observe(clock.Now().Sub(t0))
			}
		}(i)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, metrics.Snapshot{}, err
	default:
	}
	elapsed := clock.Now().Sub(start).Seconds()
	total := float64(p.Clients * p.RequestsPerClient)
	return total / elapsed, hist.Snapshot(), nil
}
