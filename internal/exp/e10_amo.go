package exp

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/amo"
	"repro/internal/bank"
	"repro/internal/guardian"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/sendprim"
)

// E10Params configures the at-most-once experiment.
type E10Params struct {
	// Transfers is the total workload size across all clients.
	Transfers int
	// Clients run concurrently, each owning a disjoint account pair.
	Clients int
	// LossRate and DupRate are applied to every packet both ways.
	LossRate float64
	DupRate  float64
	// NetLatency is the one-way base latency.
	NetLatency time.Duration
	// AttemptTimeout bounds each call attempt; Retries re-sends follow.
	AttemptTimeout time.Duration
	Retries        int
}

// E10Defaults is the full-size configuration.
var E10Defaults = E10Params{
	Transfers:      500,
	Clients:        10,
	LossRate:       0.20,
	DupRate:        0.20,
	NetLatency:     300 * time.Microsecond,
	AttemptTimeout: 25 * time.Millisecond,
	Retries:        20,
}

// RunE10AMO measures what the at-most-once layer buys back from the §3.5
// concession that a retried remote transaction send "may be performed any
// number of times". The same concurrent transfer workload runs twice
// against a bank branch over a lossy, duplicating network: once through
// amo.Caller + amo.Dedup, once through the bare envelope with no filter.
// The layer must yield exactly-once application (executions == logical
// calls, every balance as the replies implied); the bare arm must
// demonstrably over-apply.
func RunE10AMO(p E10Params, scale Scale) (*Result, error) {
	p.Transfers = scale.N(p.Transfers, 40)
	if p.Clients > p.Transfers {
		p.Clients = p.Transfers
	}
	res := &Result{ID: "E10 (extension: at-most-once on the no-wait send)"}
	tab := metrics.NewTable(
		fmt.Sprintf("At-most-once vs bare calls: %d transfers, %.0f%% loss + %.0f%% dup",
			p.Transfers, p.LossRate*100, p.DupRate*100),
		"mode", "ok", "applies", "double-applied", "deviating-accts", "retries", "deduped", "replayed", "backoff")
	res.Tables = append(res.Tables, tab)

	for _, mode := range []string{"amo", "bare"} {
		row, err := runE10Cell(p, mode == "bare")
		if err != nil {
			return nil, err
		}
		tab.AddRow(mode, row.ok, row.applies, row.applies-row.ok, row.deviating,
			row.retries, row.deduped, row.replayed, row.backoff.Round(time.Millisecond).String())
		if row.failed > 0 {
			res.Notef("DEVIATES: %s arm had %d calls exhaust %d retries", mode, row.failed, p.Retries)
			continue
		}
		if mode == "amo" {
			if row.applies == row.ok && row.deviating == 0 {
				res.Notef("HOLDS: at-most-once layer applied %d/%d transfers exactly once (suppressed %d duplicates, replayed %d cached replies)",
					row.applies, row.ok, row.deduped, row.replayed)
			} else {
				res.Notef("DEVIATES: amo arm executed %d transfers for %d calls with %d deviating accounts",
					row.applies, row.ok, row.deviating)
			}
		} else {
			if row.applies > row.ok && row.deviating > 0 {
				res.Notef("HOLDS: bare calls double-applied %d of %d transfers (%d accounts wrong) — the §3.5 hazard the layer removes",
					row.applies-row.ok, row.ok, row.deviating)
			} else {
				res.Notef("DEVIATES: bare arm showed no over-application under %.0f%% duplication", p.DupRate*100)
			}
		}
	}
	return res, nil
}

type e10Row struct {
	ok        int64
	failed    int64
	applies   int64
	deviating int
	retries   int64
	deduped   int64
	replayed  int64
	backoff   time.Duration
}

func runE10Cell(p E10Params, raw bool) (e10Row, error) {
	var row e10Row
	w := guardian.NewWorld(guardian.Config{Net: netsim.Config{
		Seed:        10,
		LossRate:    p.LossRate,
		DupRate:     p.DupRate,
		BaseLatency: p.NetLatency,
	}})
	w.MustRegister(bank.BranchDef())
	branchNode := w.MustAddNode("branch")
	var created *guardian.Created
	var err error
	if raw {
		created, err = branchNode.Bootstrap(bank.BranchDefName, "raw")
	} else {
		created, err = branchNode.Bootstrap(bank.BranchDefName)
	}
	if err != nil {
		return row, err
	}
	nativePort, amoPort := created.Ports[0], created.Ports[1]
	tellers := w.MustAddNode("tellers")
	met := &amo.Metrics{}
	dedup0, replay0 := amo.Default.CallsDeduped.Load(), amo.Default.RepliesReplayed.Load()

	perClient := p.Transfers / p.Clients
	extra := p.Transfers % p.Clients
	type clientResult struct {
		ok, failed int64
		expA, expB int64
		acctA      string
		acctB      string
		err        error
	}
	results := make([]clientResult, p.Clients)
	var wg sync.WaitGroup
	for i := 0; i < p.Clients; i++ {
		_, proc, err := tellers.NewDriver(fmt.Sprintf("teller-%d", i))
		if err != nil {
			return row, err
		}
		calls := perClient
		if i < extra {
			calls++
		}
		wg.Add(1)
		go func(i, calls int, proc *guardian.Process) {
			defer wg.Done()
			r := &results[i]
			r.acctA, r.acctB = fmt.Sprintf("c%d-a", i), fmt.Sprintf("c%d-b", i)
			// Account setup goes over the NATIVE idempotent port (op_id
			// deduplication), so both arms start from identical, exact
			// balances and the amo port carries only the audited transfers.
			const seedFunds = int64(1_000_000)
			callOpts := sendprim.CallOptions{
				Timeout: 2 * p.AttemptTimeout,
				Retries: p.Retries,
				Backoff: 2 * time.Millisecond,
			}
			for _, acct := range []string{r.acctA, r.acctB} {
				m, err := sendprim.Call(proc, nativePort, bank.ClientReplyType, callOpts, "open", acct)
				if err != nil {
					r.err = err
					return
				}
				if m.Command != bank.OutcomeOK && m.Command != bank.OutcomeExists {
					r.err = fmt.Errorf("exp: open %s: %s", acct, m.Command)
					return
				}
			}
			m, err := sendprim.Call(proc, nativePort, bank.ClientReplyType, callOpts,
				"deposit", r.acctA, seedFunds, fmt.Sprintf("fund-%d", i))
			if err != nil {
				r.err = err
				return
			}
			if m.Command != bank.OutcomeOK {
				r.err = fmt.Errorf("exp: funding %s: %s", r.acctA, m.Command)
				return
			}
			r.expA, r.expB = seedFunds, 0

			caller, err := amo.NewCaller(proc, amo.CallerOptions{
				Timeout: p.AttemptTimeout,
				Retries: p.Retries,
				Backoff: amo.BackoffPolicy{Base: 2 * time.Millisecond, Jitter: 0.5},
				Metrics: met,
			})
			if err != nil {
				r.err = err
				return
			}
			for j := 0; j < calls; j++ {
				amount := int64(1 + j%7)
				rep, err := caller.Call(amoPort, "transfer", r.acctA, r.acctB, amount)
				if err != nil {
					r.failed++
					continue
				}
				if rep.Command == bank.OutcomeOK {
					r.ok++
					r.expA -= amount
					r.expB += amount
				}
			}
		}(i, calls, proc)
	}
	wg.Wait()
	waitQuiesce(w)
	time.Sleep(20 * time.Millisecond)

	bg, ok := branchNode.GuardianByID(created.GuardianID)
	if !ok {
		return row, fmt.Errorf("exp: branch guardian vanished")
	}
	balances, err := bank.Snapshot(bg)
	if err != nil {
		return row, err
	}
	row.applies, err = bank.Applies(bg)
	if err != nil {
		return row, err
	}
	for i := range results {
		r := &results[i]
		if r.err != nil {
			return row, r.err
		}
		row.ok += r.ok
		row.failed += r.failed
		if balances[r.acctA] != r.expA {
			row.deviating++
		}
		if balances[r.acctB] != r.expB {
			row.deviating++
		}
	}
	row.retries = met.Retries.Load()
	row.deduped = amo.Default.CallsDeduped.Load() - dedup0
	row.replayed = amo.Default.RepliesReplayed.Load() - replay0
	row.backoff = time.Duration(met.RetryBackoffTotal.Load())
	return row, nil
}
