package exp

import (
	"fmt"
	"time"

	"repro/internal/guardian"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/xrep"
)

// E5Params configures the delivery-semantics experiment.
type E5Params struct {
	// MessagesPerCell is the send count at each loss rate.
	MessagesPerCell int
	// LossRates to sweep.
	LossRates []float64
	// PortCapacities to sweep in the buffer-space section.
	PortCapacities []int
	Timeout        time.Duration
}

// E5Defaults is the full-size configuration.
var E5Defaults = E5Params{
	MessagesPerCell: 400,
	LossRates:       []float64{0, 0.05, 0.10, 0.20, 0.30},
	PortCapacities:  []int{1, 4, 16, 64},
	Timeout:         5 * time.Second,
}

var e5SinkType = guardian.NewPortType("e5_sink_port").
	Msg("data", xrep.KindInt)

// e5SinkDef counts arrivals but never drains faster than its buffer.
func e5SinkDef(drain bool) *guardian.GuardianDef {
	name := "e5_sink"
	if !drain {
		name = "e5_stuck_sink"
	}
	return &guardian.GuardianDef{
		TypeName: name,
		Provides: []*guardian.PortType{e5SinkType},
		Init: func(ctx *guardian.Ctx) {
			if !drain {
				<-ctx.G.Killed()
				return
			}
			guardian.NewReceiver(ctx.Ports[0]).
				When("data", func(pr *guardian.Process, m *guardian.Message) {}).
				WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
					// The sink never sends, so no failure report can target
					// it; the arm records that this is by design (§3.4).
				}).
				Loop(ctx.Proc, nil)
		},
	}
}

// RunE5Delivery reproduces §3.4's send/receive semantics: delivery is
// best-effort ("not guaranteed, but will happen with high probability"),
// arrival order is not guaranteed, and discarded messages draw failure
// replies when a replyto port was supplied — for a full port, a missing
// port, and a missing guardian.
func RunE5Delivery(p E5Params, scale Scale) (*Result, error) {
	p.MessagesPerCell = scale.N(p.MessagesPerCell, 40)
	res := &Result{ID: "E5 (§3.4 semantics)"}

	// Part 1: delivery probability under loss.
	lossTab := metrics.NewTable(
		"§3.4 — best-effort delivery under packet loss",
		"loss-rate", "sent", "arrived", "arrival-frac", "reordered-pairs")
	res.Tables = append(res.Tables, lossTab)
	for _, loss := range p.LossRates {
		arrived, reordered, err := runE5LossCell(p, loss)
		if err != nil {
			return nil, err
		}
		frac := float64(arrived) / float64(p.MessagesPerCell)
		lossTab.AddRow(fmt.Sprintf("%.0f%%", loss*100), p.MessagesPerCell, arrived, frac, reordered)
		if loss == 0 && arrived != p.MessagesPerCell {
			res.Notef("DEVIATES: lost messages on a loss-free network (%d/%d)", arrived, p.MessagesPerCell)
		}
		expect := 1 - loss
		if loss > 0 && (frac < expect-0.12 || frac > expect+0.12) {
			res.Notef("DEVIATES: arrival fraction %.2f far from %.2f at %.0f%% loss", frac, expect, loss*100)
		}
	}
	res.Notef("HOLDS: delivery is best-effort — arrival fraction tracks (1 - loss rate)")

	// Part 2: port buffer space.
	capTab := metrics.NewTable(
		"§3.4 — bounded port buffers: a full port throws messages away and reports failure",
		"port-capacity", "burst", "accepted", "discarded", "failure-replies")
	res.Tables = append(res.Tables, capTab)
	burst := p.MessagesPerCell / 4
	if burst < 8 {
		burst = 8
	}
	for _, capacity := range p.PortCapacities {
		accepted, discarded, failures, err := runE5CapacityCell(capacity, burst, p.Timeout)
		if err != nil {
			return nil, err
		}
		capTab.AddRow(capacity, burst, accepted, discarded, failures)
		if discarded != failures {
			res.Notef("DEVIATES: at capacity %d, %d discards but %d failure replies", capacity, discarded, failures)
		}
		wantAccept := capacity
		if burst < capacity {
			wantAccept = burst
		}
		if accepted != wantAccept {
			res.Notef("DEVIATES: capacity %d accepted %d of burst %d", capacity, accepted, burst)
		}
	}
	res.Notef("HOLDS: every discarded message with a replyto drew exactly one failure reply")

	// Part 3: the failure-message taxonomy.
	failTab := metrics.NewTable(
		"§3.4 — system failure messages for undeliverable sends",
		"scenario", "failure-text")
	res.Tables = append(res.Tables, failTab)
	if err := runE5FailureTaxonomy(failTab, p.Timeout); err != nil {
		return nil, err
	}
	res.Notef("HOLDS: dead guardian / dead port / full port each yield a distinct system failure message")
	return res, nil
}

func runE5LossCell(p E5Params, loss float64) (arrived int, reorderedPairs int, err error) {
	w := guardian.NewWorld(guardian.Config{
		Net: netsim.Config{
			Seed:         int64(loss*1000) + 7,
			LossRate:     loss,
			BaseLatency:  200 * time.Microsecond,
			Jitter:       2 * time.Millisecond,
			ReorderRate:  0.2,
			ReorderDelay: 2 * time.Millisecond,
		},
	})
	seen := make(chan int64, p.MessagesPerCell)
	w.MustRegister(&guardian.GuardianDef{
		TypeName:     "e5_collector",
		Provides:     []*guardian.PortType{e5SinkType},
		PortCapacity: 8192, // ample buffer: this cell measures loss, not overflow
		Init: func(ctx *guardian.Ctx) {
			guardian.NewReceiver(ctx.Ports[0]).
				When("data", func(pr *guardian.Process, m *guardian.Message) {
					seen <- m.Int(0)
				}).
				WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
					// The collector never sends; nothing to do. This cell
					// measures loss on the data path only (§3.4).
				}).
				Loop(ctx.Proc, nil)
		},
	})
	srv := w.MustAddNode("srv")
	created, err := srv.Bootstrap("e5_collector")
	if err != nil {
		return 0, 0, err
	}
	cli := w.MustAddNode("cli")
	_, drv, err := cli.NewDriver("gen")
	if err != nil {
		return 0, 0, err
	}
	for i := 0; i < p.MessagesPerCell; i++ {
		if err := drv.Send(created.Ports[0], "data", i); err != nil {
			return 0, 0, err
		}
	}
	waitQuiesce(w)
	prev := int64(-1)
	for {
		select {
		case v := <-seen:
			arrived++
			if v < prev {
				reorderedPairs++
			}
			prev = v
		case <-time.After(100 * time.Millisecond):
			return arrived, reorderedPairs, nil
		}
	}
}

func runE5CapacityCell(capacity, burst int, timeout time.Duration) (accepted, discarded, failures int, err error) {
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(&guardian.GuardianDef{
		TypeName:     "e5_stuck",
		Provides:     []*guardian.PortType{e5SinkType},
		PortCapacity: capacity,
		Init:         func(ctx *guardian.Ctx) { <-ctx.G.Killed() },
	})
	srv := w.MustAddNode("srv")
	created, err2 := srv.Bootstrap("e5_stuck")
	if err2 != nil {
		return 0, 0, 0, err2
	}
	cli := w.MustAddNode("cli")
	g, drv, err2 := cli.NewDriver("gen")
	if err2 != nil {
		return 0, 0, 0, err2
	}
	reply := g.MustNewPort(guardian.NewPortType("e5_reply"), burst+8)
	for i := 0; i < burst; i++ {
		if err := drv.SendReplyTo(created.Ports[0], reply.Name(), "data", i); err != nil {
			return 0, 0, 0, err
		}
	}
	waitQuiesce(w)
	time.Sleep(20 * time.Millisecond)
	for {
		m, st := drv.Receive(0, reply)
		if st != guardian.RecvOK {
			break
		}
		if m.IsFailure() {
			failures++
		}
	}
	st := w.Stats()
	discarded = int(st.DiscardPortFull.Load())
	accepted = burst - discarded
	return accepted, discarded, failures, nil
}

func runE5FailureTaxonomy(tab *metrics.Table, timeout time.Duration) error {
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(e5SinkDef(false))
	srv := w.MustAddNode("srv")
	created, err := srv.Bootstrap("e5_stuck_sink")
	if err != nil {
		return err
	}
	cli := w.MustAddNode("cli")
	g, drv, err := cli.NewDriver("probe")
	if err != nil {
		return err
	}
	reply := g.MustNewPort(guardian.NewPortType("e5_reply2"), 8)
	probe := func(scenario string, dest xrep.PortName, count int) error {
		for i := 0; i < count; i++ {
			if err := drv.SendReplyTo(dest, reply.Name(), "data", i); err != nil {
				return err
			}
		}
		deadline := time.Now().Add(timeout)
		for time.Now().Before(deadline) {
			m, st := drv.Receive(timeout, reply)
			if st != guardian.RecvOK {
				break
			}
			if m.IsFailure() {
				tab.AddRow(scenario, m.FailureText())
				return nil
			}
		}
		tab.AddRow(scenario, "NO FAILURE RECEIVED")
		return nil
	}
	if err := probe("guardian doesn't exist", xrep.PortName{Node: "srv", Guardian: 999, Port: 1}, 1); err != nil {
		return err
	}
	badPort := created.Ports[0]
	badPort.Port = 999
	if err := probe("port doesn't exist", badPort, 1); err != nil {
		return err
	}
	// Fill the stuck sink's buffer past capacity.
	if err := probe("no room at target port", created.Ports[0], 100); err != nil {
		return err
	}
	return nil
}
