package exp

import (
	"fmt"
	"time"

	"repro/internal/metrics"
	"repro/internal/wire"
	"repro/internal/xrep"
)

// E8Params configures the abstract-value transmission experiment.
type E8Params struct {
	// Sizes is the associative-memory item-count sweep.
	Sizes []int
	// Iterations per measurement.
	Iterations int
}

// E8Defaults is the full-size configuration.
var E8Defaults = E8Params{
	Sizes:      []int{10, 100, 1000},
	Iterations: 200,
}

// RunE8ExternalRep reproduces §3.3: different internal representations
// (hash table vs tree) of one abstract type interoperate through a single
// external rep; encode/decode cost and wire size scale with value size;
// and the system-wide integer invariant (the 24-bit example) is enforced
// at the sending node.
func RunE8ExternalRep(p E8Params, scale Scale) (*Result, error) {
	p.Iterations = scale.N(p.Iterations, 10)
	res := &Result{ID: "E8 (§3.3 abstract values)"}

	tab := metrics.NewTable(
		"§3.3 — associative memory across representations: encode/decode cost and wire size",
		"items", "wire-bytes", "encode(hash)", "decode(tree)", "encode(tree)", "decode(hash)", "round-trip-equal")
	res.Tables = append(res.Tables, tab)

	for _, n := range p.Sizes {
		row, err := runE8Cell(n, p.Iterations)
		if err != nil {
			return nil, err
		}
		tab.AddRow(n, row.wireBytes, row.encHash.String(), row.decTree.String(),
			row.encTree.String(), row.decHash.String(), row.equal)
		if !row.equal {
			res.Notef("DEVIATES: hash→tree→hash round trip changed the value at n=%d", n)
		}
	}
	res.Notef("HOLDS: hash-table and tree representations interoperate through the single external rep")

	// Complex numbers: the paper's first example.
	cxTab := metrics.NewTable(
		"§3.3 — complex numbers: rectangular and polar nodes share one external rep",
		"direction", "wire-bytes", "max-error")
	res.Tables = append(res.Tables, cxTab)
	rect := xrep.RectComplex{Re: 3, Im: 4}
	v := xrep.MustEncode(rect)
	raw, err := wire.MarshalValue(v)
	if err != nil {
		return nil, err
	}
	polarAny, err := xrep.DecodePolarComplex(v)
	if err != nil {
		return nil, err
	}
	polar := polarAny.(xrep.PolarComplex)
	backAny, err := xrep.DecodeRectComplex(xrep.MustEncode(polar))
	if err != nil {
		return nil, err
	}
	back := backAny.(xrep.RectComplex)
	errRe, errIm := back.Re-rect.Re, back.Im-rect.Im
	maxErr := errRe
	if errIm > maxErr {
		maxErr = errIm
	}
	if maxErr < 0 {
		maxErr = -maxErr
	}
	cxTab.AddRow("rect → wire → polar → wire → rect", len(raw), fmt.Sprintf("%.2e", maxErr))
	if maxErr < 1e-9 {
		res.Notef("HOLDS: complex value survives rect↔polar representation change (max error %.2e)", maxErr)
	} else {
		res.Notef("DEVIATES: complex round trip error %.2e", maxErr)
	}

	// The 24-bit system standard.
	limTab := metrics.NewTable(
		"§3.3 — system-wide 24-bit integer standard enforced at the sending node",
		"value", "validates")
	res.Tables = append(res.Tables, limTab)
	for _, v := range []int64{1 << 20, 1<<23 - 1, 1 << 23, -(1 << 23), -(1<<23 + 1)} {
		err := xrep.Paper24BitLimits.Validate(xrep.Int(v))
		limTab.AddRow(v, err == nil)
	}
	if xrep.Paper24BitLimits.Validate(xrep.Int(1<<23)) != nil &&
		xrep.Paper24BitLimits.Validate(xrep.Int(1<<23-1)) == nil {
		res.Notef("HOLDS: integers outside the 24-bit standard cannot leave the node; the boundary is exact")
	} else {
		res.Notef("DEVIATES: 24-bit boundary enforcement wrong")
	}
	return res, nil
}

type e8Row struct {
	wireBytes int
	encHash   time.Duration
	decTree   time.Duration
	encTree   time.Duration
	decHash   time.Duration
	equal     bool
}

func runE8Cell(n, iters int) (e8Row, error) {
	var row e8Row
	hash := xrep.NewHashAssocMem()
	for i := 0; i < n; i++ {
		hash.AddItem(fmt.Sprintf("key%06d", i), xrep.Int(i))
	}
	v1, err := xrep.Encode(hash)
	if err != nil {
		return row, err
	}
	raw, err := wire.MarshalValue(v1)
	if err != nil {
		return row, err
	}
	row.wireBytes = len(raw)

	timeIt := func(f func() error) (time.Duration, error) {
		start := time.Now()
		for i := 0; i < iters; i++ {
			if err := f(); err != nil {
				return 0, err
			}
		}
		return time.Since(start) / time.Duration(iters), nil
	}
	if row.encHash, err = timeIt(func() error { _, err := xrep.Encode(hash); return err }); err != nil {
		return row, err
	}
	if row.decTree, err = timeIt(func() error { _, err := xrep.DecodeTreeAssocMem(v1); return err }); err != nil {
		return row, err
	}
	treeAny, err := xrep.DecodeTreeAssocMem(v1)
	if err != nil {
		return row, err
	}
	tree := treeAny.(*xrep.TreeAssocMem)
	if row.encTree, err = timeIt(func() error { _, err := xrep.Encode(tree); return err }); err != nil {
		return row, err
	}
	v2, err := xrep.Encode(tree)
	if err != nil {
		return row, err
	}
	if row.decHash, err = timeIt(func() error { _, err := xrep.DecodeHashAssocMem(v2); return err }); err != nil {
		return row, err
	}
	row.equal = xrep.Equal(v1, v2)
	return row, nil
}
