package exp

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/airline"
	"repro/internal/guardian"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/workload"
)

// E2Params configures the Figure-2 distribution experiment.
type E2Params struct {
	// Regions is the number of regional nodes in the distributed layout.
	Regions int
	// FlightsPerRegion is each region's flight count.
	FlightsPerRegion int
	// ClientsPerRegion is the number of clerk agents per region.
	ClientsPerRegion int
	// RequestsPerClient is each agent's request count.
	RequestsPerClient int
	// NetLatency is the one-way network latency between nodes; intra-node
	// communication pays none of it, which is what makes regional
	// placement matter.
	NetLatency time.Duration
	// WorkCostUS is per-request flight guardian work.
	WorkCostUS int64
	// LocalFraction is the probability an agent requests a flight in its
	// own region (geographic locality of the organization).
	LocalFraction float64
	Timeout       time.Duration
}

// E2Defaults is the full-size configuration.
var E2Defaults = E2Params{
	Regions:           4,
	FlightsPerRegion:  4,
	ClientsPerRegion:  4,
	RequestsPerClient: 25,
	NetLatency:        2 * time.Millisecond,
	WorkCostUS:        500,
	LocalFraction:     0.8,
	Timeout:           30 * time.Second,
}

// RunE2Fig2 reproduces Figure 2: the distributed airline database versus a
// single central guardian, plus the reply-bypass ablation of Figure 4. The
// paper's claims: distribution reduces contention and gives faster access
// to local units (§1 advantages 1 and 2), and replies flowing directly
// from flight guardian to requester beat relaying through the regional
// manager.
func RunE2Fig2(p E2Params, scale Scale) (*Result, error) {
	p.ClientsPerRegion = scale.N(p.ClientsPerRegion, 1)
	p.RequestsPerClient = scale.N(p.RequestsPerClient, 5)
	res := &Result{ID: "E2 (Figure 2 / Figure 4)"}
	tab := metrics.NewTable(
		"Figure 2 — central vs regional deployment (reserve request latency)",
		"layout", "requests", "throughput", "mean", "p95", "msgs/request")
	res.Tables = append(res.Tables, tab)

	type row struct {
		name string
		tput float64
		mean time.Duration
		msgs float64
	}
	var rows []row
	for _, layout := range []string{"central", "regional", "regional+relay"} {
		tput, snap, msgs, err := runE2Cell(p, layout)
		if err != nil {
			return nil, err
		}
		tab.AddRow(layout, snap.Count, tput, snap.Mean.String(), snap.P95.String(), msgs)
		rows = append(rows, row{layout, tput, snap.Mean, msgs})
	}
	get := func(name string) row {
		for _, r := range rows {
			if r.name == name {
				return r
			}
		}
		return row{}
	}
	central, regional, relay := get("central"), get("regional"), get("regional+relay")
	if regional.mean < central.mean {
		res.Notef("HOLDS: regional placement cuts mean latency (%v vs %v central, %.2fx)",
			regional.mean, central.mean, float64(central.mean)/float64(regional.mean))
	} else {
		res.Notef("DEVIATES: regional (%v) not faster than central (%v)", regional.mean, central.mean)
	}
	if regional.msgs < relay.msgs {
		res.Notef("HOLDS: direct replies (bypass) save %.1f messages per request vs relaying through the manager (%.1f vs %.1f); latency %v vs %v — near-equal is expected when the manager is co-resident with its flight guardians, so the relay hop is intra-node",
			relay.msgs-regional.msgs, regional.msgs, relay.msgs, regional.mean, relay.mean)
	} else {
		res.Notef("DEVIATES: relaying (%.1f msgs/req) did not cost more messages than bypass (%.1f)",
			relay.msgs, regional.msgs)
	}
	if regional.tput > central.tput {
		res.Notef("HOLDS: regional throughput exceeds central (%.1f vs %.1f req/s)",
			regional.tput, central.tput)
	} else {
		res.Notef("DEVIATES: regional throughput (%.1f) below central (%.1f)",
			regional.tput, central.tput)
	}
	return res, nil
}

func runE2Cell(p E2Params, layout string) (float64, metrics.Snapshot, float64, error) {
	w := guardian.NewWorld(guardian.Config{
		Net: netsim.Config{BaseLatency: p.NetLatency},
	})
	if err := airline.RegisterDefs(w); err != nil {
		return 0, metrics.Snapshot{}, 0, err
	}

	// Build the flight → region assignment.
	regionOf := func(flight int64) int {
		return int((flight - 1) / int64(p.FlightsPerRegion))
	}
	totalFlights := int64(p.Regions * p.FlightsPerRegion)

	var cfg airline.SystemConfig
	cfg.Capacity = 1 << 30
	cfg.Org = airline.OrgMonitor
	cfg.WorkCostUS = p.WorkCostUS
	switch layout {
	case "central":
		all := make([]int64, totalFlights)
		for i := range all {
			all[i] = int64(i + 1)
		}
		cfg.Regions = []airline.RegionConfig{{Node: "central", Flights: all}}
	case "regional", "regional+relay":
		cfg.RelayReplies = layout == "regional+relay"
		for r := 0; r < p.Regions; r++ {
			flights := make([]int64, p.FlightsPerRegion)
			for i := range flights {
				flights[i] = int64(r*p.FlightsPerRegion + i + 1)
			}
			cfg.Regions = append(cfg.Regions, airline.RegionConfig{
				Node: fmt.Sprintf("region%d", r), Flights: flights,
			})
		}
	}
	sys, err := airline.Deploy(w, cfg)
	if err != nil {
		return 0, metrics.Snapshot{}, 0, err
	}

	hist := metrics.NewHistogram()
	clock := w.Clock()
	msgsBefore := w.Stats().MessagesSent.Load()
	var wg sync.WaitGroup
	errCh := make(chan error, p.Regions*p.ClientsPerRegion)
	start := clock.Now()
	for r := 0; r < p.Regions; r++ {
		// Agents live at their region's node (or all at the central node's
		// separate office in the central layout — they are the same
		// distance from the single guardian either way).
		var nodeName string
		if layout == "central" {
			nodeName = fmt.Sprintf("office%d", r)
			if _, err := w.Node(nodeName); err != nil {
				if _, err := w.AddNode(nodeName); err != nil {
					return 0, metrics.Snapshot{}, 0, err
				}
			}
		} else {
			nodeName = fmt.Sprintf("region%d", r)
		}
		node, err := w.Node(nodeName)
		if err != nil {
			return 0, metrics.Snapshot{}, 0, err
		}
		for c := 0; c < p.ClientsPerRegion; c++ {
			agent, err := airline.NewAgent(node, fmt.Sprintf("a%d-%d", r, c))
			if err != nil {
				return 0, metrics.Snapshot{}, 0, err
			}
			wg.Add(1)
			go func(r, c int, agent *airline.Agent) {
				defer wg.Done()
				seed := int64(r*100 + c)
				fg := workload.NewFlightGen(seed, totalFlights)
				dg := workload.NewDateGen(seed, workload.SkewUniform, 30)
				pg := workload.NewPassengerGen(fmt.Sprintf("r%dc%d", r, c))
				rng := workload.NewMix(seed, 0) // deterministic local/remote picks
				_ = rng
				for i := 0; i < p.RequestsPerClient; i++ {
					flight := fg.Next()
					// Bias toward local flights.
					if float64(i%10)/10 < p.LocalFraction {
						flight = int64(r*p.FlightsPerRegion) + (flight-1)%int64(p.FlightsPerRegion) + 1
					}
					port := sys.Directory[flight]
					_ = regionOf
					t0 := clock.Now()
					if _, err := agent.Request(port, "reserve", flight, pg.Next(), dg.Next(), p.Timeout); err != nil {
						errCh <- err
						return
					}
					hist.Observe(clock.Now().Sub(t0))
				}
			}(r, c, agent)
		}
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, metrics.Snapshot{}, 0, err
	default:
	}
	elapsed := clock.Now().Sub(start).Seconds()
	waitQuiesce(w)
	total := float64(p.Regions * p.ClientsPerRegion * p.RequestsPerClient)
	msgs := float64(w.Stats().MessagesSent.Load()-msgsBefore) / total
	return total / elapsed, hist.Snapshot(), msgs, nil
}
