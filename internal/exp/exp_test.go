package exp

import (
	"bytes"
	"strings"
	"testing"
)

// smokeScale runs each experiment small enough for CI but large enough to
// exercise every code path.
const smokeScale = Scale(0.12)

func runAndRender(t *testing.T, id string) *Result {
	t.Helper()
	e, err := ByID(id)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.Run(smokeScale)
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if len(res.Tables) == 0 {
		t.Fatalf("%s produced no tables", id)
	}
	var buf bytes.Buffer
	for _, tab := range res.Tables {
		tab.Render(&buf)
		if tab.Rows() == 0 {
			t.Fatalf("%s produced an empty table", id)
		}
	}
	if buf.Len() == 0 {
		t.Fatalf("%s rendered nothing", id)
	}
	return res
}

// assertHolds fails if any note that should hold deviates.
func assertHolds(t *testing.T, res *Result, allowDeviates bool) {
	t.Helper()
	holds := 0
	for _, n := range res.Notes {
		t.Log(n)
		if strings.HasPrefix(n, "HOLDS") {
			holds++
		}
		if !allowDeviates && strings.HasPrefix(n, "DEVIATES") {
			t.Errorf("claim deviated: %s", n)
		}
	}
	if holds == 0 {
		t.Error("no claims validated")
	}
}

func TestScaleN(t *testing.T) {
	if Scale(0.5).N(100, 1) != 50 {
		t.Fatal("scale math")
	}
	if Scale(0.001).N(100, 7) != 7 {
		t.Fatal("floor not applied")
	}
	if Scale(2).N(100, 1) != 200 {
		t.Fatal("upscale")
	}
}

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 14 {
		t.Fatalf("registry has %d experiments, want 14 (E1..E11, E14, E16, E17)", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.ID == "" || e.Run == nil || e.Paper == "" || e.Description == "" {
			t.Fatalf("incomplete registration %+v", e)
		}
		if seen[e.ID] {
			t.Fatalf("duplicate id %s", e.ID)
		}
		seen[e.ID] = true
	}
	if _, err := ByID("fig1"); err != nil {
		t.Fatal(err)
	}
	if _, err := ByID("nope"); err == nil {
		t.Fatal("unknown id resolved")
	}
}

func TestE1Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runAndRender(t, "fig1")
	// Contention behavior at tiny scale is noisy; only require that the
	// experiment ran and emitted shape notes.
	assertHolds(t, res, true)
}

func TestE2Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runAndRender(t, "fig2")
	assertHolds(t, res, true)
}

func TestE3Smoke(t *testing.T) {
	res := runAndRender(t, "fig3")
	assertHolds(t, res, false)
}

func TestE4Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runAndRender(t, "primitives")
	// The message-count claim is deterministic and must hold even at
	// smoke scale.
	assertHolds(t, res, false)
}

func TestE5Smoke(t *testing.T) {
	res := runAndRender(t, "delivery")
	assertHolds(t, res, true)
}

func TestE6Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runAndRender(t, "transactions")
	// Correctness claims (no lost acks, no oversell) must hold at any
	// scale.
	for _, n := range res.Notes {
		if strings.Contains(n, "DEVIATES") {
			t.Errorf("%s", n)
		}
	}
}

func TestE7Smoke(t *testing.T) {
	res := runAndRender(t, "recovery")
	assertHolds(t, res, false)
}

func TestE8Smoke(t *testing.T) {
	res := runAndRender(t, "xrep")
	assertHolds(t, res, false)
}

func TestE9Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runAndRender(t, "tpc")
	// Atomicity is a correctness claim: it must hold at any scale.
	assertHolds(t, res, false)
}

func TestE10Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runAndRender(t, "amo")
	// Exactly-once through the layer is a correctness claim, and at 20%
	// duplication even the smoke-scale bare arm over-applies with
	// near-certain probability; both notes must hold.
	assertHolds(t, res, false)
}

func TestE11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runAndRender(t, "dst")
	// Both notes are correctness claims: the clean sweep must be green and
	// the injected-bug control arm must be caught, at any scale.
	assertHolds(t, res, false)
}

func TestE14Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runAndRender(t, "replica")
	// Failover with conservation is a correctness claim: both replica arms
	// must survive permanent primary death at any scale.
	assertHolds(t, res, false)
}

func TestE16Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runAndRender(t, "ring")
	// Conservation across shards is a correctness claim; a DEVIATES note
	// means a ring cell lost or minted money.
	assertHolds(t, res, false)
}

func TestE17Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	res := runAndRender(t, "transport")
	// The ceiling claim is correctness: every rep, including those past
	// the datagram maximum, must round-trip intact over TCP.
	assertHolds(t, res, false)
}
