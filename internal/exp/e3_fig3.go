package exp

import (
	"time"

	"repro/internal/guardian"
	"repro/internal/metrics"
	"repro/internal/netsim"
	"repro/internal/xrep"
)

// E3Params configures the guardian-creation experiment.
type E3Params struct {
	// Creations is the number of guardians created per mode.
	Creations int
	// NetLatency separates local from remote creation cost.
	NetLatency time.Duration
	Timeout    time.Duration
}

// E3Defaults is the full-size configuration.
var E3Defaults = E3Params{
	Creations:  200,
	NetLatency: 2 * time.Millisecond,
	Timeout:    10 * time.Second,
}

// trivialDefName is a minimal guardian used to measure creation cost.
const trivialDefName = "e3_trivial"

var trivialPort = guardian.NewPortType("e3_port").Msg("noop")

func trivialDef() *guardian.GuardianDef {
	return &guardian.GuardianDef{
		TypeName: trivialDefName,
		Provides: []*guardian.PortType{trivialPort},
		Init: func(ctx *guardian.Ctx) {
			<-ctx.G.Killed()
		},
	}
}

// RunE3Fig3 reproduces Figure 3 and the §2.1 creation rules: guardians are
// created locally by resident guardians (cheap), or across the network via
// a create request to the target node's primordial guardian (one round
// trip), and the node owner's policy can refuse — preserving autonomy.
func RunE3Fig3(p E3Params, scale Scale) (*Result, error) {
	p.Creations = scale.N(p.Creations, 10)
	res := &Result{ID: "E3 (Figure 3)"}
	tab := metrics.NewTable(
		"Figure 3 — guardian creation: local vs remote (via primordial guardian)",
		"mode", "creations", "mean", "p95", "outcome")
	res.Tables = append(res.Tables, tab)

	w := guardian.NewWorld(guardian.Config{Net: netsim.Config{BaseLatency: p.NetLatency}})
	w.MustRegister(trivialDef())
	a := w.MustAddNode("a")
	b := w.MustAddNode("b")
	creator, drv, err := a.NewDriver("creator")
	if err != nil {
		return nil, err
	}
	clock := w.Clock()

	// Local creation: a resident guardian creates at its own node.
	localHist := metrics.NewHistogram()
	for i := 0; i < p.Creations; i++ {
		t0 := clock.Now()
		if _, err := creator.Create(trivialDefName); err != nil {
			return nil, err
		}
		localHist.Observe(clock.Now().Sub(t0))
	}
	ls := localHist.Snapshot()
	tab.AddRow("local (resident Create)", p.Creations, ls.Mean.String(), ls.P95.String(), "created")

	// Remote creation: message to b's primordial guardian.
	reply := creator.MustNewPort(guardian.CreatedReplyType, 4)
	remoteHist := metrics.NewHistogram()
	created := 0
	for i := 0; i < p.Creations; i++ {
		t0 := clock.Now()
		if err := drv.SendCheckedReplyTo(guardian.PrimordialType, b.PrimordialPort(), reply.Name(),
			"create", trivialDefName, xrep.Seq{}); err != nil {
			return nil, err
		}
		m, st := drv.Receive(p.Timeout, reply)
		if st == guardian.RecvOK && m.Command == "created" {
			created++
		}
		remoteHist.Observe(clock.Now().Sub(t0))
	}
	rs := remoteHist.Snapshot()
	tab.AddRow("remote (primordial create)", created, rs.Mean.String(), rs.P95.String(), "created")

	// Remote creation denied by the owner's policy.
	b.SetCreatePolicy(func(srcNode string, srcGuardian uint64, defName string) bool { return false })
	if err := drv.SendCheckedReplyTo(guardian.PrimordialType, b.PrimordialPort(), reply.Name(),
		"create", trivialDefName, xrep.Seq{}); err != nil {
		return nil, err
	}
	m, st := drv.Receive(p.Timeout, reply)
	outcome := "NO REPLY"
	if st == guardian.RecvOK {
		if m.IsFailure() {
			outcome = "denied: " + m.FailureText()
		} else {
			outcome = m.Command
		}
	}
	tab.AddRow("remote (policy denies)", 1, "-", "-", outcome)

	// Shape checks.
	if created == p.Creations {
		res.Notef("HOLDS: all %d remote create requests served by the primordial guardian", created)
	} else {
		res.Notef("DEVIATES: only %d/%d remote creations succeeded", created, p.Creations)
	}
	if rs.Mean > ls.Mean {
		res.Notef("HOLDS: remote creation costs more than local (%v vs %v; network round trip ≈ %v)",
			rs.Mean, ls.Mean, 2*p.NetLatency)
	} else {
		res.Notef("DEVIATES: remote creation (%v) not slower than local (%v)", rs.Mean, ls.Mean)
	}
	if outcome != "created" && st == guardian.RecvOK {
		res.Notef("HOLDS: the node owner's policy refused a remote creation (autonomy preserved)")
	} else {
		res.Notef("DEVIATES: denied creation still reported %q", outcome)
	}
	return res, nil
}
