package exp

import "fmt"

// Experiment ties an id to its runner at default parameters.
type Experiment struct {
	// ID is the short name used by cmd/bench -experiment.
	ID string
	// Paper names the figure/section reproduced.
	Paper string
	// Description summarizes the claim under test.
	Description string
	// Run executes the experiment at the given scale.
	Run func(scale Scale) (*Result, error)
}

// All returns every experiment in DESIGN.md's index, in order.
func All() []Experiment {
	return []Experiment{
		{
			ID: "fig1", Paper: "Figure 1",
			Description: "flight guardian organizations: sequential vs serializer vs monitor under date skew",
			Run:         func(s Scale) (*Result, error) { return RunE1Fig1(E1Defaults, s) },
		},
		{
			ID: "fig2", Paper: "Figure 2 / Figure 4",
			Description: "central vs regional deployment; reply bypass vs relay ablation",
			Run:         func(s Scale) (*Result, error) { return RunE2Fig2(E2Defaults, s) },
		},
		{
			ID: "fig3", Paper: "Figure 3 / §2.1",
			Description: "guardian creation: local, remote via primordial guardian, owner policy denial",
			Run:         func(s Scale) (*Result, error) { return RunE3Fig3(E3Defaults, s) },
		},
		{
			ID: "primitives", Paper: "§3",
			Description: "no-wait vs synchronization vs remote-transaction send across exchange patterns",
			Run:         func(s Scale) (*Result, error) { return RunE4Primitives(E4Defaults, s) },
		},
		{
			ID: "delivery", Paper: "§3.4",
			Description: "best-effort delivery, reordering, bounded port buffers, failure messages",
			Run:         func(s Scale) (*Result, error) { return RunE5Delivery(E5Defaults, s) },
		},
		{
			ID: "transactions", Paper: "Figure 5 / §3.5",
			Description: "transaction robustness under regional and UI node crashes; idempotent retry audit",
			Run:         func(s Scale) (*Result, error) { return RunE6Transactions(E6Defaults, s) },
		},
		{
			ID: "recovery", Paper: "§2.2",
			Description: "permanence of effect: log replay, recovery time, checkpoint ablation",
			Run:         func(s Scale) (*Result, error) { return RunE7Recovery(E7Defaults, s) },
		},
		{
			ID: "xrep", Paper: "§3.3",
			Description: "abstract values: representation diversity, encode/decode cost, 24-bit standard",
			Run:         func(s Scale) (*Result, error) { return RunE8ExternalRep(E8Defaults, s) },
		},
		{
			ID: "tpc", Paper: "§3/§4 (extension)",
			Description: "two-phase commit built on the no-wait send: cost scaling and atomicity under faults",
			Run:         func(s Scale) (*Result, error) { return RunE9Tpc(E9Defaults, s) },
		},
		{
			ID: "amo", Paper: "§3.5 (extension)",
			Description: "at-most-once layer vs bare calls: exactly-once transfers under loss and duplication",
			Run:         func(s Scale) (*Result, error) { return RunE10AMO(E10Defaults, s) },
		},
		{
			ID: "dst", Paper: "§2.2/§2.3/§3.5 (extension)",
			Description: "deterministic simulation: seeded fault sweep with invariant checkers and an injected-bug control",
			Run:         func(s Scale) (*Result, error) { return RunE11DST(E11Defaults, s) },
		},
		{
			ID: "replica", Paper: "§2.2 (extension)",
			Description: "replicated guardians: quorum-ack cost vs single-node group commit, failover time under permanent primary death",
			Run:         func(s Scale) (*Result, error) { return RunE14Replica(E14Defaults, s) },
		},
		{
			ID: "ring", Paper: "§2.1/§3.5 (extension)",
			Description: "consistent-hash scale-out: aggregate throughput vs shard count, account-skew ablation, exact conservation audit",
			Run:         func(s Scale) (*Result, error) { return RunE16Ring(E16Defaults, s) },
		},
		{
			ID: "transport", Paper: "§3.4 (extension)",
			Description: "stream transport: guardian round trips over netsim/UDP/TCP, and the datagram size ceiling TCP removes",
			Run:         func(s Scale) (*Result, error) { return RunE17Transport(E17Defaults, s) },
		},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("exp: unknown experiment %q", id)
}
