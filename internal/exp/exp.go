// Package exp implements the repository's experiment harness: one
// function per experiment in DESIGN.md's index (E1–E10), each regenerating
// the table for one figure or design claim of the paper. cmd/bench and the
// root benchmarks drive the same code at different scales.
package exp

import (
	"fmt"
	"time"

	"repro/internal/guardian"
	"repro/internal/metrics"
)

// Scale shrinks or grows an experiment's workload. 1.0 is the full size
// used by cmd/bench; benchmarks use smaller values for quick iterations.
type Scale float64

// N scales a count, with a floor of min.
func (s Scale) N(full, min int) int {
	n := int(float64(full) * float64(s))
	if n < min {
		return min
	}
	return n
}

// Result is one experiment's output: a set of tables plus free-form notes
// on whether the paper's qualitative claim held.
type Result struct {
	ID     string
	Tables []*metrics.Table
	Notes  []string
}

// Notef appends a formatted note.
func (r *Result) Notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// waitQuiesce drains the network and gives delivery goroutines a moment.
func waitQuiesce(w *guardian.World) {
	w.Quiesce()
	time.Sleep(5 * time.Millisecond)
}
