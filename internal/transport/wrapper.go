package transport

import (
	"math/rand"
	"sync"
	"time"

	"repro/internal/netsim"
)

// WrapperConfig is the fault model a Wrapper injects around an inner
// transport — the same knobs the simulator's fault profiles use, so a UDP
// path can be soak-tested with identical loss/duplication/delay rates.
type WrapperConfig struct {
	// Seed initializes the fate source; fates are a pure function of the
	// seed and the send order.
	Seed int64
	// LossRate is the probability in [0,1] that a datagram is silently
	// dropped before reaching the inner transport.
	LossRate float64
	// DupRate is the probability that a datagram is submitted twice.
	DupRate float64
	// Delay is the minimum extra latency added to each datagram.
	Delay time.Duration
	// Jitter is the maximum additional uniformly-random delay.
	Jitter time.Duration

	// The stream fault model, honored only when the inner transport is a
	// StreamFaulter. Loss and duplication are datagram faults — a stream
	// would just repair them — so what a stream really suffers is
	// injected instead: the connection carrying a send is reset, or its
	// write pump stalls into a half-open hang.

	// ResetRate is the probability in [0,1] that a send's destination
	// connection is reset just after the send is submitted.
	ResetRate float64
	// StallRate is the probability that the destination connection's
	// writes freeze for StallFor after the send is submitted.
	StallRate float64
	// StallFor is the stall duration; zero means 100ms.
	StallFor time.Duration
}

// WrapperStats counts the faults a Wrapper has injected.
type WrapperStats struct {
	Sent       int64 // datagrams offered to the wrapper
	Lost       int64 // dropped by the injected loss model
	Duplicated int64 // extra submissions from the injected duplication model
	Delayed    int64 // datagrams given a nonzero injected delay
	Resets     int64 // connection resets injected by the stream fault model
	Stalls     int64 // write stalls injected by the stream fault model
}

// Wrapper injects faults around any Transport: loss, duplication and
// delay for datagram transports, connection resets and write stalls when
// the inner transport is a StreamFaulter. Faults apply to outbound sends
// only; wrap both ends to fault both directions. Everything else —
// attach, detach, learning, stats — passes through to the inner
// transport.
type Wrapper struct {
	inner Transport
	// faulter is the inner transport's stream fault surface, when it has
	// one; nil for datagram transports, for which the stream rates are
	// inert.
	faulter StreamFaulter
	cfg     WrapperConfig

	mu       sync.Mutex
	rng      *rand.Rand
	stats    WrapperStats
	inflight int
	idle     *sync.Cond
}

// Wrap composes the fault model around inner.
func Wrap(inner Transport, cfg WrapperConfig) *Wrapper {
	w := &Wrapper{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
	if f, ok := inner.(StreamFaulter); ok {
		w.faulter = f
	}
	w.idle = sync.NewCond(&w.mu)
	return w
}

// Inner returns the wrapped transport.
func (w *Wrapper) Inner() Transport { return w.inner }

// Network unwraps to the simulator when the inner transport is (or wraps)
// one, so guardian worlds built on a wrapped simulator keep their fault
// injection hooks.
func (w *Wrapper) Network() *netsim.Network {
	if src, ok := w.inner.(interface{ Network() *netsim.Network }); ok {
		return src.Network()
	}
	return nil
}

// Attach implements Transport.
func (w *Wrapper) Attach(a Addr, h Handler) error { return w.inner.Attach(a, h) }

// Detach implements Transport.
func (w *Wrapper) Detach(a Addr) { w.inner.Detach(a) }

// Attached implements Transport.
func (w *Wrapper) Attached(a Addr) bool { return w.inner.Attached(a) }

// Learn implements Transport.
func (w *Wrapper) Learn(name, via Addr) { w.inner.Learn(name, via) }

// Send implements Transport: the datagram's fate — lost, once, twice, and
// how late — is decided now, under the lock, so the fault sequence is a
// pure function of the seed and the send order. Delayed copies are
// submitted from background goroutines; Quiesce waits for them.
func (w *Wrapper) Send(from, to Addr, payload []byte) error {
	w.mu.Lock()
	w.stats.Sent++
	if w.rng.Float64() < w.cfg.LossRate {
		w.stats.Lost++
		w.mu.Unlock()
		return nil
	}
	copies := 1
	if w.rng.Float64() < w.cfg.DupRate {
		w.stats.Duplicated++
		copies = 2
	}
	delays := make([]time.Duration, copies)
	for i := range delays {
		d := w.cfg.Delay
		if w.cfg.Jitter > 0 {
			d += time.Duration(w.rng.Int63n(int64(w.cfg.Jitter) + 1))
		}
		if d > 0 {
			w.stats.Delayed++
		}
		delays[i] = d
	}
	// Stream fates are drawn here too — under the lock, in send order —
	// so they stay a pure function of the seed; the injection itself
	// (which blocks on the inner transport's machinery) happens after
	// the send is submitted, below.
	var reset, stall bool
	if w.faulter != nil {
		reset = w.rng.Float64() < w.cfg.ResetRate
		stall = w.rng.Float64() < w.cfg.StallRate
	}
	w.inflight += copies
	w.mu.Unlock()

	var firstErr error
	for _, d := range delays {
		if d == 0 {
			if err := w.inner.Send(from, to, payload); err != nil && firstErr == nil {
				firstErr = err
			}
			w.retire()
			continue
		}
		buf := make([]byte, len(payload))
		copy(buf, payload)
		go func(d time.Duration) {
			defer w.retire()
			time.Sleep(d)
			_ = w.inner.Send(from, to, buf)
		}(d)
	}
	if stall || reset {
		w.injectStream(to, reset, stall)
	}
	return firstErr
}

// injectStream applies a drawn stream fate to the connection now carrying
// traffic to to. A stall lands first — a reset would leave it nothing to
// freeze. Only faults that found a live connection are counted: fates are
// deterministic, hits depend on what the state machine had up.
func (w *Wrapper) injectStream(to Addr, reset, stall bool) {
	if stall {
		d := w.cfg.StallFor
		if d == 0 {
			d = 100 * time.Millisecond
		}
		if w.faulter.StallPeer(to, d) {
			w.mu.Lock()
			w.stats.Stalls++
			w.mu.Unlock()
		}
	}
	if reset {
		if w.faulter.ResetPeer(to) {
			w.mu.Lock()
			w.stats.Resets++
			w.mu.Unlock()
		}
	}
}

// retire finishes one submitted copy, waking Quiesce at zero.
func (w *Wrapper) retire() {
	w.mu.Lock()
	w.inflight--
	if w.inflight == 0 {
		w.idle.Broadcast()
	}
	w.mu.Unlock()
}

// InjectedStats reports the faults injected so far.
func (w *Wrapper) InjectedStats() WrapperStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Stats implements Transport, reporting the inner transport's accounting.
func (w *Wrapper) Stats() Stats { return w.inner.Stats() }

// Quiesce implements Transport: it waits for the wrapper's own delayed
// copies to be submitted, then for the inner transport.
func (w *Wrapper) Quiesce() {
	w.mu.Lock()
	for w.inflight > 0 {
		w.idle.Wait()
	}
	w.mu.Unlock()
	w.inner.Quiesce()
}

// Close implements Transport.
func (w *Wrapper) Close() error { return w.inner.Close() }
