// Package transport is the seam between the guardian runtime and whatever
// carries its datagrams. The paper assumes only "an underlying network
// which provides for the transmission of messages" with no delivery
// guarantee; everything above that line (framing, fragmentation,
// corruption detection, at-most-once calls) is the system's job. This
// package pins that line down as an interface with three implementations:
//
//   - Sim wraps internal/netsim, the deterministic in-memory simulator
//     every test and the DST harness run on;
//   - UDP carries the same MTU-bounded datagrams over real net.UDPConn
//     sockets, so guardians can run as separate OS processes; and
//   - TCP multiplexes the same best-effort datagrams as length-prefixed
//     frames over persistent connections with an explicit per-peer state
//     machine (select handshake, linktest heartbeat, reconnect), removing
//     the MTU ceiling and trading per-datagram loss for WAN-realistic
//     ordered-until-reset semantics.
//
// A Wrapper composes fault injection around any Transport — loss,
// duplication and delay for datagram transports, connection resets and
// stalls for stream ones — letting the real network paths be soak-tested
// with the same fault profiles the simulator uses.
package transport

import (
	"errors"
	"time"
)

// Addr names a node on the network. Addresses are opaque strings: logical
// node names for attached peers, transport-specific observed addresses
// (e.g. "127.0.0.1:9001") for senders not yet known by name.
type Addr string

// Handler receives a datagram. Handlers are invoked on the transport's
// delivery or receive-loop goroutines and must return promptly; a blocking
// handler stalls only the goroutine that called it.
type Handler func(from Addr, payload []byte)

// Transport carries best-effort datagrams between named nodes. Messages
// may be lost, duplicated, reordered or garbled; nothing above this
// interface may assume otherwise.
type Transport interface {
	// Attach registers a handler to receive datagrams addressed to a,
	// binding whatever underlying resource (simulator slot, socket) the
	// address needs. Attaching an already-attached address replaces its
	// handler.
	Attach(a Addr, h Handler) error
	// Detach removes a from the network: its resources are released and
	// traffic addressed to it is silently discarded, exactly as for a
	// dead node. Used to model (or implement) node crashes.
	Detach(a Addr)
	// Attached reports whether a currently has a handler.
	Attached(a Addr) bool
	// Send submits one datagram from the attached address from to to. It
	// returns once the datagram's local fate is decided; delivery is
	// best-effort and errors beyond local ones are never reported.
	Send(from, to Addr, payload []byte) error
	// Learn tells the transport that the node named name was observed
	// sending from the transport-level address via, so later Sends to
	// name can be routed without static configuration. Transports whose
	// addresses are already logical names ignore it.
	Learn(name, via Addr)
	// Stats returns a snapshot of the packet accounting.
	Stats() Stats
	// Quiesce blocks until no packet is in flight, where the transport
	// can know that (the simulator can; a real network cannot, and
	// returns immediately).
	Quiesce()
	// Close shuts the transport down: all addresses detach, receive
	// loops drain, and further Sends fail with ErrClosed.
	Close() error
}

// Stats aggregates transport-wide packet accounting. All counts are since
// the transport was created.
type Stats struct {
	Sent       int64 // datagrams accepted by Send
	Delivered  int64 // handler invocations (includes duplicates)
	Dropped    int64 // known-dropped: loss model, dead destination, failed write
	Duplicated int64 // extra deliveries from a duplication model
	BytesSent  int64
	BytesRecv  int64
	RecvErrors int64 // datagrams discarded by the receive path

	// Conns is per-peer connection accounting, keyed by the peer's
	// advertised address. Only stream transports populate it; datagram
	// transports have no connections to account for and leave it nil.
	Conns map[Addr]ConnStats
}

// StreamFaulter is the fault-injection surface of stream transports.
// Datagram fault models (loss, duplication) are meaningless on a stream —
// TCP would just repair them — so the Wrapper injects the failures
// streams really have: connection resets and half-open stalls.
type StreamFaulter interface {
	// ResetPeer abruptly kills the live connection to the peer that a
	// routes to, reporting whether there was one to kill.
	ResetPeer(a Addr) bool
	// StallPeer freezes outbound writes to a's peer for d — a half-open
	// hang only heartbeat misses ever reveal. Reports whether a live
	// connection was there to stall.
	StallPeer(a Addr, d time.Duration) bool
}

// Errors reported by transports. Only local problems are ever reported;
// anything that happens after a datagram leaves is silence, as the paper
// requires.
var (
	ErrClosed       = errors.New("transport: closed")
	ErrTooLarge     = errors.New("transport: datagram exceeds MTU")
	ErrNotAttached  = errors.New("transport: sender not attached")
	ErrUnknownPeer  = errors.New("transport: no address known for peer")
	ErrEmptyPayload = errors.New("transport: empty payload")
)
