package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/netsim"
	"repro/internal/vtime"
)

// collector is a handler that records deliveries and signals each one.
type collector struct {
	mu   sync.Mutex
	got  [][]byte
	from []Addr
	ch   chan struct{}
}

func newCollector() *collector {
	return &collector{ch: make(chan struct{}, 1024)}
}

func (c *collector) handle(from Addr, payload []byte) {
	buf := make([]byte, len(payload))
	copy(buf, payload)
	c.mu.Lock()
	c.got = append(c.got, buf)
	c.from = append(c.from, from)
	c.mu.Unlock()
	c.ch <- struct{}{}
}

func (c *collector) wait(t *testing.T, n int, timeout time.Duration) {
	t.Helper()
	deadline := time.After(timeout)
	for i := 0; i < n; i++ {
		select {
		case <-c.ch:
		case <-deadline:
			t.Fatalf("timed out waiting for delivery %d/%d", i+1, n)
		}
	}
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

// both runs a subtest against each Transport implementation.
func both(t *testing.T, fn func(t *testing.T, newT func(t *testing.T, names ...Addr) Transport)) {
	t.Run("sim", func(t *testing.T) {
		fn(t, func(t *testing.T, names ...Addr) Transport {
			return NewSim(netsim.New(vtime.NewReal(), netsim.Config{}))
		})
	})
	t.Run("udp", func(t *testing.T) {
		fn(t, func(t *testing.T, names ...Addr) Transport {
			peers := make(map[Addr]string, len(names))
			for _, n := range names {
				peers[n] = "127.0.0.1:0"
			}
			u, err := NewUDP(UDPConfig{Peers: peers})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { _ = u.Close() })
			return u
		})
	})
}

func TestRoundTrip(t *testing.T) {
	both(t, func(t *testing.T, newT func(t *testing.T, names ...Addr) Transport) {
		tr := newT(t, "a", "b")
		recvA, recvB := newCollector(), newCollector()
		if err := tr.Attach("a", recvA.handle); err != nil {
			t.Fatal(err)
		}
		if err := tr.Attach("b", recvB.handle); err != nil {
			t.Fatal(err)
		}
		if err := tr.Send("a", "b", []byte("ping")); err != nil {
			t.Fatal(err)
		}
		recvB.wait(t, 1, 5*time.Second)
		if string(recvB.got[0]) != "ping" {
			t.Fatalf("b received %q", recvB.got[0])
		}
		// Reply using the transport-level observed source, as a receiver
		// without configuration would.
		if err := tr.Send("b", "a", []byte("pong")); err != nil {
			t.Fatal(err)
		}
		recvA.wait(t, 1, 5*time.Second)
		if string(recvA.got[0]) != "pong" {
			t.Fatalf("a received %q", recvA.got[0])
		}
		st := tr.Stats()
		if st.Sent != 2 || st.Delivered != 2 {
			t.Fatalf("stats: %+v", st)
		}
	})
}

func TestDetachDropsInbound(t *testing.T) {
	both(t, func(t *testing.T, newT func(t *testing.T, names ...Addr) Transport) {
		tr := newT(t, "a", "b")
		recvB := newCollector()
		if err := tr.Attach("a", func(Addr, []byte) {}); err != nil {
			t.Fatal(err)
		}
		if err := tr.Attach("b", recvB.handle); err != nil {
			t.Fatal(err)
		}
		if !tr.Attached("b") {
			t.Fatal("b should be attached")
		}
		tr.Detach("b")
		if tr.Attached("b") {
			t.Fatal("b should be detached")
		}
		if err := tr.Send("a", "b", []byte("x")); err != nil {
			t.Fatalf("send to dead node must not error: %v", err)
		}
		tr.Quiesce()
		time.Sleep(50 * time.Millisecond)
		if recvB.count() != 0 {
			t.Fatalf("detached node received %d datagrams", recvB.count())
		}
		// Re-attach: traffic flows again (a restarted node).
		if err := tr.Attach("b", recvB.handle); err != nil {
			t.Fatal(err)
		}
		if err := tr.Send("a", "b", []byte("y")); err != nil {
			t.Fatal(err)
		}
		recvB.wait(t, 1, 5*time.Second)
	})
}

func TestSendErrors(t *testing.T) {
	both(t, func(t *testing.T, newT func(t *testing.T, names ...Addr) Transport) {
		tr := newT(t, "a", "b")
		if err := tr.Attach("a", func(Addr, []byte) {}); err != nil {
			t.Fatal(err)
		}
		if err := tr.Send("ghost", "a", []byte("x")); !errors.Is(err, ErrNotAttached) {
			t.Fatalf("unattached sender: %v", err)
		}
		if err := tr.Send("a", "b", nil); !errors.Is(err, ErrEmptyPayload) {
			t.Fatalf("empty payload: %v", err)
		}
	})
}

func TestUDPMTUEnforced(t *testing.T) {
	u, err := NewUDP(UDPConfig{Peers: map[Addr]string{"a": "127.0.0.1:0"}, MTU: 512})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if err := u.Attach("a", func(Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Send("a", "a", make([]byte, 513)); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversize: %v", err)
	}
	if err := u.Send("a", "a", make([]byte, 512)); err != nil {
		t.Fatalf("at MTU: %v", err)
	}
}

func TestUDPUnknownPeerCountsAsDrop(t *testing.T) {
	u, err := NewUDP(UDPConfig{Peers: map[Addr]string{"a": "127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if err := u.Attach("a", func(Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Send("a", "nowhere", []byte("x")); err != nil {
		t.Fatalf("off-net send must be silent loss: %v", err)
	}
	st := u.Stats()
	if st.Sent != 1 || st.Dropped != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestUDPLearnRoutesReplies is the two-process shape: the server knows
// nothing about the client until a datagram arrives carrying its source
// address; Learn then lets replies route.
func TestUDPLearnRoutesReplies(t *testing.T) {
	srv, err := NewUDP(UDPConfig{Peers: map[Addr]string{"srv": "127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	echoed := newCollector()
	if err := srv.Attach("srv", func(from Addr, payload []byte) {
		// The application layer would extract the logical name from the
		// frame; here the test plays that role.
		srv.Learn("cli", from)
		_ = srv.Send("srv", "cli", append([]byte("re:"), payload...))
	}); err != nil {
		t.Fatal(err)
	}

	cli, err := NewUDP(UDPConfig{Peers: map[Addr]string{"cli": "127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Attach("cli", echoed.handle); err != nil {
		t.Fatal(err)
	}
	if err := cli.SetPeer("srv", srv.LocalAddr("srv")); err != nil {
		t.Fatal(err)
	}
	if err := cli.Send("cli", "srv", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	echoed.wait(t, 1, 5*time.Second)
	if string(echoed.got[0]) != "re:hello" {
		t.Fatalf("reply %q", echoed.got[0])
	}
}

func TestUDPCloseJoinsReceiveLoops(t *testing.T) {
	u, err := NewUDP(UDPConfig{Peers: map[Addr]string{"a": "127.0.0.1:0"}, RecvWorkers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if err := u.Attach("a", func(Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	// Idempotent, and sends now fail fast.
	if err := u.Close(); err != nil {
		t.Fatal(err)
	}
	if err := u.Send("a", "a", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if err := u.Attach("a", func(Addr, []byte) {}); !errors.Is(err, ErrClosed) {
		t.Fatalf("attach after close: %v", err)
	}
}

func TestUDPPacingSpacesBursts(t *testing.T) {
	gap := 5 * time.Millisecond
	u, err := NewUDP(UDPConfig{
		Peers:      map[Addr]string{"a": "127.0.0.1:0", "b": "127.0.0.1:0"},
		PaceMinGap: gap,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	recvB := newCollector()
	if err := u.Attach("a", func(Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := u.Attach("b", recvB.handle); err != nil {
		t.Fatal(err)
	}
	const burst = 5
	start := time.Now()
	for i := 0; i < burst; i++ {
		if err := u.Send("a", "b", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	elapsed := time.Since(start)
	// First datagram goes immediately; the other four wait one gap each.
	if want := time.Duration(burst-1) * gap; elapsed < want {
		t.Fatalf("burst of %d took %v, want >= %v", burst, elapsed, want)
	}
	recvB.wait(t, burst, 5*time.Second)
}
