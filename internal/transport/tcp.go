package transport

import (
	"bufio"
	"fmt"
	"math/rand"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultTCPMaxFrame bounds a single TCP data payload when TCPConfig
// leaves MaxFrame zero: 64 MiB, large enough for any external rep the
// bank ships today with room to grow, small enough that one hostile
// length prefix cannot ask for unbounded memory.
const DefaultTCPMaxFrame = 64 << 20

// Dialer is the seam through which the TCP transport opens outbound
// connections. *net.Dialer is the default; a *tls.Dialer (or anything
// else satisfying the same one-method contract) drops in without the
// state machine noticing — that is the whole point of the seam.
type Dialer interface {
	Dial(network, address string) (net.Conn, error)
}

// TCPConfig tunes a TCP transport.
type TCPConfig struct {
	// Listen is the "host:port" the shared listener binds (":0" for an
	// ephemeral port, read back with ListenAddr). One listener serves
	// every attached logical name: streams multiplex, they do not bind
	// per-name sockets the way UDP does.
	Listen string
	// Advertise is the address the select handshake announces to peers —
	// the address they should dial (and key their connection tables) by.
	// Empty means the listener's own address, which is right except when
	// binding a wildcard like "0.0.0.0:9001".
	Advertise string
	// Peers maps logical node names to remote listener addresses, seeding
	// the routing table; peers not listed are learned from inbound
	// traffic via Learn, exactly as for UDP.
	Peers map[Addr]string
	// MaxFrame bounds the payload of one data frame; larger sends fail
	// with ErrTooLarge. Zero means DefaultTCPMaxFrame. This is the bound
	// the stream removes the MTU in favor of: megabytes, not 1400 bytes.
	MaxFrame int
	// Dialer opens outbound connections. Nil means a *net.Dialer with
	// DialTimeout; a *tls.Dialer makes every link TLS without further
	// changes.
	Dialer Dialer
	// DialTimeout bounds one dial attempt and each handshake read/write.
	// Zero means 2s.
	DialTimeout time.Duration
	// WriteTimeout bounds one write batch; an overrun resets the
	// connection (a peer that cannot drain is indistinguishable from a
	// dead one). Zero means 10s.
	WriteTimeout time.Duration
	// Heartbeat is the linktest interval: each tick without inbound
	// traffic sends a linktest and counts a miss. Zero means 2s.
	Heartbeat time.Duration
	// MissThreshold is how many consecutive heartbeat misses a connection
	// survives before it is declared half-open and reset. Zero means 3.
	MissThreshold int
	// IdleTimeout tears down (cleanly, via deselect) a connection idle in
	// both directions, to be re-dialed on demand. Zero means 2 minutes;
	// negative disables idle teardown.
	IdleTimeout time.Duration
	// ReconnectBase / ReconnectCap bound the jittered exponential backoff
	// between reconnect attempts. Zero means 50ms / 3s.
	ReconnectBase time.Duration
	ReconnectCap  time.Duration
	// MaxSendQueue bounds the frames queued per peer while its link is
	// down; overflow drops frames (counted), because best-effort means
	// the backlog must not grow without bound. Zero means 256.
	MaxSendQueue int
	// MaxSendQueueBytes is the matching byte bound. Zero means 128 MiB.
	MaxSendQueueBytes int
	// Seed makes reconnect jitter deterministic for tests.
	Seed int64
}

func (c TCPConfig) withDefaults() TCPConfig {
	if c.MaxFrame == 0 {
		c.MaxFrame = DefaultTCPMaxFrame
	}
	if c.DialTimeout == 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 10 * time.Second
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 2 * time.Second
	}
	if c.MissThreshold == 0 {
		c.MissThreshold = 3
	}
	switch {
	case c.IdleTimeout == 0:
		c.IdleTimeout = 2 * time.Minute
	case c.IdleTimeout < 0:
		c.IdleTimeout = 0
	}
	if c.ReconnectBase == 0 {
		c.ReconnectBase = 50 * time.Millisecond
	}
	if c.ReconnectCap == 0 {
		c.ReconnectCap = 3 * time.Second
	}
	if c.MaxSendQueue == 0 {
		c.MaxSendQueue = 256
	}
	if c.MaxSendQueueBytes == 0 {
		c.MaxSendQueueBytes = 128 << 20
	}
	return c
}

func (c TCPConfig) maxQueueBytes() int { return c.MaxSendQueueBytes }

// TCP is a Transport over persistent TCP connections: one shared listener,
// one connection per peer pair regardless of how many logical names ride
// it, length-prefixed frames, an explicit per-peer connection state
// machine (see conn.go) with linktest heartbeats and capped jittered
// reconnect. Unlike the datagram transports its failure unit is the
// connection: frames are ordered and intact until a reset, and a reset
// loses whatever was queued behind it — WAN semantics, not per-datagram
// loss.
type TCP struct {
	cfg        TCPConfig
	advertised string
	dialer     Dialer
	listener   net.Listener
	done       chan struct{}

	mu       sync.Mutex
	handlers map[Addr]Handler
	routes   map[Addr]string  // logical name -> peer advertised address
	peers    map[string]*peer // advertised address -> connection machine

	closed atomic.Bool
	// wgMu is the barrier that makes Close race-free against goroutine
	// birth: goWG checks closed and Adds under it, Close flips closed and
	// then passes through it, so every goroutine is either counted before
	// the Wait or never starts.
	wgMu sync.Mutex
	wg   sync.WaitGroup

	rngMu sync.Mutex
	rng   *rand.Rand

	sent       atomic.Int64
	delivered  atomic.Int64
	dropped    atomic.Int64
	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
	recvErrors atomic.Int64
}

// NewTCP creates a TCP transport and binds its listener; configured peer
// addresses are resolved eagerly so typos surface at construction.
func NewTCP(cfg TCPConfig) (*TCP, error) {
	cfg = cfg.withDefaults()
	ln, err := net.Listen("tcp", cfg.Listen)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %q: %w", cfg.Listen, err)
	}
	t := &TCP{
		cfg:      cfg,
		listener: ln,
		done:     make(chan struct{}),
		handlers: make(map[Addr]Handler),
		routes:   make(map[Addr]string, len(cfg.Peers)),
		peers:    make(map[string]*peer),
		dialer:   cfg.Dialer,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
	}
	if t.dialer == nil {
		t.dialer = &net.Dialer{Timeout: cfg.DialTimeout}
	}
	t.advertised = cfg.Advertise
	if t.advertised == "" {
		t.advertised = ln.Addr().String()
	}
	for name, hostport := range cfg.Peers {
		if err := t.SetPeer(name, hostport); err != nil {
			_ = ln.Close()
			return nil, err
		}
	}
	t.goWG(t.acceptLoop)
	return t, nil
}

// goWG starts fn tracked by the transport's WaitGroup, refusing (false)
// once Close has begun, so Close's Wait can never miss a late birth.
func (t *TCP) goWG(fn func()) bool {
	t.wgMu.Lock()
	defer t.wgMu.Unlock()
	if t.closed.Load() {
		return false
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		fn()
	}()
	return true
}

// backoff is the delay before dial attempt n (n ≥ 1 failures so far):
// exponential from ReconnectBase, capped at ReconnectCap, jittered to
// [½d, 1½d) so a restarted peer is not hit by synchronized redials.
func (t *TCP) backoff(attempts int) time.Duration {
	d := t.cfg.ReconnectBase
	for i := 1; i < attempts && d < t.cfg.ReconnectCap; i++ {
		d *= 2
	}
	if d > t.cfg.ReconnectCap {
		d = t.cfg.ReconnectCap
	}
	t.rngMu.Lock()
	j := time.Duration(t.rng.Int63n(int64(d)))
	t.rngMu.Unlock()
	return d/2 + j
}

// ListenAddr returns the listener's actual bound address — the way tests
// and cmd/node discover the port an ephemeral bind received.
func (t *TCP) ListenAddr() string { return t.listener.Addr().String() }

// LocalAddr returns the listener address for an attached logical name
// ("" when not attached): every attached name shares the one listener.
func (t *TCP) LocalAddr(a Addr) string {
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.handlers[a]; !ok {
		return ""
	}
	return t.listener.Addr().String()
}

// SetPeer adds or replaces the routing entry for a logical peer name.
func (t *TCP) SetPeer(name Addr, hostport string) error {
	if _, err := net.ResolveTCPAddr("tcp", hostport); err != nil {
		return fmt.Errorf("transport: peer %s: %w", name, err)
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	t.routes[name] = hostport
	return nil
}

// Attach implements Transport. TCP attaching is bookkeeping only — the
// listener is shared — so any number of logical names multiplex over the
// same socket per peer pair.
func (t *TCP) Attach(a Addr, h Handler) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() {
		return ErrClosed
	}
	t.handlers[a] = h
	return nil
}

// Detach implements Transport: traffic addressed to a is discarded from
// now on, exactly as for a dead node. Connections stay up — other names
// share them.
func (t *TCP) Detach(a Addr) {
	t.mu.Lock()
	delete(t.handlers, a)
	t.mu.Unlock()
}

// Attached implements Transport.
func (t *TCP) Attached(a Addr) bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	_, ok := t.handlers[a]
	return ok
}

// Send implements Transport. The frame is queued on the destination
// peer's connection machine — dialing it first if the link is down — and
// Send returns once that local fate is decided. Frames queued behind a
// link that never comes back, or beyond the queue bound, are dropped and
// counted: best-effort, like every transport here.
func (t *TCP) Send(from, to Addr, payload []byte) error {
	if len(payload) == 0 {
		return ErrEmptyPayload
	}
	if len(payload) > t.cfg.MaxFrame {
		return fmt.Errorf("%w: %d > max frame %d", ErrTooLarge, len(payload), t.cfg.MaxFrame)
	}
	t.mu.Lock()
	if t.closed.Load() {
		t.mu.Unlock()
		return ErrClosed
	}
	if _, ok := t.handlers[from]; !ok {
		t.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotAttached, from)
	}
	route, routed := t.routes[to]
	local := route == t.advertised || !routed
	if h, ok := t.handlers[to]; ok && local {
		// Destination lives in this process: short-circuit the network.
		// The source tag keeps the observed from-address shaped exactly
		// like a remote one, so reassembly and Learn above cannot tell.
		t.mu.Unlock()
		t.sent.Add(1)
		t.delivered.Add(1)
		t.bytesSent.Add(int64(len(payload)))
		t.bytesRecv.Add(int64(len(payload)))
		cp := make([]byte, len(payload))
		copy(cp, payload)
		t.goWG(func() { h(Addr(t.advertised+"|"+string(from)), cp) })
		return nil
	}
	if local {
		// No route (or a route pointing back at us with nobody attached):
		// the frame is simply lost, as on a network with a bad route.
		t.mu.Unlock()
		t.sent.Add(1)
		t.dropped.Add(1)
		return nil
	}
	pc := t.peerLocked(route)
	t.mu.Unlock()
	t.sent.Add(1)
	pc.enqueue(encodeData(from, to, payload))
	return nil
}

// peerLocked returns (creating if needed) the connection machine for a
// peer's advertised address. Callers hold t.mu.
func (t *TCP) peerLocked(addr string) *peer {
	pc, ok := t.peers[addr]
	if !ok {
		pc = newPeer(t, addr)
		t.peers[addr] = pc
	}
	return pc
}

// peerFor is peerLocked behind the lock, refusing after Close.
func (t *TCP) peerFor(addr string) *peer {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.closed.Load() {
		return nil
	}
	return t.peerLocked(addr)
}

// acceptLoop owns the shared listener, handing each inbound connection to
// a handshake goroutine so a slow or hostile dialer cannot stall accepts.
func (t *TCP) acceptLoop() {
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			if t.closed.Load() {
				return
			}
			select {
			case <-t.done:
				return
			case <-time.After(10 * time.Millisecond):
			}
			continue
		}
		c := conn
		if !t.goWG(func() { t.handshakeIncoming(c) }) {
			_ = conn.Close()
			return
		}
	}
}

// handshakeIncoming runs the acceptor's side of the select exchange: read
// the select (which advertises the dialer's listener address — the
// identity everything is keyed by), break simultaneous-dial ties
// deterministically, ack, and install the connection on the peer machine.
func (t *TCP) handshakeIncoming(conn net.Conn) {
	_ = conn.SetDeadline(time.Now().Add(t.cfg.DialTimeout))
	br := bufio.NewReaderSize(conn, 64<<10)
	typ, body, err := readFrame(br, 4096)
	if err != nil || typ != frameSelect {
		_ = conn.Close()
		return
	}
	peerAdv, err := decodeControl(body)
	if err != nil || peerAdv == "" || peerAdv == t.advertised {
		_ = conn.Close()
		return
	}
	pc := t.peerFor(peerAdv)
	if pc == nil {
		_ = conn.Close()
		return
	}
	pc.mu.Lock()
	midDial := pc.state == stDialing || pc.state == stSelecting
	pc.mu.Unlock()
	if midDial && t.advertised < peerAdv {
		// Simultaneous dial: both sides raced a connection at each other.
		// The lower advertised address wins as dialer, so here — holding
		// the lower address, mid-dial — we refuse the peer's connection
		// and let ours carry the link. The peer's acceptor applies the
		// mirrored rule and adopts ours.
		_, _ = conn.Write(encodeControl(frameDeselect, "collision"))
		_ = conn.Close()
		return
	}
	if _, err := conn.Write(encodeControl(frameSelectAck, t.advertised)); err != nil {
		_ = conn.Close()
		return
	}
	_ = conn.SetDeadline(time.Time{})
	// If a connection is already installed, this one replaces it: a peer
	// that redials believes the old link dead (half-open from our side),
	// and believing it is the only evidence anyone will ever get.
	if !pc.install(conn, br) {
		_ = conn.Close()
	}
}

// deliver hands one inbound data frame to the attached handler for dst.
// The observed from-address is "peerAddr|srcName": the peer's advertised
// address (so Learn can route replies) tagged with the logical source (so
// fragment reassembly stays keyed per logical sender even when many share
// the stream).
func (t *TCP) deliver(peerAddr string, src, dst Addr, payload []byte) {
	t.mu.Lock()
	h, ok := t.handlers[dst]
	t.mu.Unlock()
	t.bytesRecv.Add(int64(len(payload)))
	if !ok {
		t.dropped.Add(1)
		return
	}
	t.delivered.Add(1)
	h(Addr(peerAddr+"|"+string(src)), payload)
}

// Learn implements Transport: name was observed sending from via, so
// route later frames for name to that peer. The via a handler sees is
// "peerAddr|srcName"; only the peer address routes. Attached (local)
// names are never overwritten.
func (t *TCP) Learn(name, via Addr) {
	host := string(via)
	if i := strings.IndexByte(host, '|'); i >= 0 {
		host = host[:i]
	}
	if host == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, local := t.handlers[name]; local {
		return
	}
	t.routes[name] = host
}

// Stats implements Transport. Conns carries the per-peer connection
// machine counters, keyed by peer advertised address.
func (t *TCP) Stats() Stats {
	st := Stats{
		Sent:       t.sent.Load(),
		Delivered:  t.delivered.Load(),
		Dropped:    t.dropped.Load(),
		BytesSent:  t.bytesSent.Load(),
		BytesRecv:  t.bytesRecv.Load(),
		RecvErrors: t.recvErrors.Load(),
	}
	t.mu.Lock()
	pcs := make(map[Addr]*peer, len(t.peers))
	for a, pc := range t.peers {
		pcs[Addr(a)] = pc
	}
	t.mu.Unlock()
	if len(pcs) > 0 {
		st.Conns = make(map[Addr]ConnStats, len(pcs))
		for a, pc := range pcs {
			st.Conns[a] = pc.snapshot()
		}
	}
	return st
}

// Quiesce implements Transport: it waits out frames queued on live
// (established or draining) connections. Frames parked behind a downed
// link don't block it — whether they ever go is the reconnect loop's
// business, and a real network gives no better promise.
func (t *TCP) Quiesce() {
	for {
		if t.closed.Load() {
			return
		}
		t.mu.Lock()
		pcs := make([]*peer, 0, len(t.peers))
		for _, pc := range t.peers {
			pcs = append(pcs, pc)
		}
		t.mu.Unlock()
		busy := false
		now := time.Now()
		for _, pc := range pcs {
			pc.mu.Lock()
			live := pc.state == stEstablished || pc.state == stDraining
			if live && len(pc.outq) > 0 && pc.stallUntil.Before(now) {
				busy = true
			}
			pc.mu.Unlock()
			if busy {
				break
			}
		}
		if !busy {
			return
		}
		select {
		case <-t.done:
			return
		case <-time.After(time.Millisecond):
		}
	}
}

// faultPeer resolves a fault-injection target — a logical name, a peer
// advertised address, or an observed "addr|src" — to its connection
// machine, if one exists.
func (t *TCP) faultPeer(a Addr) *peer {
	key := string(a)
	if i := strings.IndexByte(key, '|'); i >= 0 {
		key = key[:i]
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if r, ok := t.routes[Addr(key)]; ok {
		key = r
	}
	return t.peers[key]
}

// ResetPeer implements StreamFaulter: abruptly kill the live connection
// to the peer a routes to, as a mid-stream RST would. Reports whether
// there was a connection to kill.
func (t *TCP) ResetPeer(a Addr) bool {
	pc := t.faultPeer(a)
	return pc != nil && pc.reset()
}

// StallPeer implements StreamFaulter: freeze the write pump toward a for
// d — the injected half-open hang that only linktest misses reveal.
func (t *TCP) StallPeer(a Addr, d time.Duration) bool {
	pc := t.faultPeer(a)
	return pc != nil && pc.stall(d)
}

// Close implements Transport: the listener closes, every connection is
// torn down, and every goroutine the transport ever started is joined
// before Close returns, so no handler runs after it.
func (t *TCP) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	// Pass through the barrier: after this, goWG refuses, so the Wait
	// below cannot miss a birth.
	t.wgMu.Lock()
	t.wgMu.Unlock() //nolint:staticcheck // empty critical section is the barrier
	close(t.done)
	_ = t.listener.Close()
	t.mu.Lock()
	pcs := make([]*peer, 0, len(t.peers))
	for _, pc := range t.peers {
		pcs = append(pcs, pc)
	}
	t.peers = make(map[string]*peer)
	t.handlers = make(map[Addr]Handler)
	t.mu.Unlock()
	for _, pc := range pcs {
		pc.close()
	}
	t.wg.Wait()
	return nil
}
