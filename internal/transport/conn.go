package transport

import (
	"bufio"
	"net"
	"sync"
	"time"
)

// connState is where one peer's connection stands. The TCP transport keeps
// an explicit machine per peer rather than an implicit one smeared across
// goroutine liveness, because every interesting WAN failure is a
// transition here: a dial that never completes, a handshake that hangs, a
// reset mid-stream, a half-open link only a missed linktest reveals.
type connState int32

const (
	// stIdle: no connection and nobody working on one. Reached at start,
	// after a clean teardown with nothing left to send, and after a reset
	// once the send queue is empty. The next Send kicks off a dial.
	stIdle connState = iota
	// stDialing: a dial loop is running — sleeping out backoff, dialing,
	// or retrying. The send queue buffers traffic meanwhile.
	stDialing
	// stSelecting: TCP is up, the select handshake is in flight.
	stSelecting
	// stEstablished: selected; data flows, linktests guard liveness.
	stEstablished
	// stDraining: a deselect was queued (idle teardown); the writer
	// flushes what is queued, then closes cleanly.
	stDraining
	// stClosed: the transport is shut down; terminal.
	stClosed
)

func (s connState) String() string {
	switch s {
	case stIdle:
		return "idle"
	case stDialing:
		return "dialing"
	case stSelecting:
		return "selecting"
	case stEstablished:
		return "established"
	case stDraining:
		return "draining"
	case stClosed:
		return "closed"
	}
	return "unknown"
}

// ConnStats is one peer's connection accounting, reported under
// Stats.Conns keyed by the peer's canonical (advertised listener) address.
type ConnStats struct {
	// State is the connection state machine's current position.
	State string
	// Dials counts dial attempts, successful or not.
	Dials int64
	// Resets counts unclean connection deaths: read/write errors, RST,
	// handshake failures of a live stream, linktest giveups. Clean
	// deselect closes are not resets.
	Resets int64
	// Reconnects counts re-establishments after the first: how many times
	// the link came back, by redial or by accepting the peer's redial.
	Reconnects int64
	// HeartbeatsMissed counts linktest rounds that saw no traffic from
	// the peer — the early-warning counter for half-open links.
	HeartbeatsMissed int64
	// QueueDrops counts frames discarded because the pending-send queue
	// was full while the link was down.
	QueueDrops int64
}

// peer is one remote transport endpoint: the state machine, the pending
// frame queue, and the live connection's plumbing. All fields are guarded
// by mu; the wake condition signals the writer and any state change.
type peer struct {
	t    *TCP
	addr string // canonical remote listener address: dial target and table key

	mu   sync.Mutex
	wake *sync.Cond

	state connState
	conn  net.Conn
	bw    *bufio.Writer
	// gen ties reader/writer/heartbeat goroutines to one installed
	// connection: every install or teardown bumps it, and a goroutine
	// that finds its gen stale exits without touching newer state.
	gen uint64

	outq   [][]byte // encoded frames awaiting an established connection
	qbytes int

	dialing     bool // a dial loop goroutine is live
	attempts    int  // consecutive failed dials, for backoff
	established bool // ever established (Reconnects discriminator)
	missed      int  // consecutive linktest rounds without inbound traffic
	stallUntil  time.Time
	lastRecv    time.Time // any inbound frame: the liveness clock
	lastData    time.Time // data frames only: the idleness clock —
	// linktests must not count, or heartbeats would keep an unused
	// connection "active" forever

	stats ConnStats
}

func newPeer(t *TCP, addr string) *peer {
	pc := &peer{t: t, addr: addr}
	pc.wake = sync.NewCond(&pc.mu)
	return pc
}

// snapshot reports the peer's counters.
func (pc *peer) snapshot() ConnStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	st := pc.stats
	st.State = pc.state.String()
	return st
}

// enqueue queues one encoded frame and makes sure something will carry it:
// the live writer if established, a fresh dial loop otherwise. A full
// queue drops the frame — the link is down and best-effort means the
// backlog must not grow without bound.
func (pc *peer) enqueue(frame []byte) {
	pc.mu.Lock()
	if pc.state == stClosed {
		pc.mu.Unlock()
		pc.t.dropped.Add(1)
		return
	}
	if len(pc.outq) >= pc.t.cfg.MaxSendQueue || pc.qbytes+len(frame) > pc.t.cfg.maxQueueBytes() {
		pc.stats.QueueDrops++
		pc.mu.Unlock()
		pc.t.dropped.Add(1)
		return
	}
	pc.outq = append(pc.outq, frame)
	pc.qbytes += len(frame)
	pc.lastData = time.Now()
	if pc.state == stIdle {
		pc.startDialLocked()
	}
	pc.wake.Broadcast()
	pc.mu.Unlock()
}

// startDialLocked moves idle → dialing and launches the dial loop. Callers
// hold mu.
func (pc *peer) startDialLocked() {
	if pc.dialing || pc.t.closed.Load() {
		return
	}
	pc.dialing = true
	pc.state = stDialing
	if !pc.t.goWG(pc.dialLoop) {
		pc.dialing = false
		pc.state = stClosed
	}
}

// dialLoop dials the peer until a connection is established, the queue
// has nothing left worth carrying, or the transport closes. Backoff grows
// exponentially from ReconnectBase to ReconnectCap with ±half jitter, so
// a dead peer costs one capped-rate probe stream and a flapping one does
// not synchronize its reconnectors.
func (pc *peer) dialLoop() {
	defer func() {
		pc.mu.Lock()
		pc.dialing = false
		if pc.state == stDialing {
			pc.state = stIdle
		}
		pc.mu.Unlock()
	}()
	for {
		var delay time.Duration
		pc.mu.Lock()
		if pc.state != stDialing {
			pc.mu.Unlock()
			return // an accepted connection was adopted meanwhile
		}
		if pc.attempts > 0 {
			delay = pc.t.backoff(pc.attempts)
		}
		pc.stats.Dials++
		pc.attempts++
		pc.mu.Unlock()

		if delay > 0 {
			select {
			case <-pc.t.done:
				return
			case <-time.After(delay):
			}
		}
		if pc.t.closed.Load() {
			return
		}
		conn, err := pc.t.dialer.Dial("tcp", pc.addr)
		if err != nil {
			continue
		}
		br, ok := pc.handshakeOut(conn)
		if !ok {
			_ = conn.Close()
			// The collision path adopts the peer's inbound connection
			// while ours is mid-handshake; if that happened, stop dialing.
			pc.mu.Lock()
			adopted := pc.state == stEstablished || pc.state == stDraining
			if pc.state == stSelecting {
				pc.state = stDialing
			}
			pc.mu.Unlock()
			if adopted {
				return
			}
			continue
		}
		if pc.install(conn, br) {
			return
		}
		_ = conn.Close()
		return // someone else installed; their connection carries the queue
	}
}

// handshakeOut runs the dialer's side of the select exchange. It returns
// the buffered reader positioned after the selectAck, so no bytes the peer
// sent early are lost to a second reader.
func (pc *peer) handshakeOut(conn net.Conn) (*bufio.Reader, bool) {
	pc.mu.Lock()
	if pc.state == stDialing {
		pc.state = stSelecting
	}
	pc.mu.Unlock()
	deadline := time.Now().Add(pc.t.cfg.DialTimeout)
	_ = conn.SetDeadline(deadline)
	if _, err := conn.Write(encodeControl(frameSelect, pc.t.advertised)); err != nil {
		return nil, false
	}
	br := bufio.NewReaderSize(conn, 64<<10)
	typ, body, err := readFrame(br, 4096)
	if err != nil || typ != frameSelectAck {
		return nil, false
	}
	if _, err := decodeControl(body); err != nil {
		return nil, false
	}
	_ = conn.SetDeadline(time.Time{})
	return br, true
}

// install makes conn the peer's live connection: state goes established,
// the reader/writer/heartbeat trio starts, and any queued frames flow.
// It declines (returning false) when the transport is closing or another
// connection was installed first.
func (pc *peer) install(conn net.Conn, br *bufio.Reader) bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return pc.installLocked(conn, br)
}

func (pc *peer) installLocked(conn net.Conn, br *bufio.Reader) bool {
	if pc.t.closed.Load() || pc.state == stClosed {
		return false
	}
	if pc.conn != nil {
		// An accepted redial replaces a connection we still thought live:
		// ours was half-open or lost the collision tie-break. Closing it
		// unblocks its goroutines; the gen bump below orphans them.
		_ = pc.conn.Close()
	}
	pc.gen++
	g := pc.gen
	pc.conn = conn
	pc.bw = bufio.NewWriterSize(conn, 64<<10)
	pc.state = stEstablished
	pc.attempts = 0
	pc.missed = 0
	now := time.Now()
	pc.lastRecv, pc.lastData = now, now
	if pc.established {
		pc.stats.Reconnects++
	}
	pc.established = true
	started := pc.t.goWG(func() { pc.reader(g, br) }) &&
		pc.t.goWG(func() { pc.writer(g, conn) }) &&
		pc.t.goWG(func() { pc.heartbeat(g) })
	if !started {
		// Closing raced us: undo. Close's sweep may have missed this conn.
		_ = conn.Close()
		pc.conn, pc.bw = nil, nil
		pc.state = stClosed
		return false
	}
	pc.wake.Broadcast()
	return true
}

// teardown retires generation g's connection. clean marks deliberate
// closes (deselect, shutdown); everything else is a reset. Pending frames
// survive: if any are queued and the transport is open, a redial starts
// immediately — the reconnect path.
func (pc *peer) teardown(g uint64, clean bool) {
	pc.mu.Lock()
	if pc.gen != g || pc.conn == nil {
		pc.mu.Unlock()
		return
	}
	conn := pc.conn
	pc.gen++
	pc.conn, pc.bw = nil, nil
	if !clean {
		pc.stats.Resets++
	}
	if pc.state != stClosed {
		pc.state = stIdle
		if len(pc.outq) > 0 && !pc.t.closed.Load() {
			pc.startDialLocked()
		}
	}
	pc.wake.Broadcast()
	pc.mu.Unlock()
	_ = conn.Close()
}

// close is the transport-shutdown path: terminal state, connection closed,
// queue discarded, everyone woken so they can observe stClosed and exit.
func (pc *peer) close() {
	pc.mu.Lock()
	conn := pc.conn
	pc.gen++
	pc.conn, pc.bw = nil, nil
	pc.state = stClosed
	pc.outq, pc.qbytes = nil, 0
	pc.wake.Broadcast()
	pc.mu.Unlock()
	if conn != nil {
		_ = conn.Close()
	}
}

// reader drains generation g's connection: data frames go to attached
// handlers, linktests are answered, a deselect ends the connection
// cleanly, and any error or protocol violation resets it.
func (pc *peer) reader(g uint64, br *bufio.Reader) {
	maxBody := pc.t.cfg.MaxFrame + frameOverhead
	for {
		typ, body, err := readFrame(br, maxBody)
		if err != nil {
			pc.teardown(g, false)
			return
		}
		now := time.Now()
		pc.mu.Lock()
		if pc.gen != g {
			pc.mu.Unlock()
			return
		}
		pc.lastRecv = now
		pc.missed = 0
		if typ == frameData {
			pc.lastData = now
		}
		pc.mu.Unlock()
		switch typ {
		case frameData:
			src, dst, payload, err := decodeData(body)
			if err != nil {
				pc.t.recvErrors.Add(1)
				pc.teardown(g, false)
				return
			}
			pc.t.deliver(pc.addr, src, dst, payload)
		case frameLinktest:
			pc.control(g, encodeControl(frameLinktestAck, ""))
		case frameLinktestAck:
			// lastRecv above is the whole point.
		case frameDeselect:
			pc.teardown(g, true)
			return
		default:
			// select/selectAck mid-stream: the peer lost protocol sync.
			pc.t.recvErrors.Add(1)
			pc.teardown(g, false)
			return
		}
	}
}

// control queues a control frame on generation g's connection, bypassing
// the best-effort queue bound (control traffic is tiny and losing a
// linktest ack manufactures a false reset).
func (pc *peer) control(g uint64, frame []byte) {
	pc.mu.Lock()
	if pc.gen == g && pc.state != stClosed {
		pc.outq = append(pc.outq, frame)
		pc.qbytes += len(frame)
		pc.wake.Broadcast()
	}
	pc.mu.Unlock()
}

// writer flushes the frame queue onto generation g's connection. Writes
// happen outside the lock; a write error resets the connection (the frames
// of the batch die with it — ordered-until-reset). An injected stall
// freezes the pump wholesale, which is how a half-open hang looks from
// the peer's side.
func (pc *peer) writer(g uint64, conn net.Conn) {
	for {
		pc.mu.Lock()
		for pc.gen == g && len(pc.outq) == 0 && pc.state == stEstablished {
			pc.wake.Wait()
		}
		if pc.gen != g {
			pc.mu.Unlock()
			return
		}
		batch := pc.outq
		pc.outq, pc.qbytes = nil, 0
		draining := pc.state == stDraining
		stall := pc.stallUntil
		bw := pc.bw
		pc.mu.Unlock()

		if wait := time.Until(stall); wait > 0 {
			select {
			case <-pc.t.done:
				return
			case <-time.After(wait):
			}
		}
		var n int64
		for _, f := range batch {
			n += int64(len(f))
		}
		_ = conn.SetWriteDeadline(time.Now().Add(pc.t.cfg.WriteTimeout))
		for _, f := range batch {
			if _, err := bw.Write(f); err != nil {
				pc.teardown(g, false)
				return
			}
		}
		if err := bw.Flush(); err != nil {
			pc.teardown(g, false)
			return
		}
		pc.t.bytesSent.Add(n)
		pc.mu.Lock()
		empty := len(pc.outq) == 0
		pc.mu.Unlock()
		if draining && empty {
			pc.teardown(g, true)
			return
		}
	}
}

// heartbeat is generation g's liveness and idleness sentinel. Each tick
// with no inbound traffic sends a linktest and counts a miss; enough
// consecutive misses reset the connection. A connection that carried no
// data in either direction for IdleTimeout is deselected and drained
// instead — clean teardown, to be re-dialed on demand. Idleness is judged
// on the data clock alone: linktest chatter must not keep an unused
// connection alive, or idle teardown could never fire.
func (pc *peer) heartbeat(g uint64) {
	hb := pc.t.cfg.Heartbeat
	ticker := time.NewTicker(hb)
	defer ticker.Stop()
	for {
		select {
		case <-pc.t.done:
			return
		case <-ticker.C:
		}
		now := time.Now()
		pc.mu.Lock()
		if pc.gen != g {
			pc.mu.Unlock()
			return
		}
		if pc.state == stEstablished && pc.t.cfg.IdleTimeout > 0 &&
			now.Sub(pc.lastData) > pc.t.cfg.IdleTimeout && len(pc.outq) == 0 {
			pc.state = stDraining
			pc.outq = append(pc.outq, encodeControl(frameDeselect, "idle"))
			pc.wake.Broadcast()
			pc.mu.Unlock()
			continue
		}
		if now.Sub(pc.lastRecv) <= hb {
			pc.missed = 0
			pc.mu.Unlock()
			continue
		}
		pc.missed++
		pc.stats.HeartbeatsMissed++
		give := pc.missed > pc.t.cfg.MissThreshold
		if !give {
			pc.outq = append(pc.outq, encodeControl(frameLinktest, ""))
			pc.wake.Broadcast()
		}
		pc.mu.Unlock()
		if give {
			pc.teardown(g, false)
			return
		}
	}
}

// stall freezes the peer's write pump until now+d — the injected
// half-open hang. Returns whether a live connection was there to stall.
func (pc *peer) stall(d time.Duration) bool {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	pc.stallUntil = time.Now().Add(d)
	return pc.conn != nil
}

// reset abruptly kills the live connection, as a RST from the network
// would. Returns whether there was one to kill.
func (pc *peer) reset() bool {
	pc.mu.Lock()
	g, live := pc.gen, pc.conn != nil
	pc.mu.Unlock()
	if live {
		pc.teardown(g, false)
	}
	return live
}
