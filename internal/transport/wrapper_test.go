package transport

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingTransport records sends without moving any bytes.
type countingTransport struct {
	mu    sync.Mutex
	sends [][]byte
}

func (c *countingTransport) Attach(a Addr, h Handler) error { return nil }
func (c *countingTransport) Detach(a Addr)                  {}
func (c *countingTransport) Attached(a Addr) bool           { return true }
func (c *countingTransport) Learn(name, via Addr)           {}
func (c *countingTransport) Stats() Stats                   { return Stats{} }
func (c *countingTransport) Quiesce()                       {}
func (c *countingTransport) Close() error                   { return nil }
func (c *countingTransport) Send(from, to Addr, payload []byte) error {
	buf := make([]byte, len(payload))
	copy(buf, payload)
	c.mu.Lock()
	c.sends = append(c.sends, buf)
	c.mu.Unlock()
	return nil
}

func (c *countingTransport) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sends)
}

func TestWrapperLossAndDupRates(t *testing.T) {
	inner := &countingTransport{}
	w := Wrap(inner, WrapperConfig{Seed: 42, LossRate: 0.2, DupRate: 0.2})
	const n = 5000
	for i := 0; i < n; i++ {
		if err := w.Send("a", "b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	w.Quiesce()
	st := w.InjectedStats()
	if st.Sent != n {
		t.Fatalf("sent %d", st.Sent)
	}
	if lo, hi := int64(n)*15/100, int64(n)*25/100; st.Lost < lo || st.Lost > hi {
		t.Fatalf("lost %d of %d, want ~20%%", st.Lost, n)
	}
	// Duplication applies only to surviving datagrams.
	surv := st.Sent - st.Lost
	if lo, hi := surv*15/100, surv*25/100; st.Duplicated < lo || st.Duplicated > hi {
		t.Fatalf("duplicated %d of %d survivors, want ~20%%", st.Duplicated, surv)
	}
	if got, want := int64(inner.count()), surv+st.Duplicated; got != want {
		t.Fatalf("inner saw %d sends, want %d", got, want)
	}
}

func TestWrapperDeterministicFates(t *testing.T) {
	run := func() (WrapperStats, int) {
		inner := &countingTransport{}
		w := Wrap(inner, WrapperConfig{Seed: 7, LossRate: 0.3, DupRate: 0.3})
		for i := 0; i < 500; i++ {
			_ = w.Send("a", "b", []byte{byte(i)})
		}
		w.Quiesce()
		return w.InjectedStats(), inner.count()
	}
	s1, c1 := run()
	s2, c2 := run()
	if s1 != s2 || c1 != c2 {
		t.Fatalf("same seed diverged: %+v/%d vs %+v/%d", s1, c1, s2, c2)
	}
}

func TestWrapperDelayAndQuiesce(t *testing.T) {
	inner := &countingTransport{}
	w := Wrap(inner, WrapperConfig{Seed: 1, Delay: 20 * time.Millisecond})
	start := time.Now()
	if err := w.Send("a", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	// Send itself must not block on the injected delay.
	if since := time.Since(start); since > 10*time.Millisecond {
		t.Fatalf("send blocked %v on injected delay", since)
	}
	w.Quiesce()
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("quiesce returned before the delayed copy was submitted")
	}
	if inner.count() != 1 {
		t.Fatalf("inner saw %d sends", inner.count())
	}
	if st := w.InjectedStats(); st.Delayed != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestWrapperPassthrough(t *testing.T) {
	u, err := NewUDP(UDPConfig{Peers: map[Addr]string{"a": "127.0.0.1:0", "b": "127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	w := Wrap(u, WrapperConfig{Seed: 3})
	defer w.Close()
	var got atomic.Int64
	done := make(chan struct{}, 16)
	if err := w.Attach("a", func(Addr, []byte) {}); err != nil {
		t.Fatal(err)
	}
	if err := w.Attach("b", func(from Addr, p []byte) { got.Add(1); done <- struct{}{} }); err != nil {
		t.Fatal(err)
	}
	if !w.Attached("b") {
		t.Fatal("attached passthrough")
	}
	if err := w.Send("a", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("datagram did not pass through wrapper onto UDP")
	}
	if w.Network() != nil {
		t.Fatal("UDP-backed wrapper must not report a simulator network")
	}
	w.Detach("b")
	if w.Attached("b") {
		t.Fatal("detach passthrough")
	}
}

// streamFaultTransport is a countingTransport that also exposes the
// stream fault surface, recording every injected fault.
type streamFaultTransport struct {
	countingTransport
	mu2    sync.Mutex
	resets []Addr
	stalls []time.Duration
	live   bool
}

func (s *streamFaultTransport) ResetPeer(a Addr) bool {
	s.mu2.Lock()
	defer s.mu2.Unlock()
	if !s.live {
		return false
	}
	s.resets = append(s.resets, a)
	return true
}

func (s *streamFaultTransport) StallPeer(a Addr, d time.Duration) bool {
	s.mu2.Lock()
	defer s.mu2.Unlock()
	if !s.live {
		return false
	}
	s.stalls = append(s.stalls, d)
	return true
}

func TestWrapperStreamFaults(t *testing.T) {
	inner := &streamFaultTransport{live: true}
	w := Wrap(inner, WrapperConfig{Seed: 11, ResetRate: 0.2, StallRate: 0.2, StallFor: 5 * time.Millisecond})
	const n = 5000
	for i := 0; i < n; i++ {
		if err := w.Send("a", "b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	w.Quiesce()
	st := w.InjectedStats()
	if lo, hi := int64(n)*15/100, int64(n)*25/100; st.Resets < lo || st.Resets > hi {
		t.Fatalf("resets %d of %d, want ~20%%", st.Resets, n)
	}
	if lo, hi := int64(n)*15/100, int64(n)*25/100; st.Stalls < lo || st.Stalls > hi {
		t.Fatalf("stalls %d of %d, want ~20%%", st.Stalls, n)
	}
	inner.mu2.Lock()
	defer inner.mu2.Unlock()
	if int64(len(inner.resets)) != st.Resets || int64(len(inner.stalls)) != st.Stalls {
		t.Fatalf("inner saw %d resets / %d stalls, stats say %d / %d",
			len(inner.resets), len(inner.stalls), st.Resets, st.Stalls)
	}
	for _, d := range inner.stalls {
		if d != 5*time.Millisecond {
			t.Fatalf("stall duration %v, want 5ms", d)
		}
	}
}

func TestWrapperStreamFaultsCountOnlyHits(t *testing.T) {
	inner := &streamFaultTransport{live: false} // no live connections: every fault misses
	w := Wrap(inner, WrapperConfig{Seed: 11, ResetRate: 1, StallRate: 1})
	for i := 0; i < 100; i++ {
		_ = w.Send("a", "b", []byte("x"))
	}
	if st := w.InjectedStats(); st.Resets != 0 || st.Stalls != 0 {
		t.Fatalf("missed faults were counted: %+v", st)
	}
}

func TestWrapperStreamRatesInertOnDatagramInner(t *testing.T) {
	inner := &countingTransport{} // no StreamFaulter surface
	w := Wrap(inner, WrapperConfig{Seed: 11, ResetRate: 1, StallRate: 1})
	for i := 0; i < 50; i++ {
		if err := w.Send("a", "b", []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	if st := w.InjectedStats(); st.Resets != 0 || st.Stalls != 0 {
		t.Fatalf("stream faults on a datagram transport: %+v", st)
	}
	if inner.count() != 50 {
		t.Fatalf("inner saw %d sends, want 50", inner.count())
	}
}

func TestWrapperStreamFatesDeterministic(t *testing.T) {
	run := func() WrapperStats {
		inner := &streamFaultTransport{live: true}
		w := Wrap(inner, WrapperConfig{Seed: 23, ResetRate: 0.3, StallRate: 0.3})
		for i := 0; i < 500; i++ {
			_ = w.Send("a", "b", []byte{byte(i)})
		}
		w.Quiesce()
		return w.InjectedStats()
	}
	if s1, s2 := run(), run(); s1 != s2 {
		t.Fatalf("same seed diverged: %+v vs %+v", s1, s2)
	}
}
