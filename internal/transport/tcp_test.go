package transport

import (
	"bytes"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// tcpPair builds two TCP transports that know each other: each side's
// routing table maps every name in the other side's names list to the
// other listener. Heartbeat and reconnect timings are compressed so
// failure tests run in milliseconds.
func tcpPair(t *testing.T, tune func(*TCPConfig), aNames, bNames []Addr) (*TCP, *TCP) {
	t.Helper()
	mk := func(seed int64) *TCP {
		cfg := TCPConfig{
			Listen:        "127.0.0.1:0",
			Heartbeat:     50 * time.Millisecond,
			MissThreshold: 3,
			IdleTimeout:   -1,
			ReconnectBase: 5 * time.Millisecond,
			ReconnectCap:  50 * time.Millisecond,
			Seed:          seed,
		}
		if tune != nil {
			tune(&cfg)
		}
		tr, err := NewTCP(cfg)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = tr.Close() })
		return tr
	}
	a, b := mk(1), mk(2)
	for _, n := range bNames {
		if err := a.SetPeer(n, b.ListenAddr()); err != nil {
			t.Fatal(err)
		}
	}
	for _, n := range aNames {
		if err := b.SetPeer(n, a.ListenAddr()); err != nil {
			t.Fatal(err)
		}
	}
	return a, b
}

func TestTCPRoundTripAndLearnedReply(t *testing.T) {
	// b gets no static route to "cli": the reply must ride what Learn
	// extracts from the observed from-address.
	a, b := tcpPair(t, nil, nil, []Addr{"srv"})
	recvCli, recvSrv := newCollector(), newCollector()
	if err := a.Attach("cli", recvCli.handle); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach("srv", recvSrv.handle); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("cli", "srv", []byte("ping")); err != nil {
		t.Fatal(err)
	}
	recvSrv.wait(t, 1, 5*time.Second)
	if string(recvSrv.got[0]) != "ping" {
		t.Fatalf("got %q, want ping", recvSrv.got[0])
	}
	// The observed from-address is "peerAddr|srcName"; Learn on it must
	// route the reply back without b ever having configured "cli".
	from := recvSrv.from[0]
	if !strings.HasSuffix(string(from), "|cli") {
		t.Fatalf("from = %q, want peer address tagged |cli", from)
	}
	b.Learn("cli", from)
	if err := b.Send("srv", "cli", []byte("pong")); err != nil {
		t.Fatal(err)
	}
	recvCli.wait(t, 1, 5*time.Second)
	if string(recvCli.got[0]) != "pong" {
		t.Fatalf("reply got %q, want pong", recvCli.got[0])
	}
	// The reply must reuse the inbound connection, not dial a second one.
	bs := b.Stats()
	var dials int64
	for _, cs := range bs.Conns {
		dials += cs.Dials
	}
	if dials != 0 {
		t.Fatalf("reply dialed %d times, want 0 (reuse inbound connection)", dials)
	}
}

func TestTCPMultiplexManyNamesOneConnection(t *testing.T) {
	names := []Addr{"g0", "g1", "g2", "g3", "g4", "g5", "g6", "g7"}
	a, b := tcpPair(t, nil, []Addr{"cli"}, names)
	if err := a.Attach("cli", newCollector().handle); err != nil {
		t.Fatal(err)
	}
	recv := newCollector()
	for _, n := range names {
		if err := b.Attach(n, recv.handle); err != nil {
			t.Fatal(err)
		}
	}
	for i, n := range names {
		if err := a.Send("cli", n, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	recv.wait(t, len(names), 5*time.Second)
	st := a.Stats()
	if len(st.Conns) != 1 {
		t.Fatalf("a has %d peer machines, want 1", len(st.Conns))
	}
	for addr, cs := range st.Conns {
		if cs.Dials != 1 {
			t.Fatalf("peer %s: %d dials for %d names, want 1 (multiplexing)", addr, cs.Dials, len(names))
		}
		if cs.State != "established" {
			t.Fatalf("peer %s state %q, want established", addr, cs.State)
		}
	}
}

func TestTCPLargeFrameBeyondUDPMTU(t *testing.T) {
	const size = 4 << 20 // 4 MiB: ~64× the UDP absolute maximum
	a, b := tcpPair(t, nil, []Addr{"cli"}, []Addr{"srv"})
	recv := newCollector()
	if err := a.Attach("cli", newCollector().handle); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach("srv", recv.handle); err != nil {
		t.Fatal(err)
	}
	big := bytes.Repeat([]byte{0xAB}, size)
	big[0], big[size-1] = 1, 2
	if err := a.Send("cli", "srv", big); err != nil {
		t.Fatal(err)
	}
	recv.wait(t, 1, 10*time.Second)
	if !bytes.Equal(recv.got[0], big) {
		t.Fatalf("large frame corrupted in transit (len %d, want %d)", len(recv.got[0]), size)
	}

	// Pin the ceiling TCP removes: the very same payload is unsendable
	// over UDP even at the protocol's absolute maximum MTU.
	u, err := NewUDP(UDPConfig{Peers: map[Addr]string{"cli": "127.0.0.1:0"}, MTU: maxUDPDatagram})
	if err != nil {
		t.Fatal(err)
	}
	defer u.Close()
	if err := u.Attach("cli", newCollector().handle); err != nil {
		t.Fatal(err)
	}
	if err := u.Send("cli", "srv", big); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("UDP send of %d bytes: err = %v, want ErrTooLarge", size, err)
	}
}

func TestTCPReconnectAfterReset(t *testing.T) {
	a, b := tcpPair(t, nil, []Addr{"cli"}, []Addr{"srv"})
	recv := newCollector()
	if err := a.Attach("cli", newCollector().handle); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach("srv", recv.handle); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("cli", "srv", []byte("one")); err != nil {
		t.Fatal(err)
	}
	recv.wait(t, 1, 5*time.Second)

	if !a.ResetPeer("srv") {
		t.Fatal("ResetPeer found no live connection")
	}
	// The next send finds the link down, queues, redials, and delivers.
	deadline := time.Now().Add(5 * time.Second)
	for recv.count() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("no delivery after reset")
		}
		if err := a.Send("cli", "srv", []byte("two")); err != nil {
			t.Fatal(err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := a.Stats()
	for addr, cs := range st.Conns {
		if cs.Resets < 1 {
			t.Errorf("peer %s: resets = %d, want ≥1", addr, cs.Resets)
		}
		if cs.Dials < 2 {
			t.Errorf("peer %s: dials = %d, want ≥2", addr, cs.Dials)
		}
		if cs.Reconnects < 1 {
			t.Errorf("peer %s: reconnects = %d, want ≥1", addr, cs.Reconnects)
		}
	}
}

func TestTCPHeartbeatDetectsStalledPeer(t *testing.T) {
	// Freeze b's write pump entirely: its linktest acks stop too, so a's
	// heartbeat must miss repeatedly and declare the link half-open.
	a, b := tcpPair(t, func(c *TCPConfig) {
		c.Heartbeat = 30 * time.Millisecond
		c.MissThreshold = 2
	}, []Addr{"cli"}, []Addr{"srv"})
	recv := newCollector()
	if err := a.Attach("cli", newCollector().handle); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach("srv", recv.handle); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("cli", "srv", []byte("hello")); err != nil {
		t.Fatal(err)
	}
	recv.wait(t, 1, 5*time.Second)

	if !b.StallPeer("cli", 2*time.Second) {
		t.Fatal("StallPeer found no live connection")
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := a.Stats()
		var missed, resets int64
		for _, cs := range st.Conns {
			missed += cs.HeartbeatsMissed
			resets += cs.Resets
		}
		if missed >= 2 && resets >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stall undetected: missed=%d resets=%d", missed, resets)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTCPIdleTeardownIsCleanAndRedials(t *testing.T) {
	a, b := tcpPair(t, func(c *TCPConfig) {
		c.Heartbeat = 20 * time.Millisecond
		c.IdleTimeout = 60 * time.Millisecond
	}, []Addr{"cli"}, []Addr{"srv"})
	recv := newCollector()
	if err := a.Attach("cli", newCollector().handle); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach("srv", recv.handle); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("cli", "srv", []byte("one")); err != nil {
		t.Fatal(err)
	}
	recv.wait(t, 1, 5*time.Second)

	// Wait for idle teardown on the dialer side.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := a.Stats()
		idle := true
		for _, cs := range st.Conns {
			if cs.State == "established" || cs.State == "draining" {
				idle = false
			}
		}
		if idle {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("connection never went idle")
		}
		time.Sleep(10 * time.Millisecond)
	}
	st := a.Stats()
	for addr, cs := range st.Conns {
		if cs.Resets != 0 {
			t.Errorf("peer %s: idle teardown counted %d resets, want 0 (clean)", addr, cs.Resets)
		}
	}
	// Demand redials the link.
	if err := a.Send("cli", "srv", []byte("two")); err != nil {
		t.Fatal(err)
	}
	recv.wait(t, 1, 5*time.Second)
	if string(recv.got[1]) != "two" {
		t.Fatalf("post-idle delivery got %q, want two", recv.got[1])
	}
}

func TestTCPSimultaneousDialConverges(t *testing.T) {
	a, b := tcpPair(t, nil, []Addr{"cli"}, []Addr{"srv"})
	recvA, recvB := newCollector(), newCollector()
	if err := a.Attach("cli", recvA.handle); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach("srv", recvB.handle); err != nil {
		t.Fatal(err)
	}
	// Fire both first sends concurrently so both sides dial at once. The
	// tie-break may replace a connection mid-flight and frames die with
	// the replaced connection (ordered-until-reset), so keep sending
	// until each direction lands — what matters is convergence, not any
	// single frame.
	errc := make(chan error, 2)
	go func() { errc <- a.Send("cli", "srv", []byte("from-a")) }()
	go func() { errc <- b.Send("srv", "cli", []byte("from-b")) }()
	for i := 0; i < 2; i++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for recvA.count() < 1 || recvB.count() < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("deliveries never landed: a=%d b=%d", recvA.count(), recvB.count())
		}
		if recvB.count() < 1 {
			_ = a.Send("cli", "srv", []byte("from-a"))
		}
		if recvA.count() < 1 {
			_ = b.Send("srv", "cli", []byte("from-b"))
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Both machines must settle established; the tie-break must not leave
	// either side wedged or flapping.
	deadline = time.Now().Add(5 * time.Second)
	for {
		settled := true
		for _, tr := range []*TCP{a, b} {
			for _, cs := range tr.Stats().Conns {
				if cs.State != "established" {
					settled = false
				}
			}
		}
		if settled {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("machines never settled: a=%v b=%v", a.Stats().Conns, b.Stats().Conns)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestTCPLocalShortCircuit(t *testing.T) {
	tr, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0"})
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Close()
	recv := newCollector()
	if err := tr.Attach("x", newCollector().handle); err != nil {
		t.Fatal(err)
	}
	if err := tr.Attach("y", recv.handle); err != nil {
		t.Fatal(err)
	}
	if err := tr.Send("x", "y", []byte("loop")); err != nil {
		t.Fatal(err)
	}
	recv.wait(t, 1, 5*time.Second)
	if !strings.HasSuffix(string(recv.from[0]), "|x") {
		t.Fatalf("local from = %q, want |x tag", recv.from[0])
	}
	if len(tr.Stats().Conns) != 0 {
		t.Fatalf("local send created a peer machine: %v", tr.Stats().Conns)
	}
}

func TestTCPSendErrors(t *testing.T) {
	a, _ := tcpPair(t, nil, []Addr{"cli"}, []Addr{"srv"})
	if err := a.Attach("cli", newCollector().handle); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("cli", "srv", nil); !errors.Is(err, ErrEmptyPayload) {
		t.Fatalf("empty payload: %v", err)
	}
	if err := a.Send("ghost", "srv", []byte("x")); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("unattached sender: %v", err)
	}
	small, err := NewTCP(TCPConfig{Listen: "127.0.0.1:0", MaxFrame: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer small.Close()
	if err := small.Attach("s", newCollector().handle); err != nil {
		t.Fatal(err)
	}
	if err := small.Send("s", "t", []byte("123456789")); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("oversized frame: %v", err)
	}
	// Unrouted destination is silent loss, not an error.
	before := a.Stats().Dropped
	if err := a.Send("cli", "nowhere", []byte("x")); err != nil {
		t.Fatalf("unrouted send: %v", err)
	}
	if got := a.Stats().Dropped; got != before+1 {
		t.Fatalf("unrouted send dropped %d, want %d", got, before+1)
	}
}

func TestTCPDetachDiscardsInbound(t *testing.T) {
	a, b := tcpPair(t, nil, []Addr{"cli"}, []Addr{"srv"})
	recv := newCollector()
	if err := a.Attach("cli", newCollector().handle); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach("srv", recv.handle); err != nil {
		t.Fatal(err)
	}
	if err := a.Send("cli", "srv", []byte("one")); err != nil {
		t.Fatal(err)
	}
	recv.wait(t, 1, 5*time.Second)
	b.Detach("srv")
	if err := a.Send("cli", "srv", []byte("two")); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for b.Stats().Dropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("detached destination never counted a drop")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if recv.count() != 1 {
		t.Fatalf("detached handler saw %d deliveries, want 1", recv.count())
	}
}

func TestTCPCloseJoinsEverything(t *testing.T) {
	a, b := tcpPair(t, nil, []Addr{"cli"}, []Addr{"srv"})
	var inFlight atomic.Int32
	if err := a.Attach("cli", newCollector().handle); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach("srv", func(from Addr, payload []byte) {
		inFlight.Add(1)
		defer inFlight.Add(-1)
		time.Sleep(5 * time.Millisecond)
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if err := a.Send("cli", "srv", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	// Close joins every goroutine, so no handler can still be running.
	if n := inFlight.Load(); n != 0 {
		t.Fatalf("%d handlers still running after Close", n)
	}
	if err := a.Send("cli", "srv", []byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
}

func TestTCPQuiesceWaitsForLiveQueues(t *testing.T) {
	a, b := tcpPair(t, nil, []Addr{"cli"}, []Addr{"srv"})
	recv := newCollector()
	if err := a.Attach("cli", newCollector().handle); err != nil {
		t.Fatal(err)
	}
	if err := b.Attach("srv", recv.handle); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := a.Send("cli", "srv", bytes.Repeat([]byte{byte(i)}, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	a.Quiesce() // must return: the link is live and drains
	recv.wait(t, 50, 10*time.Second)
}
