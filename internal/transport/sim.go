package transport

import (
	"errors"
	"fmt"

	"repro/internal/netsim"
)

// Sim adapts the in-memory network simulator to the Transport interface.
// It adds nothing: every fault, delay and determinism property of
// internal/netsim passes straight through, which is what keeps the DST
// harness and every existing test byte-for-byte reproducible on top of
// the transport seam.
type Sim struct {
	net *netsim.Network
}

// NewSim wraps an existing simulator network.
func NewSim(n *netsim.Network) *Sim { return &Sim{net: n} }

// Network exposes the wrapped simulator for fault injection (partitions,
// per-link overrides) in tests and experiments.
func (s *Sim) Network() *netsim.Network { return s.net }

// Attach implements Transport.
func (s *Sim) Attach(a Addr, h Handler) error {
	s.net.Attach(netsim.Addr(a), func(from netsim.Addr, payload []byte) {
		h(Addr(from), payload)
	})
	return nil
}

// Detach implements Transport.
func (s *Sim) Detach(a Addr) { s.net.Detach(netsim.Addr(a)) }

// Attached implements Transport.
func (s *Sim) Attached(a Addr) bool { return s.net.Attached(netsim.Addr(a)) }

// Send implements Transport, translating the simulator's local errors into
// the transport-level ones.
func (s *Sim) Send(from, to Addr, payload []byte) error {
	err := s.net.Send(netsim.Addr(from), netsim.Addr(to), payload)
	switch {
	case err == nil:
		return nil
	case errors.Is(err, netsim.ErrTooLarge):
		return fmt.Errorf("%w: %d bytes", ErrTooLarge, len(payload))
	case errors.Is(err, netsim.ErrUnknownSender):
		return fmt.Errorf("%w: %s", ErrNotAttached, from)
	case errors.Is(err, netsim.ErrEmptyPayload):
		return ErrEmptyPayload
	default:
		return err
	}
}

// Learn implements Transport. Simulator addresses already are logical
// names, so there is nothing to learn.
func (s *Sim) Learn(name, via Addr) {}

// Stats implements Transport.
func (s *Sim) Stats() Stats {
	st := s.net.Stats()
	return Stats{
		Sent:       st.Sent,
		Delivered:  st.Delivered,
		Dropped:    st.Lost + st.DroppedDst + st.Partition,
		Duplicated: st.Duplicated,
		BytesSent:  st.BytesSent,
	}
}

// Quiesce implements Transport: the simulator tracks in-flight packets
// exactly, so this really waits for silence.
func (s *Sim) Quiesce() { s.net.Quiesce() }

// Close implements Transport. The simulator holds no OS resources; closing
// is a no-op so worlds built on it stay usable by tests that never close.
func (s *Sim) Close() error { return nil }
