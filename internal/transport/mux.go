package transport

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// This file is the TCP transport's wire vocabulary: length-prefixed frames
// multiplexing many logical node names over one stream, in the HSMS mold
// (select handshake, linktest heartbeat, deselect goodbye). The layer adds
// no checksums — TCP's are in force, and the guardian wire format above
// carries its own CRC — and no reliability beyond the stream's own:
// everything queued but unsent when a connection dies is gone, which is
// exactly the "ordered until reset" contract streams give.
//
// Frame layout (big endian):
//
//	u32   length of what follows (type byte + body)
//	u8    type
//	...   body
//
// Bodies:
//
//	select / selectAck:  uvarint len + advertised listener address.
//	  The dialer's select names the address its own listener answers at;
//	  the acceptor keys the connection by that string, which is what lets
//	  replies to a learned node name reuse the inbound connection instead
//	  of dialing a second one.
//	deselect:            uvarint len + reason ("idle", "collision", ...).
//	linktest/linktestAck: empty. A linktestAck (or any other frame) proves
//	  the peer's read loop is alive; unanswered linktests are the only way
//	  a half-open connection is ever noticed.
//	data:                uvarint len + source node name,
//	                     uvarint len + destination node name,
//	                     payload (the rest of the body).
//	  Source names keep fragment reassembly above keyed per logical
//	  sender even when several share the stream; destination names pick
//	  the attached handler.
const (
	frameSelect      = byte(1)
	frameSelectAck   = byte(2)
	frameDeselect    = byte(3)
	frameLinktest    = byte(4)
	frameLinktestAck = byte(5)
	frameData        = byte(6)
)

// frameOverhead bounds the non-payload bytes of a data frame: length
// prefix, type, and two uvarint-prefixed names.
const frameOverhead = 4 + 1 + 2*(5+maxNodeName)

// maxNodeName bounds the logical names a data frame may carry. Node names
// are short identifiers; a kilobyte of headroom is generous.
const maxNodeName = 1024

// ErrBadFrame reports a stream protocol violation. It is terminal for the
// connection that produced it: framing state is unrecoverable mid-stream.
var ErrBadFrame = errors.New("transport: malformed tcp frame")

// appendFrame appends one whole frame (length prefix included) to dst.
func appendFrame(dst []byte, typ byte, body ...[]byte) []byte {
	n := 1
	for _, b := range body {
		n += len(b)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(n))
	dst = append(dst, typ)
	for _, b := range body {
		dst = append(dst, b...)
	}
	return dst
}

// encodeString appends a uvarint-prefixed string.
func encodeString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// encodeData builds one data frame carrying payload from src to dst.
func encodeData(src, dst Addr, payload []byte) []byte {
	body := make([]byte, 0, len(payload)+2*(5+len(src)+len(dst)))
	body = encodeString(body, string(src))
	body = encodeString(body, string(dst))
	body = append(body, payload...)
	return appendFrame(make([]byte, 0, 5+len(body)), frameData, body)
}

// encodeControl builds a control frame with an optional string body
// (advertised address for select/selectAck, reason for deselect).
func encodeControl(typ byte, s string) []byte {
	var body []byte
	if typ != frameLinktest && typ != frameLinktestAck {
		body = encodeString(make([]byte, 0, 5+len(s)), s)
	}
	return appendFrame(make([]byte, 0, 5+1+len(body)), typ, body)
}

// readFrame reads one frame, bounding the body at max bytes. A frame
// larger than the bound is a protocol violation, not a big message: the
// sender enforces the same bound, so an oversized length means the stream
// is desynchronized or hostile.
func readFrame(br *bufio.Reader, max int) (typ byte, body []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := int(binary.BigEndian.Uint32(hdr[:]))
	if n < 1 || n > max+1 {
		return 0, nil, fmt.Errorf("%w: frame length %d (max %d)", ErrBadFrame, n, max)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return 0, nil, err
	}
	return buf[0], buf[1:], nil
}

// decodeString consumes one uvarint-prefixed string from body.
func decodeString(body []byte, maxLen int) (string, []byte, error) {
	n, k := binary.Uvarint(body)
	if k <= 0 || n > uint64(maxLen) || uint64(len(body)-k) < n {
		return "", nil, ErrBadFrame
	}
	return string(body[k : k+int(n)]), body[k+int(n):], nil
}

// decodeData splits a data frame body into its source, destination and
// payload. The payload aliases body; callers own body and hand the slice
// to exactly one handler, so no copy is needed.
func decodeData(body []byte) (src, dst Addr, payload []byte, err error) {
	s, rest, err := decodeString(body, maxNodeName)
	if err != nil {
		return "", "", nil, err
	}
	d, rest, err := decodeString(rest, maxNodeName)
	if err != nil {
		return "", "", nil, err
	}
	return Addr(s), Addr(d), rest, nil
}

// decodeControl extracts the string body of a select/selectAck/deselect.
func decodeControl(body []byte) (string, error) {
	s, rest, err := decodeString(body, 4096)
	if err != nil || len(rest) != 0 {
		return "", ErrBadFrame
	}
	return s, nil
}
