package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// maxUDPDatagram is the largest payload a UDP datagram can carry.
const maxUDPDatagram = 65507

// UDPConfig tunes a UDP transport.
type UDPConfig struct {
	// Peers maps logical node names to UDP "host:port" addresses. The
	// entry for a locally attached name decides where its socket binds
	// (port 0 binds an ephemeral port; read it back with LocalAddr).
	// Remote entries seed the routing table; peers not listed here are
	// learned from inbound traffic via Learn.
	Peers map[Addr]string
	// MTU bounds the datagram size handed to Send; larger sends fail
	// with ErrTooLarge. Zero means 1400 (a safe ethernet-path default);
	// the ceiling is 65507, the UDP maximum.
	MTU int
	// RecvWorkers is the number of receive-loop goroutines per attached
	// socket. Zero means 2. More workers let slow handlers overlap, at
	// the price of inter-datagram reordering — which the layers above
	// must tolerate anyway.
	RecvWorkers int
	// PaceMinGap, when positive, is the minimum spacing between
	// consecutive datagrams to the same peer. Pacing trades latency for
	// not overrunning the destination's socket buffer during bursts
	// (fragment trains are the common case); lost bursts are legal but
	// wasteful.
	PaceMinGap time.Duration
	// ReadBuffer / WriteBuffer, when positive, request OS socket buffer
	// sizes in bytes.
	ReadBuffer  int
	WriteBuffer int
}

func (c UDPConfig) withDefaults() UDPConfig {
	if c.MTU == 0 {
		c.MTU = 1400
	}
	if c.MTU > maxUDPDatagram {
		c.MTU = maxUDPDatagram
	}
	if c.RecvWorkers == 0 {
		c.RecvWorkers = 2
	}
	return c
}

// udpEndpoint is one attached logical address: a bound socket plus the
// handler inbound datagrams are dispatched to.
type udpEndpoint struct {
	conn    *net.UDPConn
	handler atomic.Pointer[Handler]
}

// pacer spaces a peer's datagrams PaceMinGap apart. Decisions are made
// under the lock; the sleep happens outside it, so concurrent senders each
// wait only for their own reserved slot.
type pacer struct {
	mu   sync.Mutex
	next time.Time
}

func (p *pacer) reserve(gap time.Duration) time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	if p.next.Before(now) {
		p.next = now.Add(gap)
		return 0
	}
	wait := p.next.Sub(now)
	p.next = p.next.Add(gap)
	return wait
}

// UDP is a Transport over real UDP sockets. Each attached logical address
// owns one socket; a pool of receive goroutines reads each socket and
// invokes the attached handler. The transport adds no reliability of any
// kind: what UDP loses, duplicates or reorders stays lost, duplicated or
// reordered, exactly the paper's contract.
type UDP struct {
	cfg UDPConfig

	mu     sync.Mutex
	peers  map[Addr]*net.UDPAddr // logical name -> where to send
	eps    map[Addr]*udpEndpoint
	pacers map[Addr]*pacer
	closed bool

	wg sync.WaitGroup // receive loops

	sent       atomic.Int64
	delivered  atomic.Int64
	dropped    atomic.Int64
	bytesSent  atomic.Int64
	bytesRecv  atomic.Int64
	recvErrors atomic.Int64
}

// NewUDP creates a UDP transport. Configured peer addresses are resolved
// eagerly so typos surface at construction rather than as silent loss.
func NewUDP(cfg UDPConfig) (*UDP, error) {
	cfg = cfg.withDefaults()
	u := &UDP{
		cfg:    cfg,
		peers:  make(map[Addr]*net.UDPAddr, len(cfg.Peers)),
		eps:    make(map[Addr]*udpEndpoint),
		pacers: make(map[Addr]*pacer),
	}
	for name, hostport := range cfg.Peers {
		if err := u.setPeer(name, hostport); err != nil {
			return nil, err
		}
	}
	return u, nil
}

// SetPeer adds or replaces the routing entry for a logical peer name.
func (u *UDP) SetPeer(name Addr, hostport string) error {
	u.mu.Lock()
	defer u.mu.Unlock()
	return u.setPeer(name, hostport)
}

func (u *UDP) setPeer(name Addr, hostport string) error {
	addr, err := net.ResolveUDPAddr("udp", hostport)
	if err != nil {
		return fmt.Errorf("transport: peer %s: %w", name, err)
	}
	u.peers[name] = addr
	return nil
}

// LocalAddr returns the actual bound address of an attached logical name
// ("" when not attached) — the way tests and cmd/node discover the port an
// ephemeral bind received.
func (u *UDP) LocalAddr(a Addr) string {
	u.mu.Lock()
	defer u.mu.Unlock()
	ep, ok := u.eps[a]
	if !ok {
		return ""
	}
	return ep.conn.LocalAddr().String()
}

// Attach implements Transport: it binds the socket configured for a (via
// Peers) and starts its receive loop pool. Re-attaching an attached
// address just replaces the handler; attach-after-detach rebinds, which is
// how a restarted node comes back to the same address.
func (u *UDP) Attach(a Addr, h Handler) error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return ErrClosed
	}
	if ep, ok := u.eps[a]; ok {
		ep.handler.Store(&h)
		u.mu.Unlock()
		return nil
	}
	bind, ok := u.peers[a]
	if !ok {
		u.mu.Unlock()
		return fmt.Errorf("%w: no listen address configured for %s", ErrUnknownPeer, a)
	}
	conn, err := net.ListenUDP("udp", bind)
	if err != nil {
		u.mu.Unlock()
		return fmt.Errorf("transport: bind %s: %w", a, err)
	}
	if u.cfg.ReadBuffer > 0 {
		_ = conn.SetReadBuffer(u.cfg.ReadBuffer)
	}
	if u.cfg.WriteBuffer > 0 {
		_ = conn.SetWriteBuffer(u.cfg.WriteBuffer)
	}
	// An ephemeral bind (port 0) resolves here; record the real address
	// so sends from co-located peers in the same process route correctly.
	u.peers[a] = conn.LocalAddr().(*net.UDPAddr)
	ep := &udpEndpoint{conn: conn}
	ep.handler.Store(&h)
	u.eps[a] = ep
	for i := 0; i < u.cfg.RecvWorkers; i++ {
		u.wg.Add(1)
		go u.readLoop(ep)
	}
	u.mu.Unlock()
	return nil
}

// readLoop reads one socket until it is closed, dispatching each datagram
// to the endpoint's current handler. The transport-level source address is
// the datagram's real origin ("ip:port"), kept stable across the peer's
// lifetime so fragment reassembly keyed on it never splits.
func (u *UDP) readLoop(ep *udpEndpoint) {
	defer u.wg.Done()
	buf := make([]byte, maxUDPDatagram+1)
	for {
		n, src, err := ep.conn.ReadFromUDP(buf)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return
			}
			u.recvErrors.Add(1)
			continue
		}
		if n == 0 {
			u.recvErrors.Add(1)
			continue
		}
		h := ep.handler.Load()
		if h == nil {
			u.dropped.Add(1)
			continue
		}
		payload := make([]byte, n)
		copy(payload, buf[:n])
		u.delivered.Add(1)
		u.bytesRecv.Add(int64(n))
		(*h)(Addr(src.String()), payload)
	}
}

// Detach implements Transport: the address's socket closes, its receive
// loops drain, and inbound datagrams for it vanish into the kernel — a
// detached UDP node drops traffic exactly like a dead simulator node.
func (u *UDP) Detach(a Addr) {
	u.mu.Lock()
	ep, ok := u.eps[a]
	if ok {
		delete(u.eps, a)
	}
	u.mu.Unlock()
	if ok {
		_ = ep.conn.Close()
	}
}

// Attached implements Transport.
func (u *UDP) Attached(a Addr) bool {
	u.mu.Lock()
	defer u.mu.Unlock()
	_, ok := u.eps[a]
	return ok
}

// Send implements Transport. The datagram leaves from the sender's own
// socket, so the receiver's observed source address identifies the sender.
// A failed write counts as a drop, not an error: once the MTU and routing
// checks pass, the network's best-effort contract has begun.
func (u *UDP) Send(from, to Addr, payload []byte) error {
	if len(payload) == 0 {
		return ErrEmptyPayload
	}
	if len(payload) > u.cfg.MTU {
		return fmt.Errorf("%w: %d > MTU %d", ErrTooLarge, len(payload), u.cfg.MTU)
	}
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return ErrClosed
	}
	ep, ok := u.eps[from]
	if !ok {
		u.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrNotAttached, from)
	}
	dst, ok := u.peers[to]
	if !ok {
		// Off-net destination: the datagram is simply lost, as it would
		// be on a real network with a bad route.
		u.sent.Add(1)
		u.dropped.Add(1)
		u.mu.Unlock()
		return nil
	}
	var wait time.Duration
	if u.cfg.PaceMinGap > 0 {
		p, ok := u.pacers[to]
		if !ok {
			p = &pacer{}
			u.pacers[to] = p
		}
		wait = p.reserve(u.cfg.PaceMinGap)
	}
	u.mu.Unlock()

	if wait > 0 {
		time.Sleep(wait)
	}
	u.sent.Add(1)
	n, err := ep.conn.WriteToUDP(payload, dst)
	if err != nil {
		u.dropped.Add(1)
		return nil
	}
	u.bytesSent.Add(int64(n))
	return nil
}

// Learn implements Transport: it records where name was observed sending
// from, so replies route without static configuration. Attached (local)
// names are never overwritten — their entry is the bind address.
func (u *UDP) Learn(name, via Addr) {
	addr, err := net.ResolveUDPAddr("udp", string(via))
	if err != nil {
		return
	}
	u.mu.Lock()
	defer u.mu.Unlock()
	if _, local := u.eps[name]; local {
		return
	}
	if cur, ok := u.peers[name]; ok && cur.String() == addr.String() {
		return
	}
	u.peers[name] = addr
}

// Stats implements Transport.
func (u *UDP) Stats() Stats {
	return Stats{
		Sent:       u.sent.Load(),
		Delivered:  u.delivered.Load(),
		Dropped:    u.dropped.Load(),
		BytesSent:  u.bytesSent.Load(),
		BytesRecv:  u.bytesRecv.Load(),
		RecvErrors: u.recvErrors.Load(),
	}
}

// Quiesce implements Transport. A real network cannot be quiesced; callers
// that need delivery certainty must get it from the layers built for that
// (acks, at-most-once calls).
func (u *UDP) Quiesce() {}

// Close implements Transport: all sockets close and every receive loop is
// joined before Close returns, so no handler runs after it.
func (u *UDP) Close() error {
	u.mu.Lock()
	if u.closed {
		u.mu.Unlock()
		return nil
	}
	u.closed = true
	eps := make([]*udpEndpoint, 0, len(u.eps))
	for _, ep := range u.eps {
		eps = append(eps, ep)
	}
	u.eps = make(map[Addr]*udpEndpoint)
	u.mu.Unlock()
	for _, ep := range eps {
		_ = ep.conn.Close()
	}
	u.wg.Wait()
	return nil
}
