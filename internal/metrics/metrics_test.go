package metrics

import (
	"bytes"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Load() != 10000 {
		t.Fatalf("Counter = %d, want 10000", c.Load())
	}
	c.Add(5)
	if c.Load() != 10005 {
		t.Fatalf("after Add(5) = %d", c.Load())
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Mean() != 0 || h.Max() != 0 || h.Min() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram returned nonzero stats")
	}
	if h.Count() != 0 {
		t.Fatal("empty histogram count != 0")
	}
}

func TestHistogramBasicStats(t *testing.T) {
	h := NewHistogram()
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		h.Observe(d * time.Millisecond)
	}
	if h.Count() != 5 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Mean() != 30*time.Millisecond {
		t.Fatalf("Mean = %v", h.Mean())
	}
	if h.Min() != 10*time.Millisecond || h.Max() != 50*time.Millisecond {
		t.Fatalf("Min/Max = %v/%v", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); q != 30*time.Millisecond {
		t.Fatalf("P50 = %v, want 30ms", q)
	}
	if q := h.Quantile(1.0); q != 50*time.Millisecond {
		t.Fatalf("P100 = %v", q)
	}
	if q := h.Quantile(0.0); q != 10*time.Millisecond {
		t.Fatalf("P0 = %v", q)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	prev := time.Duration(0)
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		v := h.Quantile(q)
		if v < prev {
			t.Fatalf("quantiles not monotonic at %v: %v < %v", q, v, prev)
		}
		prev = v
	}
}

func TestHistogramCapBounded(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < maxSamples*2; i++ {
		h.Observe(time.Duration(i))
	}
	if h.Count() != int64(maxSamples*2) {
		t.Fatalf("Count = %d", h.Count())
	}
	if len(h.samples) != maxSamples {
		t.Fatalf("retained %d samples, cap %d", len(h.samples), maxSamples)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				h.Observe(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 4000 {
		t.Fatalf("Count = %d", h.Count())
	}
}

func TestSnapshot(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 100 {
		t.Fatalf("Snapshot.Count = %d", s.Count)
	}
	if s.P50 < 45*time.Millisecond || s.P50 > 55*time.Millisecond {
		t.Fatalf("P50 = %v", s.P50)
	}
	if s.P99 < 95*time.Millisecond {
		t.Fatalf("P99 = %v", s.P99)
	}
	if s.Max != 100*time.Millisecond {
		t.Fatalf("Max = %v", s.Max)
	}
}

func TestThroughput(t *testing.T) {
	start := time.Unix(0, 0)
	tp := NewThroughput(start)
	for i := 0; i < 500; i++ {
		tp.Done()
	}
	if tp.Ops() != 500 {
		t.Fatalf("Ops = %d", tp.Ops())
	}
	if got := tp.PerSecond(start.Add(2 * time.Second)); got != 250 {
		t.Fatalf("PerSecond = %v, want 250", got)
	}
	if got := tp.PerSecond(start); got != 0 {
		t.Fatalf("PerSecond at zero elapsed = %v, want 0", got)
	}
}

func TestTableRender(t *testing.T) {
	tab := NewTable("Fig 1", "org", "throughput", "p95")
	tab.AddRow("one-at-a-time", 123.456, "9ms")
	tab.AddRow("serializer", 456.789, "3ms")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"== Fig 1 ==", "org", "throughput", "one-at-a-time", "123.46", "serializer"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
}

func TestTableCSV(t *testing.T) {
	tab := NewTable("t", "a", "b")
	tab.AddRow(1, 2)
	tab.AddRow("x", "y")
	var buf bytes.Buffer
	tab.CSV(&buf)
	want := "a,b\n1,2\nx,y\n"
	if buf.String() != want {
		t.Fatalf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestTableAccessors(t *testing.T) {
	tab := NewTable("t", "a")
	tab.AddRow(42)
	if tab.Rows() != 1 {
		t.Fatalf("Rows = %d", tab.Rows())
	}
	if tab.Cell(0, 0) != "42" {
		t.Fatalf("Cell = %q", tab.Cell(0, 0))
	}
}

func TestTableRenderEmpty(t *testing.T) {
	tab := NewTable("Empty", "col_a", "b")
	var buf bytes.Buffer
	tab.Render(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 { // title, header, rule — no row lines
		t.Fatalf("empty table rendered %d lines:\n%s", len(lines), buf.String())
	}
	// With no rows, columns are exactly header-wide.
	if lines[1] != "col_a  b" {
		t.Fatalf("header line = %q, want %q", lines[1], "col_a  b")
	}
	if lines[2] != "-----  -" {
		t.Fatalf("rule line = %q, want %q", lines[2], "-----  -")
	}

	// Untitled and empty: just the header block, no "==" banner.
	buf.Reset()
	NewTable("", "x").Render(&buf)
	if strings.Contains(buf.String(), "==") {
		t.Fatalf("untitled table printed a title banner:\n%s", buf.String())
	}

	buf.Reset()
	tab.CSV(&buf)
	if buf.String() != "col_a,b\n" {
		t.Fatalf("empty CSV = %q, want header only", buf.String())
	}
}

func TestTableRenderSingleRow(t *testing.T) {
	tab := NewTable("One", "name", "n")
	tab.AddRow("x", 7)
	var buf bytes.Buffer
	tab.Render(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 { // title, header, rule, the row
		t.Fatalf("single-row table rendered %d lines:\n%s", len(lines), buf.String())
	}
	// The narrow cells pad out to their headers' widths.
	if lines[3] != "x     7" {
		t.Fatalf("row line = %q, want %q", lines[3], "x     7")
	}
}

func TestTableWidthClamping(t *testing.T) {
	// A cell wider than its header stretches the whole column; cells
	// beyond the header count are clamped — appended bare, not padded,
	// and never a panic.
	tab := NewTable("", "a", "b")
	tab.AddRow("wide-cell-one", 1, "overflow")
	tab.AddRow("x", 22222, "spill")
	var buf bytes.Buffer
	tab.Render(&buf)
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), buf.String())
	}
	if strings.TrimRight(lines[0], " ") != "a              b" {
		t.Fatalf("header not stretched to widest cell: %q", lines[0])
	}
	if lines[1] != "-------------  -----" {
		t.Fatalf("rule = %q", lines[1])
	}
	if lines[2] != "wide-cell-one  1      overflow" {
		t.Fatalf("row 0 = %q", lines[2])
	}
	if lines[3] != "x              22222  spill" {
		t.Fatalf("row 1 = %q", lines[3])
	}
}
