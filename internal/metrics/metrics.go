// Package metrics provides the measurement and reporting utilities used by
// the experiment harness: counters, latency histograms with quantiles, and
// fixed-width table / CSV series printers that regenerate the repository's
// experiment tables.
package metrics

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	n atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds delta.
func (c *Counter) Add(delta int64) { c.n.Add(delta) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.n.Load() }

// Histogram collects duration samples and reports quantiles. It keeps every
// sample up to a cap, then switches to reservoir-style decimation that
// preserves quantile accuracy well enough for benchmark reporting.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	count   int64
	sum     time.Duration
	max     time.Duration
	min     time.Duration
}

// maxSamples bounds per-histogram memory.
const maxSamples = 1 << 16

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{min: math.MaxInt64}
}

// Observe records one sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.count++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	if d < h.min {
		h.min = d
	}
	if len(h.samples) < maxSamples {
		h.samples = append(h.samples, d)
		return
	}
	// Simple decimation: overwrite a pseudo-random slot keyed by count.
	h.samples[int(h.count)%maxSamples] = d
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean returns the mean sample, or zero with no samples.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / time.Duration(h.count)
}

// Max returns the largest sample observed.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Min returns the smallest sample observed.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of the retained samples.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(h.samples))
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q * float64(len(sorted)-1))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Snapshot is a fixed view of a histogram's headline statistics.
type Snapshot struct {
	Count                    int64
	Mean, P50, P95, P99, Max time.Duration
}

// Snapshot captures the headline statistics.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		Max:   h.Max(),
	}
}

// Throughput measures completed operations over a wall-clock window.
type Throughput struct {
	start time.Time
	ops   atomic.Int64
}

// NewThroughput starts a throughput window at now.
func NewThroughput(now time.Time) *Throughput {
	return &Throughput{start: now}
}

// Done records one completed operation.
func (t *Throughput) Done() { t.ops.Add(1) }

// Ops returns the completed operation count.
func (t *Throughput) Ops() int64 { return t.ops.Load() }

// PerSecond returns ops/sec as of now.
func (t *Throughput) PerSecond(now time.Time) float64 {
	el := now.Sub(t.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(t.ops.Load()) / el
}
