package metrics

import (
	"fmt"
	"io"
	"strings"
)

// Table renders experiment results as a fixed-width text table, the format
// every cmd/bench experiment prints. Columns are sized to their widest
// cell.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells are formatted with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.2f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	if t.Title != "" {
		fmt.Fprintf(w, "== %s ==\n", t.Title)
	}
	var sb strings.Builder
	for i, h := range t.Headers {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(pad(h, widths[i]))
	}
	fmt.Fprintln(w, sb.String())
	sb.Reset()
	for i := range t.Headers {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", widths[i]))
	}
	fmt.Fprintln(w, sb.String())
	for _, row := range t.rows {
		sb.Reset()
		for i, c := range row {
			if i > 0 {
				sb.WriteString("  ")
			}
			if i < len(widths) {
				sb.WriteString(pad(c, widths[i]))
			} else {
				sb.WriteString(c)
			}
		}
		fmt.Fprintln(w, sb.String())
	}
}

// CSV writes the table as comma-separated values (header row included).
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Headers, ","))
	for _, row := range t.rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Rows reports the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the formatted cell at (row, col); it panics when out of
// range, which in tests is the right behavior.
func (t *Table) Cell(row, col int) string { return t.rows[row][col] }

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}
