// Package core documents how this repository maps onto the paper's
// primary contribution. The contribution — guardians and the no-wait
// send/receive primitives — is implemented by the packages below; this
// package holds the map so that a reader starting from the conventional
// internal/core location finds the right doors.
//
// # The paper's contribution
//
//   - repro/internal/guardian — guardians (§2): worlds, nodes, guardians,
//     processes, ports, typed messages, tokens, the primordial guardian,
//     crash/recovery lifecycle; and communication (§3): the no-wait send,
//     receive with when-arms/replyto/timeout, system failure messages,
//     port-type checking.
//   - repro/internal/sendprim — the two §3 comparison primitives
//     (synchronization send, remote transaction send) built on top of the
//     no-wait send.
//   - repro/internal/amo — the at-most-once call layer (§3.5 extension):
//     request ids, backoff + jitter, server-side dedup with cached
//     replies, watchdog-fed circuit breaking.
//   - repro/internal/xrep — the external representation system (§3.3):
//     the value model, Transmittable encode/decode, system-wide type
//     invariants, and the paper's two worked examples (complex numbers,
//     associative memory).
//
// # Substrates
//
//   - repro/internal/netsim — the network of §1.1: best-effort datagrams
//     with loss, duplication, corruption, reordering, partitions.
//   - repro/internal/wire — message construction (§3.4): framing,
//     checksums, fragmentation and reassembly.
//   - repro/internal/stable — per-node crash-surviving storage (§2.2).
//   - repro/internal/csync — monitors and serializers (Figure 1).
//   - repro/internal/vtime — real and simulated clocks.
//
// # Applications and harness
//
//   - repro/internal/airline — the running example (Figures 1–5).
//   - repro/internal/bank, repro/internal/office — the other §1.2 domains.
//   - repro/internal/exp — experiments E1–E10 (DESIGN.md §3).
//   - package repro (repository root) — the public facade.
package core
