// Package csync provides the intra-guardian synchronization mechanisms the
// paper's Figure 1 organizations rely on: a monitor with named condition
// variables (organization 1c, after Hoare) and a serializer that grants
// resources in arrival order (organization 1b, after the serializer of
// Atkinson and Hewitt). Both coordinate processes of one guardian through
// shared objects; neither is ever shared across guardians.
package csync

import (
	"sync"
)

// Monitor is a Hoare-style monitor: a mutual-exclusion region plus named
// condition variables. Processes enter, may wait on or signal conditions
// while inside, and exit.
//
// Signal follows the "signal and continue" discipline (as in Mesa and Go's
// sync.Cond): a signalled waiter re-acquires the monitor after the
// signaller leaves, so waiters must re-check their predicate — the WaitUntil
// helper does this for them.
type Monitor struct {
	mu    sync.Mutex
	conds map[string]*sync.Cond
}

// NewMonitor returns an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{conds: make(map[string]*sync.Cond)}
}

// Enter acquires the monitor.
func (m *Monitor) Enter() { m.mu.Lock() }

// Exit releases the monitor.
func (m *Monitor) Exit() { m.mu.Unlock() }

// Do runs body with the monitor held.
func (m *Monitor) Do(body func()) {
	m.mu.Lock()
	defer m.mu.Unlock()
	body()
}

// cond returns the named condition, creating it on first use. Caller must
// hold the monitor.
func (m *Monitor) cond(name string) *sync.Cond {
	c, ok := m.conds[name]
	if !ok {
		c = sync.NewCond(&m.mu)
		m.conds[name] = c
	}
	return c
}

// Wait atomically releases the monitor and blocks on the named condition;
// on wakeup the monitor is re-held. Must be called with the monitor held.
func (m *Monitor) Wait(name string) { m.cond(name).Wait() }

// WaitUntil blocks on the named condition until pred (evaluated with the
// monitor held) is true. Must be called with the monitor held.
func (m *Monitor) WaitUntil(name string, pred func() bool) {
	c := m.cond(name)
	for !pred() {
		c.Wait()
	}
}

// Signal wakes one waiter on the named condition. Must be called with the
// monitor held.
func (m *Monitor) Signal(name string) { m.cond(name).Signal() }

// Broadcast wakes all waiters on the named condition. Must be called with
// the monitor held.
func (m *Monitor) Broadcast(name string) { m.cond(name).Broadcast() }
