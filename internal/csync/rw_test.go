package csync

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRWMonitorConcurrentReaders(t *testing.T) {
	rw := NewRWMonitor()
	var inside atomic.Int64
	var maxInside atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			rw.RDo(func() {
				n := inside.Add(1)
				for {
					m := maxInside.Load()
					if n <= m || maxInside.CompareAndSwap(m, n) {
						break
					}
				}
				time.Sleep(5 * time.Millisecond)
				inside.Add(-1)
			})
		}()
	}
	wg.Wait()
	if maxInside.Load() < 2 {
		t.Fatalf("readers never overlapped (max %d)", maxInside.Load())
	}
}

func TestRWMonitorWriterExclusive(t *testing.T) {
	rw := NewRWMonitor()
	var active atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rw.Do(func() {
					if active.Add(1) != 1 {
						violations.Add(1)
					}
					active.Add(-1)
				})
			}
		}()
	}
	// Readers interleave; they must never see a writer active.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				rw.RDo(func() {
					if active.Load() != 0 {
						violations.Add(1)
					}
				})
			}
		}()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d exclusion violations", violations.Load())
	}
}

func TestRWMonitorWriterPreference(t *testing.T) {
	rw := NewRWMonitor()
	rw.RLock() // a reader holds the monitor
	writerIn := make(chan struct{})
	go func() {
		rw.Lock()
		close(writerIn)
		rw.Unlock()
	}()
	// Give the writer time to start waiting.
	time.Sleep(10 * time.Millisecond)
	// A new reader must block behind the waiting writer.
	readerIn := make(chan struct{})
	go func() {
		rw.RLock()
		close(readerIn)
		rw.RUnlock()
	}()
	time.Sleep(10 * time.Millisecond)
	select {
	case <-readerIn:
		t.Fatal("reader jumped the waiting writer")
	default:
	}
	rw.RUnlock() // release the original reader; writer goes first
	select {
	case <-writerIn:
	case <-time.After(time.Second):
		t.Fatal("writer never acquired")
	}
	select {
	case <-readerIn:
	case <-time.After(time.Second):
		t.Fatal("reader never acquired after writer finished")
	}
}

func TestRWMonitorMisusePanics(t *testing.T) {
	func() {
		defer func() {
			if recover() == nil {
				t.Error("RUnlock without RLock did not panic")
			}
		}()
		NewRWMonitor().RUnlock()
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Unlock without Lock did not panic")
			}
		}()
		NewRWMonitor().Unlock()
	}()
}
