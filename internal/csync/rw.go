package csync

// RWMonitor is a readers-writer discipline built on Monitor: any number of
// concurrent readers, writers exclusive, writers preferred (a waiting
// writer blocks new readers, so writers cannot starve). It is the classic
// monitor exercise, provided for guardians whose state is read-mostly —
// e.g. a directory consulted by many forked processes and updated by an
// administrative one.
type RWMonitor struct {
	m              *Monitor
	readers        int
	writerActive   bool
	writersWaiting int
}

// NewRWMonitor returns an unlocked readers-writer monitor.
func NewRWMonitor() *RWMonitor {
	return &RWMonitor{m: NewMonitor()}
}

// RLock acquires shared possession.
func (rw *RWMonitor) RLock() {
	rw.m.Enter()
	rw.m.WaitUntil("canRead", func() bool {
		return !rw.writerActive && rw.writersWaiting == 0
	})
	rw.readers++
	rw.m.Exit()
}

// RUnlock releases shared possession.
func (rw *RWMonitor) RUnlock() {
	rw.m.Enter()
	if rw.readers == 0 {
		rw.m.Exit()
		panic("csync: RUnlock without RLock")
	}
	rw.readers--
	if rw.readers == 0 {
		rw.m.Broadcast("canWrite")
	}
	rw.m.Exit()
}

// Lock acquires exclusive possession.
func (rw *RWMonitor) Lock() {
	rw.m.Enter()
	rw.writersWaiting++
	rw.m.WaitUntil("canWrite", func() bool {
		return !rw.writerActive && rw.readers == 0
	})
	rw.writersWaiting--
	rw.writerActive = true
	rw.m.Exit()
}

// Unlock releases exclusive possession.
func (rw *RWMonitor) Unlock() {
	rw.m.Enter()
	if !rw.writerActive {
		rw.m.Exit()
		panic("csync: Unlock without Lock")
	}
	rw.writerActive = false
	rw.m.Broadcast("canWrite")
	rw.m.Broadcast("canRead")
	rw.m.Exit()
}

// RDo runs body under shared possession.
func (rw *RWMonitor) RDo(body func()) {
	rw.RLock()
	defer rw.RUnlock()
	body()
}

// Do runs body under exclusive possession.
func (rw *RWMonitor) Do(body func()) {
	rw.Lock()
	defer rw.Unlock()
	body()
}
