package csync

import "sync"

// KeyLock is the monitor of Figure 1c made concrete: the paper's forked
// processes "synchronize using shared data, e.g., a monitor providing
// operations start_request(date) and end_request(date)". A KeyLock grants
// exclusive possession per key; requests for distinct keys proceed in
// parallel while requests for the same key serialize in FIFO order.
type KeyLock[K comparable] struct {
	mu    sync.Mutex
	state map[K]*keyState
}

type keyState struct {
	held    bool
	waiters []chan struct{} // FIFO of blocked StartRequest calls
}

// NewKeyLock returns an empty per-key monitor.
func NewKeyLock[K comparable]() *KeyLock[K] {
	return &KeyLock[K]{state: make(map[K]*keyState)}
}

// StartRequest blocks until the caller holds exclusive possession of key.
// Possession is granted in request order.
func (l *KeyLock[K]) StartRequest(key K) {
	l.mu.Lock()
	st, ok := l.state[key]
	if !ok {
		st = &keyState{}
		l.state[key] = st
	}
	if !st.held && len(st.waiters) == 0 {
		st.held = true
		l.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	st.waiters = append(st.waiters, ch)
	l.mu.Unlock()
	<-ch
}

// TryStartRequest acquires key without blocking; it reports whether
// possession was granted.
func (l *KeyLock[K]) TryStartRequest(key K) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.state[key]
	if !ok {
		st = &keyState{}
		l.state[key] = st
	}
	if st.held || len(st.waiters) > 0 {
		return false
	}
	st.held = true
	return true
}

// EndRequest releases possession of key, handing it to the oldest waiter
// if any. Releasing an unheld key panics: that is always a program bug.
func (l *KeyLock[K]) EndRequest(key K) {
	l.mu.Lock()
	defer l.mu.Unlock()
	st, ok := l.state[key]
	if !ok || !st.held {
		panic("csync: EndRequest of key not held")
	}
	if len(st.waiters) == 0 {
		delete(l.state, key) // keep the map from growing with dead keys
		return
	}
	next := st.waiters[0]
	st.waiters = st.waiters[1:]
	close(next) // possession transfers directly; held stays true
}

// Waiters reports how many processes are blocked on key.
func (l *KeyLock[K]) Waiters(key K) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if st, ok := l.state[key]; ok {
		return len(st.waiters)
	}
	return 0
}

// HeldKeys reports how many keys are currently possessed.
func (l *KeyLock[K]) HeldKeys() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, st := range l.state {
		if st.held {
			n++
		}
	}
	return n
}
