package csync

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMonitorMutualExclusion(t *testing.T) {
	m := NewMonitor()
	var counter, max int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Do(func() {
					c := atomic.AddInt64(&counter, 1)
					if c > atomic.LoadInt64(&max) {
						atomic.StoreInt64(&max, c)
					}
					atomic.AddInt64(&counter, -1)
				})
			}
		}()
	}
	wg.Wait()
	if max != 1 {
		t.Fatalf("observed %d processes inside the monitor at once", max)
	}
}

func TestMonitorWaitSignal(t *testing.T) {
	m := NewMonitor()
	ready := false
	done := make(chan struct{})
	go func() {
		m.Enter()
		m.WaitUntil("ready", func() bool { return ready })
		m.Exit()
		close(done)
	}()
	time.Sleep(5 * time.Millisecond)
	select {
	case <-done:
		t.Fatal("waiter proceeded before signal")
	default:
	}
	m.Do(func() {
		ready = true
		m.Signal("ready")
	})
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("waiter never woke")
	}
}

func TestMonitorBroadcastWakesAll(t *testing.T) {
	m := NewMonitor()
	open := false
	var woke atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Enter()
			m.WaitUntil("gate", func() bool { return open })
			m.Exit()
			woke.Add(1)
		}()
	}
	time.Sleep(5 * time.Millisecond)
	m.Do(func() {
		open = true
		m.Broadcast("gate")
	})
	wg.Wait()
	if woke.Load() != 5 {
		t.Fatalf("woke %d of 5", woke.Load())
	}
}

func TestMonitorDistinctConditionsIndependent(t *testing.T) {
	m := NewMonitor()
	aReady, bReady := false, false
	gotA := make(chan struct{})
	go func() {
		m.Enter()
		m.WaitUntil("a", func() bool { return aReady })
		m.Exit()
		close(gotA)
	}()
	time.Sleep(2 * time.Millisecond)
	// Signalling b must not wake the a-waiter.
	m.Do(func() {
		bReady = true
		m.Signal("b")
	})
	select {
	case <-gotA:
		t.Fatal("signal on condition b woke waiter on a")
	case <-time.After(10 * time.Millisecond):
	}
	m.Do(func() {
		aReady = true
		m.Signal("a")
	})
	<-gotA
	_ = bReady
}

func TestKeyLockExclusivePerKey(t *testing.T) {
	l := NewKeyLock[string]()
	var inside atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.StartRequest("dec-10")
				if inside.Add(1) > 1 {
					violations.Add(1)
				}
				inside.Add(-1)
				l.EndRequest("dec-10")
			}
		}()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d mutual-exclusion violations", violations.Load())
	}
}

func TestKeyLockDistinctKeysParallel(t *testing.T) {
	l := NewKeyLock[int]()
	l.StartRequest(1)
	acquired := make(chan struct{})
	go func() {
		l.StartRequest(2) // must not block behind key 1
		close(acquired)
	}()
	select {
	case <-acquired:
	case <-time.After(time.Second):
		t.Fatal("distinct key blocked behind a held key")
	}
	l.EndRequest(1)
	l.EndRequest(2)
}

func TestKeyLockFIFO(t *testing.T) {
	l := NewKeyLock[string]()
	l.StartRequest("k")
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 5; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.StartRequest("k")
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
			l.EndRequest("k")
		}(i)
		// Ensure each waiter queues before the next starts.
		for l.Waiters("k") != i+1 {
			time.Sleep(100 * time.Microsecond)
		}
	}
	l.EndRequest("k")
	wg.Wait()
	for i := range order {
		if order[i] != i {
			t.Fatalf("wakeup order = %v, want FIFO", order)
		}
	}
}

func TestKeyLockTryStartRequest(t *testing.T) {
	l := NewKeyLock[string]()
	if !l.TryStartRequest("x") {
		t.Fatal("TryStartRequest on free key failed")
	}
	if l.TryStartRequest("x") {
		t.Fatal("TryStartRequest on held key succeeded")
	}
	l.EndRequest("x")
	if !l.TryStartRequest("x") {
		t.Fatal("TryStartRequest after release failed")
	}
	l.EndRequest("x")
}

func TestKeyLockEndUnheldPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("EndRequest of unheld key did not panic")
		}
	}()
	NewKeyLock[string]().EndRequest("nope")
}

func TestKeyLockStateCleanup(t *testing.T) {
	l := NewKeyLock[int]()
	for i := 0; i < 100; i++ {
		l.StartRequest(i)
		l.EndRequest(i)
	}
	if n := l.HeldKeys(); n != 0 {
		t.Fatalf("HeldKeys = %d after all released", n)
	}
	if len(l.state) != 0 {
		t.Fatalf("state map holds %d dead keys", len(l.state))
	}
}

func TestSerializerRunsImmediatelyWhenFree(t *testing.T) {
	s := NewSerializer[string]()
	ran := false
	s.Submit("d", func() { ran = true })
	if !ran {
		t.Fatal("ready callback not fired synchronously on free key")
	}
	s.Done("d")
}

func TestSerializerQueuesSameKey(t *testing.T) {
	s := NewSerializer[string]()
	var order []int
	var mu sync.Mutex
	record := func(i int) func() {
		return func() {
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}
	}
	s.Submit("d", record(0))
	s.Submit("d", record(1))
	s.Submit("d", record(2))
	if got := s.QueueDepth(); got != 2 {
		t.Fatalf("QueueDepth = %d, want 2", got)
	}
	s.Done("d")
	s.Done("d")
	s.Done("d")
	mu.Lock()
	defer mu.Unlock()
	for i, v := range order {
		if v != i {
			t.Fatalf("execution order = %v", order)
		}
	}
	if len(order) != 3 {
		t.Fatalf("ran %d of 3", len(order))
	}
}

func TestSerializerDistinctKeysConcurrent(t *testing.T) {
	s := NewSerializer[int]()
	ran := 0
	for i := 0; i < 5; i++ {
		s.Submit(i, func() { ran++ })
	}
	if ran != 5 {
		t.Fatalf("only %d of 5 distinct-key requests started", ran)
	}
	if s.ActiveKeys() != 5 {
		t.Fatalf("ActiveKeys = %d, want 5", s.ActiveKeys())
	}
	for i := 0; i < 5; i++ {
		s.Done(i)
	}
	if s.ActiveKeys() != 0 {
		t.Fatalf("ActiveKeys = %d after Done, want 0", s.ActiveKeys())
	}
}

func TestSerializerDoneIdlePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Done on idle key did not panic")
		}
	}()
	NewSerializer[string]().Done("idle")
}

func TestSerializerStress(t *testing.T) {
	s := NewSerializer[int]()
	var running [8]atomic.Int64
	var violations atomic.Int64
	var wg sync.WaitGroup
	var submitMu sync.Mutex
	for i := 0; i < 400; i++ {
		key := i % 8
		wg.Add(1)
		submitMu.Lock()
		s.Submit(key, func() {
			go func() {
				defer wg.Done()
				if running[key].Add(1) > 1 {
					violations.Add(1)
				}
				time.Sleep(time.Duration(key) * 10 * time.Microsecond)
				running[key].Add(-1)
				s.Done(key)
			}()
		})
		submitMu.Unlock()
	}
	wg.Wait()
	if violations.Load() != 0 {
		t.Fatalf("%d per-key concurrency violations", violations.Load())
	}
	if s.QueueDepth() != 0 {
		t.Fatalf("QueueDepth = %d at end", s.QueueDepth())
	}
}

func TestMonitorRawWait(t *testing.T) {
	m := NewMonitor()
	woke := make(chan struct{})
	go func() {
		m.Enter()
		m.Wait("c") // raw wait: exactly one Signal wakes it
		m.Exit()
		close(woke)
	}()
	time.Sleep(5 * time.Millisecond)
	m.Do(func() { m.Signal("c") })
	select {
	case <-woke:
	case <-time.After(time.Second):
		t.Fatal("raw Wait never woke on Signal")
	}
}
