package csync

import "sync"

// Serializer is the synchronization object of Figure 1b: a single
// coordinating process uses it "to determine when requests should be
// performed", handing each request to a worker process once the data of
// interest is available.
//
// Unlike KeyLock, the serializer is asynchronous: Submit never blocks the
// coordinator. Each request joins a per-key queue; when its turn arrives
// the serializer invokes the ready callback (on the goroutine that
// released the predecessor, or immediately on Submit when the key is
// free), which the coordinator uses to fork the worker. The worker calls
// Done when finished.
type Serializer[K comparable] struct {
	mu    sync.Mutex
	queue map[K]*serialQueue
	// depth tracks total queued-but-unstarted requests for observability.
	depth int
}

type serialQueue struct {
	running bool
	waiting []func()
}

// NewSerializer returns an empty serializer.
func NewSerializer[K comparable]() *Serializer[K] {
	return &Serializer[K]{queue: make(map[K]*serialQueue)}
}

// Submit schedules ready to run when key becomes available. If key is free
// the callback fires synchronously before Submit returns; otherwise it
// fires on the Done call of the predecessor. The callback should fork a
// worker and return quickly.
func (s *Serializer[K]) Submit(key K, ready func()) {
	s.mu.Lock()
	q, ok := s.queue[key]
	if !ok {
		q = &serialQueue{}
		s.queue[key] = q
	}
	if !q.running {
		q.running = true
		s.mu.Unlock()
		ready()
		return
	}
	q.waiting = append(q.waiting, ready)
	s.depth++
	s.mu.Unlock()
}

// Done releases key; the oldest queued request for it, if any, becomes
// ready. Calling Done for an idle key panics — it indicates a lost
// possession bug in the guardian.
func (s *Serializer[K]) Done(key K) {
	s.mu.Lock()
	q, ok := s.queue[key]
	if !ok || !q.running {
		panic("csync: Done on key not running")
	}
	if len(q.waiting) == 0 {
		delete(s.queue, key)
		s.mu.Unlock()
		return
	}
	next := q.waiting[0]
	q.waiting = q.waiting[1:]
	s.depth--
	s.mu.Unlock()
	next()
}

// QueueDepth reports the total number of submitted requests still waiting
// for their key.
func (s *Serializer[K]) QueueDepth() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.depth
}

// ActiveKeys reports how many keys currently have a running request.
func (s *Serializer[K]) ActiveKeys() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, q := range s.queue {
		if q.running {
			n++
		}
	}
	return n
}
