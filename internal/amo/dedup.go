package amo

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/durable"
	"repro/internal/guardian"
	"repro/internal/wire"
	"repro/internal/xrep"
)

// Request is one decoded at-most-once request as the handler sees it.
type Request struct {
	// Command and Args are the application command and its arguments.
	Command string
	Args    xrep.Seq
	// Client and Seq form the request id.
	Client string
	Seq    int64
	// SrcNode and SrcGuardian identify the sending guardian, usable as an
	// access-control principal exactly like on a raw message.
	SrcNode     string
	SrcGuardian uint64
}

// Handler executes one request and returns the reply's outcome command and
// arguments. It runs on the guardian's own process, so it may use the
// guardian's state under the guardian's usual locking discipline. It is
// called AT MOST ONCE per request id: replays get the cached reply.
type Handler func(pr *guardian.Process, req *Request) (outcome string, args xrep.Seq)

// dedupLogRec names the stable-log record that persists one executed
// request's cached reply.
const dedupLogRec = "amo/dedup"

// DedupOptions tunes a Dedup filter.
type DedupOptions struct {
	// MaxPerClient bounds the cached replies kept per client beyond the
	// ack-watermark pruning (a safety net against a client that never
	// acks). Zero means 128.
	MaxPerClient int
	// Log, when non-nil, persists every executed request's reply — the
	// §2.2 log-then-reply protocol — so Recover can rebuild the table and
	// at-most-once survives a crash.
	Log durable.Log
	// Metrics receives the filter's counters. Nil means Default.
	Metrics *Metrics
}

// cached is one retained reply.
type cached struct {
	outcome string
	args    xrep.Seq
}

// session is the dedup state for one client.
type session struct {
	// pruned is the high-water mark: every seq at or below it has been
	// answered and the reply discarded. A request at or below it is a
	// duplicate by construction and is dropped without execution.
	pruned int64
	// replies caches the reply for every answered, un-pruned seq.
	replies map[int64]cached
	// executing marks seqs whose handler is currently running, so a
	// duplicate racing the first delivery is dropped, not re-executed.
	executing map[int64]bool
}

// Dedup is the server half of the at-most-once layer: a filter a guardian
// interposes on its receive loop (via Hook or Serve) that executes each
// request id exactly once and answers replays from a cached-reply table.
type Dedup struct {
	opts DedupOptions

	mu       sync.Mutex
	sessions map[string]*session
}

// NewDedup builds an empty filter.
func NewDedup(opts DedupOptions) *Dedup {
	if opts.MaxPerClient <= 0 {
		opts.MaxPerClient = 128
	}
	return &Dedup{opts: opts, sessions: make(map[string]*session)}
}

// Hook adapts the filter to guardian.Receiver.Intercept: install it with
//
//	NewReceiver(ports...).Intercept(d.Hook(handler), amo.ReqCommand)
//
// so the filter owns every amo_req envelope while the guardian's ordinary
// arms keep handling its native commands on the same ports.
func (d *Dedup) Hook(h Handler) func(pr *guardian.Process, m *guardian.Message) bool {
	return func(pr *guardian.Process, m *guardian.Message) bool {
		if m.Command != ReqCommand {
			return false
		}
		d.handle(pr, m, h)
		return true
	}
}

// Serve runs a receive loop over the given ports dedicated to at-most-once
// traffic. Guardians that mix amo with native commands use Hook on their
// own Receiver instead.
func (d *Dedup) Serve(pr *guardian.Process, h Handler, ports ...*guardian.Port) {
	guardian.NewReceiver(ports...).
		Intercept(d.Hook(h), ReqCommand).
		WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
			// §3.4 failure arm: a discarded message named a serving port as
			// its replyto. The duplicate table already holds the outcome;
			// the client's retry re-fetches it, so drop the report.
		}).
		Loop(pr, nil)
}

// ParseRequest decodes an amo_req envelope. The returned ack is the
// client's prune watermark. Exported so a guardian that deliberately
// serves envelopes WITHOUT dedup (an experiment's control arm) can share
// the wire format.
func ParseRequest(m *guardian.Message) (req *Request, ack int64) {
	req = &Request{
		Client:      m.Str(0),
		Seq:         m.Int(1),
		Command:     m.Str(3),
		SrcNode:     m.SrcNode,
		SrcGuardian: m.SrcGuardian,
	}
	req.Args, _ = m.Args[4].(xrep.Seq)
	return req, m.Int(2)
}

// SendReply answers an envelope directly — the reply path Dedup uses,
// exported for the same no-dedup control-arm use as ParseRequest.
func SendReply(pr *guardian.Process, m *guardian.Message, outcome string, args xrep.Seq) {
	if m.ReplyTo == (xrep.PortName{}) {
		return
	}
	if args == nil {
		args = xrep.Seq{}
	}
	_ = pr.Send(m.ReplyTo, ReplyCommand, m.Int(1), outcome, args)
}

// SendMoved answers an envelope with the OutcomeMoved routing redirect:
// the key's range is owned by the guardian behind owner, as of the given
// ring epoch. Deliberately NOT logged and NOT cached — a redirect is
// derivable routing state, and caching it would burn a durable write per
// misrouted request. A shard's ownership filter sends it BEFORE the dedup
// hook runs (guardian.Receiver.Intercept order), which is safe exactly
// because migration ships the dedup table with the range: a request id the
// old owner already executed is redirected too, and answered from the NEW
// owner's cache.
func SendMoved(pr *guardian.Process, m *guardian.Message, owner xrep.PortName, epoch int64) {
	SendReply(pr, m, OutcomeMoved, xrep.Seq{owner, xrep.Int(epoch)})
}

// handle processes one envelope: drop (already pruned), replay (cached),
// or execute-log-reply (fresh).
func (d *Dedup) handle(pr *guardian.Process, m *guardian.Message, h Handler) {
	req, ack := ParseRequest(m)
	met := orDefault(d.opts.Metrics)

	d.mu.Lock()
	s, ok := d.sessions[req.Client]
	if !ok {
		s = &session{replies: make(map[int64]cached), executing: make(map[int64]bool)}
		d.sessions[req.Client] = s
	}
	switch {
	case req.Seq <= s.pruned:
		// Answered and forgotten: the client's own ack proved it holds
		// the reply, so this stray duplicate needs no answer.
		d.mu.Unlock()
		met.CallsDeduped.Inc()
		return
	case s.executing[req.Seq]:
		// The first delivery is still running its handler; the client's
		// retry will be answered from the cache once it lands.
		d.mu.Unlock()
		met.CallsDeduped.Inc()
		return
	default:
		if c, ok := s.replies[req.Seq]; ok {
			d.mu.Unlock()
			met.CallsDeduped.Inc()
			met.RepliesReplayed.Inc()
			d.reply(pr, m, req.Seq, c)
			return
		}
	}
	s.executing[req.Seq] = true
	d.mu.Unlock()

	outcome, outArgs := h(pr, req)
	c := cached{outcome: outcome, args: outArgs}

	// Log-then-reply: the cached reply must be durable before the client
	// can observe it, or a crash between reply and log would let a replay
	// after recovery re-execute the handler.
	if d.opts.Log != nil {
		d.opts.Log.AppendSync(marshalDedupRec(req.Client, req.Seq, ack, c))
	}

	d.mu.Lock()
	delete(s.executing, req.Seq)
	s.replies[req.Seq] = c
	s.prune(ack)
	s.bound(d.opts.MaxPerClient)
	d.mu.Unlock()

	d.reply(pr, m, req.Seq, c)
}

// reply sends (or re-sends) a cached reply to the envelope's reply port.
func (d *Dedup) reply(pr *guardian.Process, m *guardian.Message, seq int64, c cached) {
	if m.ReplyTo == (xrep.PortName{}) {
		return
	}
	args := c.args
	if args == nil {
		args = xrep.Seq{}
	}
	// Best-effort, like any no-wait send: a lost reply is the client's
	// retry's problem.
	_ = pr.Send(m.ReplyTo, ReplyCommand, seq, c.outcome, args)
}

// prune applies the client's ack watermark: every cached reply at or below
// it is provably held by the client and may be forgotten.
func (s *session) prune(ack int64) {
	if ack <= s.pruned {
		return
	}
	for seq := range s.replies {
		if seq <= ack {
			delete(s.replies, seq)
		}
	}
	s.pruned = ack
}

// bound enforces MaxPerClient by discarding the OLDEST cached replies and
// raising the watermark over them; with a well-behaved sequential client
// the table holds at most one entry, so this only fires for a client that
// stopped acking.
func (s *session) bound(max int) {
	if len(s.replies) <= max {
		return
	}
	seqs := make([]int64, 0, len(s.replies))
	for seq := range s.replies {
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	for _, seq := range seqs[:len(seqs)-max] {
		delete(s.replies, seq)
		if seq > s.pruned {
			s.pruned = seq
		}
	}
}

// Cached reports how many replies are currently retained for the client —
// an observability hook for tests and experiments.
func (d *Dedup) Cached(client string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.sessions[client]
	if !ok {
		return 0
	}
	return len(s.replies)
}

// marshalDedupRec encodes one executed request for the stable log.
func marshalDedupRec(client string, seq, ack int64, c cached) []byte {
	args := c.args
	if args == nil {
		args = xrep.Seq{}
	}
	rec := xrep.Rec{Name: dedupLogRec, Fields: xrep.Seq{
		xrep.Str(client), xrep.Int(seq), xrep.Int(ack), xrep.Str(c.outcome), args,
	}}
	buf, err := wire.MarshalValue(rec)
	if err != nil {
		panic(fmt.Sprintf("amo: marshal dedup record: %v", err))
	}
	return buf
}

// Recover rebuilds the dedup table from the stable log, re-applying each
// record's reply cache and ack watermark in order. A guardian's recovery
// process calls it before serving, so a request the pre-crash incarnation
// already executed is answered from the cache, never re-executed —
// at-most-once across the crash.
func (d *Dedup) Recover() (int, error) {
	if d.opts.Log == nil {
		return 0, nil
	}
	_, records, err := d.opts.Log.Recover()
	if err != nil && err != durable.ErrNoCheckpoint {
		return 0, err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	n := 0
	for _, r := range records {
		v, err := wire.UnmarshalValue(r.Data)
		if err != nil {
			return n, fmt.Errorf("amo: recover dedup record %d: %w", r.Seq, err)
		}
		rec, ok := v.(xrep.Rec)
		if !ok || rec.Name != dedupLogRec || len(rec.Fields) != 5 {
			continue // not ours; the log may be shared
		}
		client := string(rec.Fields[0].(xrep.Str))
		seq := int64(rec.Fields[1].(xrep.Int))
		ack := int64(rec.Fields[2].(xrep.Int))
		c := cached{
			outcome: string(rec.Fields[3].(xrep.Str)),
			args:    rec.Fields[4].(xrep.Seq),
		}
		s, ok := d.sessions[client]
		if !ok {
			s = &session{replies: make(map[int64]cached), executing: make(map[int64]bool)}
			d.sessions[client] = s
		}
		if seq > s.pruned {
			s.replies[seq] = c
		}
		s.prune(ack)
		s.bound(d.opts.MaxPerClient)
		n++
	}
	return n, nil
}

// Snapshot captures the dedup table as a value suitable for inclusion in
// a guardian's checkpoint state, so the log records already folded into
// the table can be compacted away. Clients and seqs are emitted in sorted
// order: the same table always snapshots to the same bytes.
func (d *Dedup) Snapshot() xrep.Value {
	d.mu.Lock()
	defer d.mu.Unlock()
	clients := make([]string, 0, len(d.sessions))
	for c := range d.sessions {
		clients = append(clients, c)
	}
	sort.Strings(clients)
	out := make(xrep.Seq, 0, len(clients))
	for _, c := range clients {
		s := d.sessions[c]
		seqs := make([]int64, 0, len(s.replies))
		for seq := range s.replies {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		entries := make(xrep.Seq, 0, len(seqs))
		for _, seq := range seqs {
			r := s.replies[seq]
			args := r.args
			if args == nil {
				args = xrep.Seq{}
			}
			entries = append(entries, xrep.Seq{xrep.Int(seq), xrep.Str(r.outcome), args})
		}
		out = append(out, xrep.Rec{Name: "amo/session", Fields: xrep.Seq{
			xrep.Str(c), xrep.Int(s.pruned), entries,
		}})
	}
	return out
}

// parseSnapshot decodes a Snapshot value into a fresh session table.
func parseSnapshot(v xrep.Value) (map[string]*session, error) {
	seq, ok := v.(xrep.Seq)
	if !ok {
		return nil, fmt.Errorf("amo: restore: not a snapshot sequence")
	}
	sessions := make(map[string]*session, len(seq))
	for _, sv := range seq {
		rec, ok := sv.(xrep.Rec)
		if !ok || rec.Name != "amo/session" || len(rec.Fields) != 3 {
			return nil, fmt.Errorf("amo: restore: malformed session record")
		}
		client, ok0 := rec.Fields[0].(xrep.Str)
		pruned, ok1 := rec.Fields[1].(xrep.Int)
		entries, ok2 := rec.Fields[2].(xrep.Seq)
		if !ok0 || !ok1 || !ok2 {
			return nil, fmt.Errorf("amo: restore: malformed session record")
		}
		s := &session{
			pruned:    int64(pruned),
			replies:   make(map[int64]cached),
			executing: make(map[int64]bool),
		}
		for _, ev := range entries {
			e, ok := ev.(xrep.Seq)
			if !ok || len(e) != 3 {
				return nil, fmt.Errorf("amo: restore: malformed reply entry")
			}
			rseq, ok0 := e[0].(xrep.Int)
			outcome, ok1 := e[1].(xrep.Str)
			args, ok2 := e[2].(xrep.Seq)
			if !ok0 || !ok1 || !ok2 {
				return nil, fmt.Errorf("amo: restore: malformed reply entry")
			}
			s.replies[int64(rseq)] = cached{outcome: string(outcome), args: args}
		}
		sessions[string(client)] = s
	}
	return sessions, nil
}

// Restore rebuilds the table from a Snapshot value, replacing the current
// contents. A recovering guardian calls Restore with the checkpoint's
// snapshot first, then Recover to fold in the log records written after
// the checkpoint was taken.
func (d *Dedup) Restore(v xrep.Value) error {
	sessions, err := parseSnapshot(v)
	if err != nil {
		return err
	}
	d.mu.Lock()
	d.sessions = sessions
	d.mu.Unlock()
	return nil
}

// MergeSnapshot folds another guardian's Snapshot into this table without
// discarding what is already here — the receiving half of dedup handoff
// during a shard migration. Watermarks take the max and cached replies
// union (an id present on both sides carries the same reply, since an id
// executes on exactly one side before the range moves). After the merge, a
// client retry of an op the old owner executed is answered from this
// table's cache instead of re-executing — exactly-once across migration.
func (d *Dedup) MergeSnapshot(v xrep.Value) error {
	incoming, err := parseSnapshot(v)
	if err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	for client, in := range incoming {
		s, ok := d.sessions[client]
		if !ok {
			d.sessions[client] = in
			continue
		}
		for seq, c := range in.replies {
			if _, dup := s.replies[seq]; !dup && seq > s.pruned {
				s.replies[seq] = c
			}
		}
		s.prune(in.pruned)
		s.bound(d.opts.MaxPerClient)
	}
	return nil
}
