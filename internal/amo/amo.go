// Package amo is an at-most-once session layer built purely from the
// paper's primitives — the no-wait send, reply ports, and receive with
// timeout — on top of whose deliberately weak guarantees ("messages may be
// lost or duplicated") it recovers exactly-once observable effect.
//
// The paper concedes in §3.5 that its remote transaction send may perform
// a request any number of times, which is only safe for idempotent
// commands like reserve and cancel. This package is the standard fix for
// everything else, layered strictly ON TOP of the primitive (the no-wait
// send itself stays best-effort, so the paper's layering claim is intact):
//
//   - the client-side Caller stamps every logical request with a
//     (client, seq) request id, retries with capped exponential backoff
//     plus jitter so a congested node is not melted by a retry storm, and
//     consults an optional Health subscription as a circuit breaker —
//     calls to a node currently marked down fail fast instead of burning
//     the whole retry budget;
//   - the server-side Dedup filter wraps a guardian's receive loop
//     (via guardian.Receiver.Intercept), detects replayed request ids,
//     re-sends the cached reply without re-executing the handler, and
//     bounds its table with per-client high-water-mark pruning; the table
//     can be persisted through stable.Log so at-most-once survives a crash
//     and restart — a new application of §2.2 permanence of effect.
//
// Requests travel in a tagged envelope on a dedicated port type, so the
// layer composes with any guardian without changing its own port types.
package amo

import (
	"errors"

	"repro/internal/guardian"
	"repro/internal/metrics"
	"repro/internal/xrep"
)

// Package errors.
var (
	// ErrTimeout: every attempt timed out. The request may have been
	// performed AT MOST once — unlike the bare remote transaction send,
	// the dedup filter guarantees it was not performed twice.
	ErrTimeout = errors.New("amo: call exhausted retries")
	// ErrCircuitOpen: the target node is currently marked down by the
	// health subscription; the call failed fast without sending.
	ErrCircuitOpen = errors.New("amo: circuit open, target node marked down")
	// ErrFailed: the system reported a failure (dead port/guardian).
	ErrFailed = errors.New("amo: call failed")
	// ErrBusy: the Caller is strictly sequential; a second concurrent
	// Call on the same Caller is a programming error.
	ErrBusy = errors.New("amo: caller already has a call in flight")
)

// ReqCommand is the envelope command carried on an at-most-once port.
const ReqCommand = "amo_req"

// ReplyCommand is the envelope command of an at-most-once reply.
const ReplyCommand = "amo_reply"

// OutcomeMoved is the reserved reply outcome a sharded server sends when
// the request's key is owned elsewhere (package ring): args carry the
// owner's port and the server's ring epoch. The Caller treats it as a
// routing correction, not an answer — it re-sends the SAME request id to
// the new port, so an op the old owner executed before a migration is
// still deduplicated at the new owner (the dedup table travels with the
// range). Servers must send it WITHOUT executing or caching: it is
// regenerable routing state, never an effect.
const OutcomeMoved = "amo_moved"

// OutcomeSplit is the reserved reply outcome for a multi-key request
// whose keys no longer share an owner (a transfer straddling a shard
// boundary after a rebalance). It is terminal: the caller must re-issue
// the work as a distributed transaction (ring.Router falls back to tpc).
const OutcomeSplit = "amo_split"

// MaxRedirects bounds the moved-redirects one Call follows, so two
// servers mid-handoff pointing at each other degrade into a normal retry
// with backoff instead of a tight ping-pong that burns the budget.
const MaxRedirects = 16

// ReqType is the port type an at-most-once server provides. The envelope
// carries the request id (client, seq), the client's prune watermark (ack:
// the highest seq the client holds a reply for — everything at or below it
// may be forgotten), and the application command with its encoded
// arguments.
var ReqType = guardian.NewPortType("amo_req_port").
	Msg(ReqCommand,
		xrep.KindString, // client id
		xrep.KindInt,    // seq
		xrep.KindInt,    // ack watermark
		xrep.KindString, // application command
		xrep.KindSeq).   // application arguments
	Replies(ReqCommand, ReplyCommand)

// ReplyType is the port type of a Caller's reply port. The seq echo lets
// the caller discard stale and duplicated replies.
var ReplyType = guardian.NewPortType("amo_reply_port").
	Msg(ReplyCommand,
		xrep.KindInt,    // seq echo
		xrep.KindString, // outcome command
		xrep.KindSeq)    // outcome arguments

// Metrics aggregates the layer's event counters. A nil *Metrics anywhere
// in this package falls back to Default.
type Metrics struct {
	// Calls counts logical Caller.Call invocations.
	Calls metrics.Counter
	// Retries counts re-send attempts beyond each call's first.
	Retries metrics.Counter
	// CallsDeduped counts server-side envelope deliveries suppressed as
	// duplicates (replayed or already pruned).
	CallsDeduped metrics.Counter
	// RepliesReplayed counts cached replies re-sent without re-executing
	// the handler.
	RepliesReplayed metrics.Counter
	// CircuitOpen counts calls that failed fast on a down target.
	CircuitOpen metrics.Counter
	// Redirects counts moved-outcome replies followed to a new owner.
	Redirects metrics.Counter
	// RetryBackoffTotal accumulates nanoseconds slept in retry backoff.
	RetryBackoffTotal metrics.Counter
}

// Default receives the package's counters when no explicit Metrics is
// configured.
var Default = &Metrics{}

// orDefault returns m, or Default when m is nil.
func orDefault(m *Metrics) *Metrics {
	if m == nil {
		return Default
	}
	return m
}
