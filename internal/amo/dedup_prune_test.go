package amo

import (
	"sync"
	"testing"
	"time"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

// envelope fabricates one amo_req delivery as ParseRequest expects it:
// (client, seq, ack, command, args), with no reply port — these tests
// audit the filter's table, not the reply path.
func envelope(client string, seq, ack int64, cmd string) *guardian.Message {
	return &guardian.Message{
		Command: ReqCommand,
		Args: xrep.Seq{
			xrep.Str(client), xrep.Int(seq), xrep.Int(ack), xrep.Str(cmd), xrep.Seq{},
		},
	}
}

// watermark reads a session's prune watermark under the filter's lock.
func (d *Dedup) watermark(client string) int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	s, ok := d.sessions[client]
	if !ok {
		return -1
	}
	return s.pruned
}

// TestPruneWatermarkNeverRegresses: a late retransmission carrying an
// older ack must not lower the watermark — lowering it would re-admit
// request ids the client already proved it holds answers for, losing the
// at-most-once guarantee for them.
func TestPruneWatermarkNeverRegresses(t *testing.T) {
	var mu sync.Mutex
	exec := make(map[int64]int)
	d := NewDedup(DedupOptions{})
	hook := d.Hook(func(pr *guardian.Process, req *Request) (string, xrep.Seq) {
		mu.Lock()
		exec[req.Seq]++
		mu.Unlock()
		return "ok", nil
	})

	// A well-behaved sequential client: each call acks the previous.
	for seq := int64(1); seq <= 5; seq++ {
		hook(nil, envelope("c", seq, seq-1, "op"))
	}
	if got := d.watermark("c"); got != 4 {
		t.Fatalf("watermark = %d after acks through 4, want 4", got)
	}
	if got := d.Cached("c"); got != 1 {
		t.Fatalf("cached = %d, want 1 (only the unacked seq 5)", got)
	}

	// Reordered delivery: seq 6 carries a STALE ack (2 < 4).
	hook(nil, envelope("c", 6, 2, "op"))
	if got := d.watermark("c"); got != 4 {
		t.Fatalf("stale ack regressed the watermark to %d, want 4", got)
	}

	// A duplicate at or below the watermark is dropped without execution.
	hook(nil, envelope("c", 3, 0, "op"))
	mu.Lock()
	n3 := exec[3]
	mu.Unlock()
	if n3 != 1 {
		t.Fatalf("seq 3 executed %d times after a below-watermark duplicate, want 1", n3)
	}
}

// TestPruneUnknownClient: the first envelope a server ever sees from a
// client may already carry a (possibly absurd) ack. Pruning must work on
// the fresh, empty session — and the self-reported watermark binds that
// client's own later low seqs.
func TestPruneUnknownClient(t *testing.T) {
	var mu sync.Mutex
	exec := make(map[int64]int)
	d := NewDedup(DedupOptions{})
	hook := d.Hook(func(pr *guardian.Process, req *Request) (string, xrep.Seq) {
		mu.Lock()
		exec[req.Seq]++
		mu.Unlock()
		return "ok", nil
	})

	// Never-seen client, watermark claimed at 1<<40.
	hook(nil, envelope("ghost", 1<<40+1, 1<<40, "op"))
	mu.Lock()
	nHigh := exec[1<<40+1]
	mu.Unlock()
	if nHigh != 1 {
		t.Fatalf("first request from unknown client executed %d times, want 1", nHigh)
	}
	if got := d.watermark("ghost"); got != 1<<40 {
		t.Fatalf("watermark = %d, want %d", got, int64(1)<<40)
	}
	// A seq below the client's own claimed watermark is a duplicate by the
	// client's own statement: dropped, never executed.
	hook(nil, envelope("ghost", 40, 0, "op"))
	mu.Lock()
	nLow := exec[40]
	mu.Unlock()
	if nLow != 0 {
		t.Fatalf("below-watermark request from unknown client executed %d times, want 0", nLow)
	}
	// Distinct clients are distinct sessions: the same low seq from a
	// different client id executes normally.
	hook(nil, envelope("other", 40, 0, "op"))
	mu.Lock()
	nOther := exec[40]
	mu.Unlock()
	if nOther != 1 {
		t.Fatalf("other client's seq 40 executed %d times, want 1", nOther)
	}
}

// TestPruneUnderConcurrentReplay (run under -race): while a request's
// handler is still executing, a racing duplicate of the same id must be
// dropped (not re-executed), and a concurrent later request pruning the
// table must not disturb either. This is the §3.5 retry storm in
// miniature: the retry can arrive before the first execution finishes.
func TestPruneUnderConcurrentReplay(t *testing.T) {
	var mu sync.Mutex
	exec := make(map[int64]int)
	block := make(chan struct{})
	d := NewDedup(DedupOptions{})
	hook := d.Hook(func(pr *guardian.Process, req *Request) (string, xrep.Seq) {
		mu.Lock()
		exec[req.Seq]++
		mu.Unlock()
		if req.Seq == 10 {
			<-block // hold seq 10 mid-execution
		}
		return "ok", nil
	})

	// Warm the session: seqs 1..9 answered.
	for seq := int64(1); seq <= 9; seq++ {
		hook(nil, envelope("c", seq, seq-1, "op"))
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		hook(nil, envelope("c", 10, 9, "op")) // blocks in the handler
	}()
	// Wait until seq 10 is marked executing.
	for {
		d.mu.Lock()
		executing := d.sessions["c"] != nil && d.sessions["c"].executing[10]
		d.mu.Unlock()
		if executing {
			break
		}
		time.Sleep(50 * time.Microsecond)
	}

	wg.Add(2)
	go func() {
		defer wg.Done()
		hook(nil, envelope("c", 10, 9, "op")) // racing duplicate: must drop
	}()
	go func() {
		defer wg.Done()
		hook(nil, envelope("c", 11, 9, "op")) // concurrent later request
	}()
	time.Sleep(time.Millisecond) // let the racers reach the filter
	close(block)
	wg.Wait()

	mu.Lock()
	n10, n11 := exec[10], exec[11]
	mu.Unlock()
	if n10 != 1 {
		t.Fatalf("seq 10 executed %d times under concurrent replay, want 1", n10)
	}
	if n11 != 1 {
		t.Fatalf("seq 11 executed %d times, want 1", n11)
	}

	// Once seq 12 acks 11, everything at or below is pruned; a stale ack
	// afterwards changes nothing.
	hook(nil, envelope("c", 12, 11, "op"))
	if got := d.watermark("c"); got != 11 {
		t.Fatalf("watermark = %d after ack 11, want 11", got)
	}
	if got := d.Cached("c"); got != 1 {
		t.Fatalf("cached = %d, want 1 (only seq 12)", got)
	}
	hook(nil, envelope("c", 13, 3, "op"))
	if got := d.watermark("c"); got != 11 {
		t.Fatalf("stale ack regressed watermark to %d, want 11", got)
	}
}
