package amo

import (
	"sync"
	"time"

	"repro/internal/guardian"
	"repro/internal/sendprim"
	"repro/internal/watchdog"
	"repro/internal/xrep"
)

// Health is the circuit breaker: a live map of node liveness fed by a
// watchdog subscription. A Caller configured with a Health fails calls to
// a down node fast (ErrCircuitOpen) instead of burning its whole retry and
// backoff budget probing a corpse — the failure detector of §3.4 put to
// work on the client side.
type Health struct {
	port *guardian.Port

	mu   sync.Mutex
	down map[string]bool
}

// NewHealth creates a watchdog event port on the guardian and spawns a
// listener process that folds node_down/node_up events into the map. Wire
// it to a watchdog with Subscribe (or feed it directly with MarkDown and
// MarkUp in tests).
func NewHealth(g *guardian.Guardian) (*Health, error) {
	port, err := g.NewPort(watchdog.EventPortType, 64)
	if err != nil {
		return nil, err
	}
	h := &Health{port: port, down: make(map[string]bool)}
	g.Spawn("amo-health", func(pr *guardian.Process) {
		for {
			m, st := pr.Receive(guardian.Infinite, port)
			if st == guardian.RecvKilled {
				return
			}
			if st != guardian.RecvOK || m.IsFailure() {
				continue
			}
			switch m.Command {
			case "node_down":
				h.MarkDown(m.Str(0))
			case "node_up":
				h.MarkUp(m.Str(0))
			}
		}
	})
	return h, nil
}

// EventPort returns the port transition events arrive on — what Subscribe
// registers with the watchdog.
func (h *Health) EventPort() xrep.PortName { return h.port.Name() }

// Subscribe registers the health map with a watchdog guardian's control
// port. It is a plain remote transaction send; retrying is safe because
// re-subscribing is idempotent from the map's point of view (duplicate
// event deliveries collapse into the same booleans).
func (h *Health) Subscribe(pr *guardian.Process, wd xrep.PortName, timeout time.Duration) error {
	_, err := sendprim.Call(pr, wd, watchdog.ClientReplyType,
		sendprim.CallOptions{Timeout: timeout, Retries: 2, Backoff: timeout / 4},
		"subscribe", h.port.Name())
	return err
}

// Down reports whether the node is currently believed down. Unknown nodes
// are up: the breaker is an optimization, never a gate on fresh targets.
func (h *Health) Down(node string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.down[node]
}

// MarkDown records a node as down.
func (h *Health) MarkDown(node string) {
	h.mu.Lock()
	h.down[node] = true
	h.mu.Unlock()
}

// MarkUp records a node as up again.
func (h *Health) MarkUp(node string) {
	h.mu.Lock()
	delete(h.down, node)
	h.mu.Unlock()
}
