package amo

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"strings"
	"sync"
	"time"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

// BackoffPolicy shapes the delay between retry attempts: capped
// exponential growth with equal jitter, the standard antidote to retry
// storms — synchronized clients hammering a node that is slow precisely
// because it is overloaded.
type BackoffPolicy struct {
	// Base is the nominal delay before the first re-send. Zero disables
	// backoff (immediate re-send, the bare §3.5 behavior).
	Base time.Duration
	// Cap bounds the grown delay. Zero means 32×Base.
	Cap time.Duration
	// Multiplier grows the delay per attempt. Zero means 2.
	Multiplier float64
	// Jitter is the fraction of each delay drawn uniformly at random
	// (equal jitter: delay = d·(1-Jitter) + rand(d·Jitter)). Zero means
	// no jitter; 0.5 is the usual choice.
	Jitter float64
}

// delay returns the (possibly jittered) backoff after failed attempt
// number attempt (0-based).
func (b BackoffPolicy) delay(attempt int, rng *rand.Rand) time.Duration {
	if b.Base <= 0 {
		return 0
	}
	mult := b.Multiplier
	if mult <= 1 {
		mult = 2
	}
	cap := b.Cap
	if cap <= 0 {
		cap = 32 * b.Base
	}
	d := float64(b.Base)
	for i := 0; i < attempt && d < float64(cap); i++ {
		d *= mult
	}
	if d > float64(cap) {
		d = float64(cap)
	}
	if b.Jitter > 0 {
		j := b.Jitter
		if j > 1 {
			j = 1
		}
		d = d*(1-j) + rng.Float64()*d*j
	}
	return time.Duration(d)
}

// CallerOptions tunes a Caller.
type CallerOptions struct {
	// Timeout bounds each attempt. Zero means 100ms.
	Timeout time.Duration
	// Retries is the number of re-sends after the first attempt.
	Retries int
	// Backoff spaces the attempts. The zero value disables backoff.
	Backoff BackoffPolicy
	// Health, when non-nil, is the circuit breaker: calls to a node it
	// reports down fail fast with ErrCircuitOpen.
	Health *Health
	// ReplyCapacity sizes the caller's reply port. Zero means 16.
	ReplyCapacity int
	// Metrics receives the caller's counters. Nil means Default.
	Metrics *Metrics
	// Seed makes the jitter reproducible. Zero derives a seed from the
	// client id, so distinct callers jitter differently but a rerun of
	// the same world jitters identically.
	Seed int64
	// Resolve, when non-nil, re-resolves the destination: it is consulted
	// when the circuit breaker trips for the cached address and before
	// every retry, so a session that was talking to a failed-over primary
	// follows the re-bound nameserver entry instead of caching the first
	// lookup forever. Returning ok=false keeps the previous destination.
	Resolve func() (to xrep.PortName, ok bool)
}

// Caller is the client half of the at-most-once layer: one logical
// session, issuing strictly sequential calls, each stamped with the
// session's (client, seq) request id.
//
// The sequential discipline is what makes the ack watermark sound: when
// call seq = n returns (successfully or not), every earlier seq is either
// answered or permanently abandoned, so the server may forget everything
// at or below the highest answered seq.
type Caller struct {
	pr     *guardian.Process
	reply  *guardian.Port
	client string
	opts   CallerOptions

	mu     sync.Mutex
	inCall bool
	seq    int64
	acked  int64
	rng    *rand.Rand
}

// NewCaller builds an at-most-once session for the given process. The
// client id is derived from the process's guardian and a fresh reply port,
// so every Caller is a distinct dedup session even on a shared guardian.
func NewCaller(pr *guardian.Process, opts CallerOptions) (*Caller, error) {
	if opts.Timeout <= 0 {
		opts.Timeout = 100 * time.Millisecond
	}
	if opts.ReplyCapacity <= 0 {
		opts.ReplyCapacity = 16
	}
	if opts.Backoff.Cap <= 0 {
		// World-wide tuning, not a package constant: DST shrinks it.
		opts.Backoff.Cap = pr.Guardian().Node().World().Tuning().BackoffCap
	}
	reply, err := pr.Guardian().NewPort(ReplyType, opts.ReplyCapacity)
	if err != nil {
		return nil, err
	}
	name := reply.Name()
	client := fmt.Sprintf("%s/%d/%d", name.Node, name.Guardian, name.Port)
	seed := opts.Seed
	if seed == 0 {
		h := fnv.New64a()
		_, _ = h.Write([]byte(client))
		seed = int64(h.Sum64())
	}
	return &Caller{
		pr:     pr,
		reply:  reply,
		client: client,
		opts:   opts,
		rng:    rand.New(rand.NewSource(seed)),
	}, nil
}

// Client returns the caller's session id.
func (c *Caller) Client() string { return c.client }

// Close removes the caller's reply port; the session id is retired.
func (c *Caller) Close() { c.pr.Guardian().RemovePort(c.reply) }

// Reply is a successful call's outcome: the application command and its
// decoded arguments.
type Reply struct {
	Command string
	Args    xrep.Seq
}

// Str returns reply argument i as a string; it panics on a mismatch,
// mirroring guardian.Message.
func (r *Reply) Str(i int) string {
	s, ok := r.Args[i].(xrep.Str)
	if !ok {
		panic(fmt.Sprintf("amo: reply %s arg %d is not a string", r.Command, i))
	}
	return string(s)
}

// Int returns reply argument i as an integer; it panics on a mismatch.
func (r *Reply) Int(i int) int64 {
	n, ok := r.Args[i].(xrep.Int)
	if !ok {
		panic(fmt.Sprintf("amo: reply %s arg %d is not an int", r.Command, i))
	}
	return int64(n)
}

// CallError reports an exhausted at-most-once call with per-attempt
// timing. It unwraps to ErrTimeout.
type CallError struct {
	Client   string
	Seq      int64
	Attempts int
	Waited   []time.Duration
	Backoff  time.Duration // total backoff slept
}

// Error implements error.
func (e *CallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v: request %s#%d, %d attempts, backoff %v (waited",
		ErrTimeout, e.Client, e.Seq, e.Attempts, e.Backoff.Round(time.Millisecond))
	for _, w := range e.Waited {
		fmt.Fprintf(&b, " %v", w.Round(time.Millisecond))
	}
	b.WriteString(")")
	return b.String()
}

// Unwrap lets errors.Is(err, ErrTimeout) succeed.
func (e *CallError) Unwrap() error { return ErrTimeout }

// Call performs one at-most-once request: the application command and
// arguments are wrapped in an envelope stamped with the session's next
// request id and re-sent — with backoff — until a reply echoing that id
// arrives or the retry budget is exhausted. Duplicated and stale replies
// are discarded by the seq echo.
//
// Call is strictly sequential per Caller; a concurrent second call
// returns ErrBusy rather than silently corrupting the session.
func (c *Caller) Call(to xrep.PortName, command string, args ...any) (*Reply, error) {
	encoded, err := xrep.EncodeAll(args...)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if c.inCall {
		c.mu.Unlock()
		return nil, ErrBusy
	}
	c.inCall = true
	c.seq++
	seq, ack := c.seq, c.acked
	c.mu.Unlock()
	defer func() {
		c.mu.Lock()
		c.inCall = false
		c.mu.Unlock()
	}()

	m := orDefault(c.opts.Metrics)
	m.Calls.Inc()
	c.drainStale()

	clock := c.pr.Guardian().Node().World().Clock()
	attempts := c.opts.Retries + 1
	waited := make([]time.Duration, 0, attempts)
	var backoffTotal time.Duration
	redirects := 0
	followingMove := false
attempt:
	for i := 0; i < attempts; i++ {
		if i > 0 && c.opts.Resolve != nil && !followingMove {
			// A retry means the cached address did not answer; ask for a
			// fresh binding before burning another attempt on it.
			if fresh, ok := c.opts.Resolve(); ok {
				to = fresh
			}
		}
		// A moved redirect names a port fresher than anything the resolver
		// can know (the old owner told us mid-flip); it wins for exactly
		// one send, then normal re-resolution resumes.
		followingMove = false
		if c.opts.Health != nil && c.opts.Health.Down(to.Node) {
			// Circuit open for the cached address: re-resolve once — the
			// binding may have moved to a live node — and only fail fast
			// if it still points into the open circuit.
			moved := false
			if c.opts.Resolve != nil {
				if fresh, ok := c.opts.Resolve(); ok && fresh.Node != to.Node {
					to, moved = fresh, true
				}
			}
			if !moved {
				m.CircuitOpen.Inc()
				return nil, fmt.Errorf("%w: %s", ErrCircuitOpen, to.Node)
			}
		}
		if i > 0 {
			m.Retries.Inc()
		}
		if err := c.pr.SendReplyTo(to, c.reply.Name(), ReqCommand,
			c.client, seq, ack, command, encoded); err != nil {
			return nil, err
		}
		deadline := clock.Now().Add(c.opts.Timeout)
		for {
			remain := deadline.Sub(clock.Now())
			if remain <= 0 {
				break
			}
			rm, st := c.pr.Receive(remain, c.reply)
			switch st {
			case guardian.RecvOK:
				if rm.IsFailure() {
					if c.opts.Resolve != nil && i < attempts-1 {
						// The cached address reported a dead guardian or
						// port; treat it like a timeout so the next
						// attempt re-resolves the moved binding.
						break
					}
					return nil, fmt.Errorf("%w: %s", ErrFailed, rm.FailureText())
				}
				if rm.Command != ReplyCommand || rm.Int(0) != seq {
					continue // stale or duplicated reply: discard, keep waiting
				}
				if rm.Str(1) == OutcomeMoved {
					if redirects < MaxRedirects {
						// The key's range migrated: the reply names the new
						// owner. Re-send the SAME request id there — never a
						// fresh one, or an op the old owner executed before
						// the flip (its dedup entry travelled with the range)
						// would apply twice. The resend does not consume a
						// retry: a redirect is progress, not a failure.
						if fresh, ok := movedTarget(rm.Args[2]); ok {
							redirects++
							m.Redirects.Inc()
							to = fresh
							followingMove = true
							i--
							continue attempt
						}
					}
					// Redirect budget exhausted (or a malformed target): a
					// moved reply is routing state, never an answer — discard
					// it and fall into the normal retry with backoff, which
					// re-resolves against the (by then settled) ring instead
					// of leaking an amo_* routing outcome to the application.
					break
				}
				c.mu.Lock()
				if seq > c.acked {
					c.acked = seq
				}
				c.mu.Unlock()
				return &Reply{Command: rm.Str(1), Args: rm.Args[2].(xrep.Seq)}, nil
			case guardian.RecvKilled:
				return nil, guardian.ErrKilled
			case guardian.RecvTimeout:
				// deadline passed; fall out to retry
			}
			break
		}
		waited = append(waited, c.opts.Timeout)
		if i < attempts-1 {
			c.mu.Lock()
			d := c.opts.Backoff.delay(i, c.rng)
			c.mu.Unlock()
			if d > 0 {
				m.RetryBackoffTotal.Add(int64(d))
				backoffTotal += d
				if !c.pr.Pause(d) {
					return nil, guardian.ErrKilled
				}
			}
		}
	}
	return nil, &CallError{Client: c.client, Seq: seq, Attempts: attempts,
		Waited: waited, Backoff: backoffTotal}
}

// movedTarget extracts the new owner's port from an OutcomeMoved reply's
// arguments (owner port, ring epoch).
func movedTarget(v xrep.Value) (xrep.PortName, bool) {
	args, ok := v.(xrep.Seq)
	if !ok || len(args) < 1 {
		return xrep.PortName{}, false
	}
	p, ok := args[0].(xrep.PortName)
	if !ok || p.IsZero() {
		return xrep.PortName{}, false
	}
	return p, true
}

// drainStale clears leftover replies from earlier calls (duplicates of
// already-accepted replies, late replies to abandoned attempts) so the
// bounded reply port never fills with garbage.
func (c *Caller) drainStale() {
	for {
		if _, st := c.pr.Receive(0, c.reply); st != guardian.RecvOK {
			return
		}
	}
}
