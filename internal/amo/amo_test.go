package amo_test

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/amo"
	"repro/internal/guardian"
	"repro/internal/netsim"
	"repro/internal/watchdog"
	"repro/internal/xrep"
)

const testTimeout = 5 * time.Second

// fixture is a two-node world: an "amoserver" guardian on node srv running
// an adding handler behind a Dedup filter, and a driver process on node
// cli. The handler's execution count is the ground truth every
// at-most-once assertion checks against.
type fixture struct {
	w       *guardian.World
	srvPort xrep.PortName
	g       *guardian.Guardian
	proc    *guardian.Process
	met     *amo.Metrics

	execs atomic.Int64
	total atomic.Int64
	dch   chan *amo.Dedup
}

func deploy(t *testing.T, net netsim.Config, persist bool) *fixture {
	t.Helper()
	f := &fixture{met: &amo.Metrics{}, dch: make(chan *amo.Dedup, 1)}
	f.w = guardian.NewWorld(guardian.Config{Net: net})
	serve := func(ctx *guardian.Ctx) {
		opts := amo.DedupOptions{Metrics: f.met}
		if persist {
			opts.Log = ctx.G.Log()
		}
		d := amo.NewDedup(opts)
		if ctx.Recovering {
			if _, err := d.Recover(); err != nil {
				panic(err)
			}
		}
		select {
		case f.dch <- d:
		default:
		}
		d.Serve(ctx.Proc, func(pr *guardian.Process, req *amo.Request) (string, xrep.Seq) {
			f.execs.Add(1)
			switch req.Command {
			case "add":
				v := f.total.Add(int64(req.Args[0].(xrep.Int)))
				return "sum", xrep.Seq{xrep.Int(v)}
			}
			return "err", xrep.Seq{xrep.Str("unknown " + req.Command)}
		}, ctx.Ports[0])
	}
	f.w.MustRegister(&guardian.GuardianDef{
		TypeName: "amoserver",
		Provides: []*guardian.PortType{amo.ReqType},
		Init:     serve,
		Recover:  serve,
	})
	srv := f.w.MustAddNode("srv")
	created, err := srv.Bootstrap("amoserver")
	if err != nil {
		t.Fatal(err)
	}
	f.srvPort = created.Ports[0]
	cli := f.w.MustAddNode("cli")
	f.g, f.proc, err = cli.NewDriver("op")
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// dedup returns the server's current Dedup instance (a fresh one after
// each recovery).
func (f *fixture) dedup(t *testing.T) *amo.Dedup {
	t.Helper()
	select {
	case d := <-f.dch:
		return d
	case <-time.After(testTimeout):
		t.Fatal("server never published its dedup filter")
		return nil
	}
}

func (f *fixture) caller(t *testing.T, opts amo.CallerOptions) *amo.Caller {
	t.Helper()
	if opts.Metrics == nil {
		opts.Metrics = f.met
	}
	c, err := amo.NewCaller(f.proc, opts)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCallRoundTrip(t *testing.T) {
	f := deploy(t, netsim.Config{}, false)
	c := f.caller(t, amo.CallerOptions{Timeout: time.Second})
	for i, want := range []int64{5, 12} {
		r, err := c.Call(f.srvPort, "add", int64([]int64{5, 7}[i]))
		if err != nil {
			t.Fatal(err)
		}
		if r.Command != "sum" || r.Int(0) != want {
			t.Fatalf("call %d: %s %v", i, r.Command, r.Args)
		}
	}
	if n := f.execs.Load(); n != 2 {
		t.Fatalf("handler executed %d times, want 2", n)
	}
	if n := f.met.Calls.Load(); n != 2 {
		t.Fatalf("Calls = %d, want 2", n)
	}
}

// TestAtMostOnceUnderLossAndDup is the layer's core claim: under heavy
// loss AND duplication every logical call executes exactly once.
func TestAtMostOnceUnderLossAndDup(t *testing.T) {
	f := deploy(t, netsim.Config{
		Seed: 42, LossRate: 0.25, DupRate: 0.25,
		BaseLatency: 500 * time.Microsecond,
	}, false)
	c := f.caller(t, amo.CallerOptions{
		Timeout: 25 * time.Millisecond,
		Retries: 30,
		Backoff: amo.BackoffPolicy{Base: 2 * time.Millisecond, Jitter: 0.5},
	})
	const calls = 40
	for i := 0; i < calls; i++ {
		r, err := c.Call(f.srvPort, "add", int64(1))
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if r.Command != "sum" {
			t.Fatalf("call %d: %s %v", i, r.Command, r.Args)
		}
	}
	if n := f.execs.Load(); n != calls {
		t.Fatalf("handler executed %d times for %d logical calls", n, calls)
	}
	if n := f.total.Load(); n != calls {
		t.Fatalf("total = %d, want %d", n, calls)
	}
	// A 25%-loss 25%-dup network that caused zero retries and zero dedups
	// over 40+ messages means fault injection is broken.
	if f.met.Retries.Load()+f.met.CallsDeduped.Load() == 0 {
		t.Fatal("no retries and no dedups under 25% loss + 25% dup")
	}
}

// TestReplayAnsweredFromCache sends the same request id twice, raw: the
// second delivery must yield the cached reply without re-execution.
func TestReplayAnsweredFromCache(t *testing.T) {
	f := deploy(t, netsim.Config{}, false)
	reply := f.g.MustNewPort(amo.ReplyType, 16)
	for i := 0; i < 2; i++ {
		if err := f.proc.SendReplyTo(f.srvPort, reply.Name(), amo.ReqCommand,
			"c1", int64(1), int64(0), "add", xrep.Seq{xrep.Int(5)}); err != nil {
			t.Fatal(err)
		}
		m, st := f.proc.Receive(testTimeout, reply)
		if st != guardian.RecvOK {
			t.Fatalf("delivery %d: %v", i, st)
		}
		if m.Int(0) != 1 || m.Str(1) != "sum" || m.Args[2].(xrep.Seq)[0].(xrep.Int) != 5 {
			t.Fatalf("delivery %d: %v %v", i, m.Command, m.Args)
		}
	}
	if n := f.execs.Load(); n != 1 {
		t.Fatalf("handler executed %d times, want 1", n)
	}
	if n := f.met.RepliesReplayed.Load(); n != 1 {
		t.Fatalf("RepliesReplayed = %d, want 1", n)
	}
}

// TestAckWatermarkPrunes: a sequential caller's acks keep the server's
// cached-reply table at one entry per client.
func TestAckWatermarkPrunes(t *testing.T) {
	f := deploy(t, netsim.Config{}, false)
	d := f.dedup(t)
	c := f.caller(t, amo.CallerOptions{Timeout: time.Second})
	for i := 0; i < 5; i++ {
		if _, err := c.Call(f.srvPort, "add", int64(1)); err != nil {
			t.Fatal(err)
		}
	}
	// Call n carries ack n-1, so after 5 calls exactly the 5th reply
	// remains cached.
	if n := d.Cached(c.Client()); n != 1 {
		t.Fatalf("cached replies = %d, want 1", n)
	}
}

// TestBackoffSpacesRetries: a black-holed link must cost
// timeout+backoff per attempt, and the error must carry the accounting.
func TestBackoffSpacesRetries(t *testing.T) {
	f := deploy(t, netsim.Config{}, false)
	f.w.Net().SetLink("cli", "srv", &netsim.Config{LossRate: 1.0})
	c := f.caller(t, amo.CallerOptions{
		Timeout: 10 * time.Millisecond,
		Retries: 2,
		Backoff: amo.BackoffPolicy{Base: 20 * time.Millisecond},
	})
	start := time.Now()
	_, err := c.Call(f.srvPort, "add", int64(1))
	elapsed := time.Since(start)
	if !errors.Is(err, amo.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	var ce *amo.CallError
	if !errors.As(err, &ce) {
		t.Fatalf("err %T is not *CallError", err)
	}
	if ce.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3", ce.Attempts)
	}
	// 3 × 10ms waits + 20ms + 40ms backoffs ⇒ ≥ 90ms.
	if want := 85 * time.Millisecond; elapsed < want {
		t.Fatalf("elapsed %v, want ≥ %v", elapsed, want)
	}
	if ce.Backoff != 60*time.Millisecond {
		t.Fatalf("backoff total = %v, want 60ms", ce.Backoff)
	}
	if n := f.met.RetryBackoffTotal.Load(); n != int64(60*time.Millisecond) {
		t.Fatalf("RetryBackoffTotal = %d", n)
	}
}

// TestBackoffJitterStaysInBounds: with equal jitter each delay lands in
// [d/2, d], so two backoffs of nominal 20ms and 40ms total 30–60ms.
func TestBackoffJitterStaysInBounds(t *testing.T) {
	f := deploy(t, netsim.Config{}, false)
	f.w.Net().SetLink("cli", "srv", &netsim.Config{LossRate: 1.0})
	c := f.caller(t, amo.CallerOptions{
		Timeout: 5 * time.Millisecond,
		Retries: 2,
		Backoff: amo.BackoffPolicy{Base: 20 * time.Millisecond, Jitter: 0.5},
		Seed:    7,
	})
	_, err := c.Call(f.srvPort, "add", int64(1))
	var ce *amo.CallError
	if !errors.As(err, &ce) {
		t.Fatalf("err = %v", err)
	}
	if ce.Backoff < 30*time.Millisecond || ce.Backoff > 60*time.Millisecond {
		t.Fatalf("jittered backoff total %v outside [30ms, 60ms]", ce.Backoff)
	}
}

func TestCircuitOpenFailsFast(t *testing.T) {
	f := deploy(t, netsim.Config{}, false)
	h, err := amo.NewHealth(f.g)
	if err != nil {
		t.Fatal(err)
	}
	c := f.caller(t, amo.CallerOptions{
		Timeout: time.Second,
		Retries: 5,
		Health:  h,
	})
	h.MarkDown("srv")
	start := time.Now()
	_, err = c.Call(f.srvPort, "add", int64(1))
	if !errors.Is(err, amo.ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}
	if elapsed := time.Since(start); elapsed > 100*time.Millisecond {
		t.Fatalf("circuit-open call took %v, not fast", elapsed)
	}
	if n := f.met.CircuitOpen.Load(); n != 1 {
		t.Fatalf("CircuitOpen = %d, want 1", n)
	}
	h.MarkUp("srv")
	if _, err := c.Call(f.srvPort, "add", int64(1)); err != nil {
		t.Fatalf("call after MarkUp: %v", err)
	}
}

// TestHealthFollowsWatchdog wires the breaker to a real watchdog: crash
// the server node, the breaker opens; restart it, the breaker closes.
func TestHealthFollowsWatchdog(t *testing.T) {
	f := deploy(t, netsim.Config{}, false)
	f.w.MustRegister(watchdog.Def())
	mon := f.w.MustAddNode("monitor")
	wd, err := mon.Bootstrap(watchdog.DefName, int64(20), int64(2))
	if err != nil {
		t.Fatal(err)
	}
	h, err := amo.NewHealth(f.g)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.Subscribe(f.proc, wd.Ports[0], time.Second); err != nil {
		t.Fatal(err)
	}
	wdReply := f.g.MustNewPort(watchdog.ClientReplyType, 4)
	if err := f.proc.SendReplyTo(wd.Ports[0], wdReply.Name(), "watch", "srv"); err != nil {
		t.Fatal(err)
	}
	if m, st := f.proc.Receive(testTimeout, wdReply); st != guardian.RecvOK || m.Command != "watching" {
		t.Fatalf("watch: %v", st)
	}

	waitDown := func(want bool) {
		deadline := time.Now().Add(testTimeout)
		for time.Now().Before(deadline) {
			if h.Down("srv") == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("health never reported down=%v for srv", want)
	}

	c := f.caller(t, amo.CallerOptions{Timeout: time.Second, Health: h})
	if _, err := c.Call(f.srvPort, "add", int64(1)); err != nil {
		t.Fatal(err)
	}

	srvNode, _ := f.w.Node("srv")
	srvNode.Crash()
	waitDown(true)
	if _, err := c.Call(f.srvPort, "add", int64(1)); !errors.Is(err, amo.ErrCircuitOpen) {
		t.Fatalf("err = %v, want ErrCircuitOpen", err)
	}

	if err := srvNode.Restart(); err != nil {
		t.Fatal(err)
	}
	waitDown(false)
	if _, err := c.Call(f.srvPort, "add", int64(1)); err != nil {
		t.Fatalf("call after recovery: %v", err)
	}
}

// TestDedupSurvivesCrash: with a stable log, a request executed before the
// crash is answered from the recovered cache afterwards — never
// re-executed.
func TestDedupSurvivesCrash(t *testing.T) {
	f := deploy(t, netsim.Config{}, true)
	f.dedup(t) // drain the pre-crash instance
	reply := f.g.MustNewPort(amo.ReplyType, 16)
	send := func() *guardian.Message {
		t.Helper()
		if err := f.proc.SendReplyTo(f.srvPort, reply.Name(), amo.ReqCommand,
			"c9", int64(1), int64(0), "add", xrep.Seq{xrep.Int(5)}); err != nil {
			t.Fatal(err)
		}
		m, st := f.proc.Receive(testTimeout, reply)
		if st != guardian.RecvOK {
			t.Fatalf("receive: %v", st)
		}
		return m
	}
	if m := send(); m.Str(1) != "sum" || m.Args[2].(xrep.Seq)[0].(xrep.Int) != 5 {
		t.Fatalf("first reply: %v", m.Args)
	}

	srvNode, _ := f.w.Node("srv")
	srvNode.Crash()
	if err := srvNode.Restart(); err != nil {
		t.Fatal(err)
	}
	f.dedup(t) // recovery published a fresh instance

	if m := send(); m.Str(1) != "sum" || m.Args[2].(xrep.Seq)[0].(xrep.Int) != 5 {
		t.Fatalf("replayed reply: %v", m.Args)
	}
	if n := f.execs.Load(); n != 1 {
		t.Fatalf("handler executed %d times across the crash, want 1", n)
	}
	if n := f.met.RepliesReplayed.Load(); n < 1 {
		t.Fatalf("RepliesReplayed = %d, want ≥ 1", n)
	}
}

// TestCallerSequential: a second in-flight call on one Caller is refused.
func TestCallerSequential(t *testing.T) {
	f := deploy(t, netsim.Config{}, false)
	f.w.Net().SetLink("cli", "srv", &netsim.Config{LossRate: 1.0})
	c := f.caller(t, amo.CallerOptions{Timeout: 300 * time.Millisecond})
	done := make(chan error, 1)
	go func() {
		_, err := c.Call(f.srvPort, "add", int64(1))
		done <- err
	}()
	time.Sleep(30 * time.Millisecond)
	if _, err := c.Call(f.srvPort, "add", int64(1)); !errors.Is(err, amo.ErrBusy) {
		t.Fatalf("concurrent call: %v, want ErrBusy", err)
	}
	if err := <-done; !errors.Is(err, amo.ErrTimeout) {
		t.Fatalf("first call: %v", err)
	}
}

// TestMovedRedirectExhaustion pins the redirect budget's failure edge
// with a server that answers every request by redirecting to itself.
// Once the budget is spent the Caller must fall back to ordinary retries
// and surface ErrTimeout — OutcomeMoved is routing vocabulary, and must
// never reach the application as a final Reply.
func TestMovedRedirectExhaustion(t *testing.T) {
	w := guardian.NewWorld(guardian.Config{})
	defer func() { _ = w.Close() }()
	w.MustRegister(&guardian.GuardianDef{
		TypeName: "movedloop",
		Provides: []*guardian.PortType{amo.ReqType},
		Init: func(ctx *guardian.Ctx) {
			self := ctx.Ports[0].Name()
			//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
			guardian.NewReceiver(ctx.Ports[0]).
				When(amo.ReqCommand, func(pr *guardian.Process, m *guardian.Message) {
					amo.SendMoved(pr, m, self, 99)
				}).
				Loop(ctx.Proc, nil)
		},
	})
	srv := w.MustAddNode("srv")
	created, err := srv.Bootstrap("movedloop")
	if err != nil {
		t.Fatal(err)
	}
	cli := w.MustAddNode("cli")
	_, proc, err := cli.NewDriver("op")
	if err != nil {
		t.Fatal(err)
	}
	met := &amo.Metrics{}
	c, err := amo.NewCaller(proc, amo.CallerOptions{
		Timeout: 50 * time.Millisecond,
		Retries: 2,
		Metrics: met,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	rep, err := c.Call(created.Ports[0], "add", int64(1))
	if err == nil {
		t.Fatalf("redirect loop returned a final reply %q %v; want an error", rep.Command, rep.Args)
	}
	if !errors.Is(err, amo.ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if n := met.Redirects.Load(); n < amo.MaxRedirects {
		t.Fatalf("Redirects = %d, want the full budget of %d burnt", n, amo.MaxRedirects)
	}
}
