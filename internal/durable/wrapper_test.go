package durable

import (
	"fmt"
	"testing"

	"repro/internal/stable"
	"repro/internal/vtime"
)

func newTestDisk() *stable.Disk {
	return stable.NewDisk(vtime.NewReal(), stable.DiskConfig{})
}

// faultAt walks the seeded fate sequence until each fault kind has
// fired at least once, so the assertions below are deterministic
// without hard-coding rng draws.
func TestWrapperInjectsEveryFaultKind(t *testing.T) {
	w := Wrap(NewSim(newTestDisk()), WrapperConfig{
		Seed:            7,
		SyncFailRate:    0.2,
		ShortWriteRate:  0.2,
		CorruptTailRate: 0.2,
	})
	l, err := w.OpenLog("log")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		l.AppendSync([]byte(fmt.Sprintf("op-%d", i)))
	}
	st := w.InjectedStats()
	if st.Syncs != 200 {
		t.Fatalf("Syncs = %d", st.Syncs)
	}
	if st.SyncsFailed == 0 || st.ShortWrites == 0 || st.CorruptedTails == 0 {
		t.Fatalf("not every fault kind fired: %+v", st)
	}
	// Recovery sees exactly the clean commits: total minus everything
	// any fault touched (single-record batches: each fault drops its
	// whole batch).
	_, recs, err := l.Recover()
	if err != ErrNoCheckpoint {
		t.Fatalf("Recover err = %v", err)
	}
	want := 200 - int(st.SyncsFailed+st.ShortWrites+st.CorruptedTails)
	if len(recs) != want {
		t.Fatalf("recovered %d records, want %d", len(recs), want)
	}
	rep, ok := w.Report("log")
	if !ok || !rep.TornTail || rep.Records != want {
		t.Fatalf("report = %+v ok=%v, want torn-tail report with %d live records", rep, ok, want)
	}
}

func TestWrapperDeterministicAcrossRuns(t *testing.T) {
	run := func() WrapperStats {
		w := Wrap(NewSim(newTestDisk()), WrapperConfig{
			Seed:            42,
			SyncFailRate:    0.3,
			ShortWriteRate:  0.1,
			CorruptTailRate: 0.1,
		})
		l, _ := w.OpenLog("log")
		for i := 0; i < 64; i++ {
			l.AppendSync([]byte("op"))
		}
		return w.InjectedStats()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("same seed, different fates: %+v vs %+v", a, b)
	}
}

func TestWrapperShortWriteDropsBatchWhole(t *testing.T) {
	// A short write tears the batch's frame; recovery must reject the
	// batch WHOLE — the surviving prefix must not replay alone, or a
	// transfer's withdraw leg could outlive its deposit leg.
	var fired []string
	w := Wrap(NewSim(newTestDisk()), WrapperConfig{
		Seed:           1,
		ShortWriteRate: 1.0, // every sync tears
		OnFault: func(log, fault string) {
			fired = append(fired, fault)
		},
	})
	l, _ := w.OpenLog("log")
	l.Append([]byte("withdraw"))
	l.Append([]byte("deposit"))
	l.Sync()
	if len(fired) != 1 || fired[0] != FaultShortWrite {
		t.Fatalf("OnFault calls = %v", fired)
	}
	_, recs, _ := l.Recover()
	if len(recs) != 0 {
		t.Fatalf("a torn batch leaked %d records into recovery: %v", len(recs), recs)
	}
	st := w.InjectedStats()
	if st.RecordsDropped != 2 {
		t.Fatalf("RecordsDropped = %d, want 2", st.RecordsDropped)
	}
}

func TestWrapperCleanPathUnchanged(t *testing.T) {
	// Zero rates: the wrapper is a transparent shim.
	w := Wrap(NewSim(newTestDisk()), WrapperConfig{Seed: 1})
	l, _ := w.OpenLog("log")
	for i := 0; i < 5; i++ {
		l.AppendSync([]byte(fmt.Sprintf("op-%d", i)))
	}
	l.Checkpoint([]byte("cp"), 3)
	cp, recs, err := l.Recover()
	if err != nil || string(cp) != "cp" {
		t.Fatalf("cp = %q, %v", cp, err)
	}
	if len(recs) != 2 || recs[0].Seq != 4 {
		t.Fatalf("records = %v", recs)
	}
	if got := l.LastDurableSeq(); got != 5 {
		t.Fatalf("LastDurableSeq = %d", got)
	}
	if w.Persistent() {
		t.Fatal("Persistent must follow the inner store")
	}
}

func TestWrapperCrashDropsPending(t *testing.T) {
	w := Wrap(NewSim(newTestDisk()), WrapperConfig{Seed: 1})
	l, _ := w.OpenLog("log")
	l.AppendSync([]byte("durable"))
	l.Append([]byte("pending"))
	if got := l.VolatileLen(); got != 1 {
		t.Fatalf("VolatileLen = %d", got)
	}
	w.Crash()
	if got := l.VolatileLen(); got != 0 {
		t.Fatalf("pending survived crash: %d", got)
	}
	_, recs, _ := l.Recover()
	if len(recs) != 1 || string(recs[0].Data) != "durable" {
		t.Fatalf("records = %v", recs)
	}
}

func TestWrapperCheckpointForgetsFoldedTaint(t *testing.T) {
	w := Wrap(NewSim(newTestDisk()), WrapperConfig{Seed: 3, CorruptTailRate: 1.0})
	l, _ := w.OpenLog("log")
	l.AppendSync([]byte("damaged")) // committed then tainted
	// Checkpoint over the tainted record; the torn-tail report clears.
	l.Checkpoint([]byte("cp"), l.LastDurableSeq())
	rep, _ := w.Report("log")
	if rep.TornTail {
		t.Fatalf("taint survived a covering checkpoint: %+v", rep)
	}
	cp, recs, err := l.Recover()
	if err != nil || string(cp) != "cp" || len(recs) != 0 {
		t.Fatalf("Recover = %q %v %v", cp, recs, err)
	}
}
