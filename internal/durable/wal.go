package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// WAL is the real backend: one directory per node holding one
// subdirectory per log, each a sequence of segment files of
// CRC-checksummed batch frames plus an atomically-replaced checkpoint
// file. It provides exactly the semantics the simulated disk promises —
// Append is volatile, Sync is the durability point, everything one Sync
// forces becomes durable atomically — against storage that survives
// kill -9 of the hosting process.
//
// On-disk format, little-endian throughout:
//
//	segment file  wal-<first seq, %016x>.seg:
//	    batch frame*
//	batch frame:  u32 payload length | u32 crc32c(payload) | payload
//	payload:      ( u32 data length | u64 seq | data )*
//	checkpoint:   u64 watermark | u32 crc32c(state) | state
//
// The batch — all records forced by one Sync — is the unit of both
// checksumming and atomicity: recovery either replays a batch whole or
// (when the final frame is short or fails its CRC — a torn write)
// truncates it away whole. A Sync that covered an operation record and
// its at-most-once dedup record therefore never resurrects one without
// the other. A bad frame anywhere but the tail of the final segment is
// not a legal crash residue and fails recovery with ErrCorrupt instead
// of being silently skipped.
//
// Sync uses group commit: concurrent callers coalesce behind one
// leader's fsync, so the fsync rate is decoupled from the operation
// rate (experiment E13 measures the difference against the naive
// one-fsync-per-op discipline, selectable with NoGroupCommit).
//
// The WAL is fail-stop: any I/O error on the durability path wedges the
// log and panics, because acknowledging effects that can no longer be
// made permanent is the one unforgivable storage sin (§2.2).
type WAL struct {
	dir string
	cfg WALConfig

	syncs atomic.Int64

	mu     sync.Mutex
	logs   map[string]*walLog
	closed bool
}

// WALConfig tunes a WAL.
type WALConfig struct {
	// SegmentSize is the size at which the active segment is sealed and
	// a new one started. Zero means 1 MiB.
	SegmentSize int
	// NoGroupCommit disables commit coalescing: every Sync call performs
	// its own fsync, serialized — the naive log-then-ack discipline E13
	// uses as its control arm.
	NoGroupCommit bool
	// Hooks, when set, are called at crash-window points so tests can
	// kill the process (or snapshot the directory) at exactly the
	// instants a real crash is most interesting. Hooks must not call
	// back into the log.
	Hooks WALHooks
}

// WALHooks are the crash-point injection hooks.
type WALHooks struct {
	// BeforeSync fires after a Sync batch is claimed but before any of
	// it reaches the disk: a crash here loses the whole batch.
	BeforeSync func(log string)
	// AfterSync fires once the batch is durable but before Sync
	// returns: a crash here leaves a durable-but-unacked tail.
	AfterSync func(log string)
	// MidCheckpoint fires between checkpoint install (the atomic rename)
	// and log compaction: a crash here leaves records at or below the
	// new watermark still on disk.
	MidCheckpoint func(log string)
}

const (
	defaultSegmentSize = 1 << 20
	maxFramePayload    = 1 << 30
	batchHeaderSize    = 8
	recordHeaderSize   = 12
	checkpointName     = "checkpoint"
	checkpointTmpName  = "checkpoint.tmp"
	segPrefix          = "wal-"
	segSuffix          = ".seg"
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

var errWALClosed = errors.New("durable: wal closed")

// OpenWAL opens (creating if needed) a WAL rooted at dir.
func OpenWAL(dir string, cfg WALConfig) (*WAL, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("durable: open wal: %w", err)
	}
	if cfg.SegmentSize <= 0 {
		cfg.SegmentSize = defaultSegmentSize
	}
	return &WAL{dir: dir, cfg: cfg, logs: make(map[string]*walLog)}, nil
}

// Dir returns the WAL's root directory.
func (w *WAL) Dir() string { return w.dir }

// OpenLog implements Store. Opening an existing log scans and verifies
// every segment: a torn tail is truncated and reported, interior
// damage fails with ErrCorrupt.
func (w *WAL) OpenLog(name string) (Log, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.closed {
		return nil, errWALClosed
	}
	if l, ok := w.logs[name]; ok {
		return l, nil
	}
	l, err := openWalLog(w, name)
	if err != nil {
		return nil, err
	}
	w.logs[name] = l
	return l, nil
}

// LogNames implements Store, listing every log directory on disk —
// including logs written by a previous incarnation of the process and
// not yet opened by this one.
func (w *WAL) LogNames() []string {
	entries, err := os.ReadDir(w.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if e.IsDir() {
			names = append(names, unescapeLogName(e.Name()))
		}
	}
	sort.Strings(names)
	return names
}

// Persistent implements Store: this is the backend that outlives the
// process, so the guardian runtime keeps its catalog here.
func (w *WAL) Persistent() bool { return true }

// Crash implements Store for in-process simulated crashes (dst runs a
// WAL-backed world in one process): volatile tails are dropped, exactly
// as process death would drop them.
func (w *WAL) Crash() {
	w.mu.Lock()
	logs := make([]*walLog, 0, len(w.logs))
	for _, l := range w.logs {
		logs = append(logs, l)
	}
	w.mu.Unlock()
	for _, l := range logs {
		l.mu.Lock()
		l.volatile = nil
		l.nextSeq = l.durableSeq
		l.mu.Unlock()
	}
}

// SyncCount implements Store, counting actual fsync system calls — the
// quantity group commit exists to amortize.
func (w *WAL) SyncCount() int64 { return w.syncs.Load() }

// Close implements Store: file handles are released and the logs are
// wedged, so a straggling Sync fails stop instead of writing to a
// store the owner has relinquished.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	logs := make([]*walLog, 0, len(w.logs))
	for _, l := range w.logs {
		logs = append(logs, l)
	}
	w.mu.Unlock()
	var first error
	for _, l := range logs {
		l.mu.Lock()
		for l.syncing {
			l.cond.Wait()
		}
		if l.wedged == nil {
			l.wedged = errWALClosed
		}
		if l.active != nil {
			if err := l.active.Close(); err != nil && first == nil {
				first = err
			}
			l.active = nil
		}
		l.cond.Broadcast()
		l.mu.Unlock()
	}
	return first
}

// Report implements Reporter.
func (w *WAL) Report(name string) (RecoveryReport, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	l, ok := w.logs[name]
	if !ok {
		return RecoveryReport{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.report, true
}

// segment is one on-disk segment file.
type segment struct {
	path     string
	firstSeq uint64
	lastSeq  uint64
}

// walLog is one log within a WAL.
type walLog struct {
	wal  *WAL
	name string
	dir  string

	mu     sync.Mutex
	cond   *sync.Cond
	wedged error

	nextSeq    uint64
	durableSeq uint64
	volatile   []Record
	durable    []Record // mirror of on-disk records past the checkpoint
	checkpoint []byte
	cpAt       uint64
	hasCP      bool

	syncing    bool
	segs       []*segment
	active     *os.File
	activeSize int64

	report RecoveryReport
}

// failIfWedged panics if a previous I/O error wedged the log. A log
// wedged by Close is different: the owner shut the store down (process
// exit), so a straggling process's write is provably volatile and the
// operation becomes a no-op — reported by the return value — rather than
// a spurious crash. Called with mu held; on a panic mu is released.
func (l *walLog) failIfWedged() (closed bool) {
	if l.wedged == errWALClosed {
		return true
	}
	if l.wedged != nil {
		err := l.wedged
		l.mu.Unlock()
		panic(fmt.Errorf("durable: wal log %s: %w", l.name, err))
	}
	return false
}

// wedge records a durability-path failure and panics: fail-stop.
// Called with mu held; does not return.
func (l *walLog) wedge(err error) {
	l.wedged = err
	l.syncing = false
	l.cond.Broadcast()
	l.mu.Unlock()
	panic(fmt.Errorf("durable: wal log %s: %w", l.name, err))
}

func (l *walLog) fire(h func(string)) {
	if h != nil {
		h(l.name)
	}
}

// Append implements Log.
func (l *walLog) Append(data []byte) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextSeq++
	buf := make([]byte, len(data))
	copy(buf, data)
	l.volatile = append(l.volatile, Record{Seq: l.nextSeq, Data: buf})
	return l.nextSeq
}

// Sync implements Log with group commit: the first caller in becomes
// the leader, claims the entire volatile tail and writes it as one
// checksummed batch with one fsync; callers arriving during that write
// wait, and whichever wakes first with records still unflushed leads
// the next batch. A follower whose records were covered by the
// leader's fsync returns without touching the disk at all.
func (l *walLog) Sync() {
	l.mu.Lock()
	if l.failIfWedged() {
		l.mu.Unlock()
		return
	}
	if l.wal.cfg.NoGroupCommit {
		// Naive log-then-ack: serialized, one fsync per caller, no
		// sharing — the E13 control arm.
		for l.syncing {
			l.cond.Wait()
			if l.failIfWedged() {
				l.mu.Unlock()
				return
			}
		}
		batch := l.volatile
		l.volatile = nil
		l.flushAsLeader(batch) // unlocks
		return
	}
	target := l.nextSeq
	for l.durableSeq < target {
		if l.syncing {
			l.cond.Wait()
			if l.failIfWedged() {
				break
			}
			continue
		}
		if len(l.volatile) == 0 {
			// The records this caller appended were discarded by a
			// simulated crash between Append and Sync; nothing to force.
			break
		}
		batch := l.volatile
		l.volatile = nil
		l.flushAsLeader(batch) // unlocks
		l.mu.Lock()
		if l.failIfWedged() {
			break
		}
	}
	l.mu.Unlock()
}

// flushAsLeader writes one batch and fsyncs, entered with mu held and
// syncing false; it leaves with mu released. Exclusive access to the
// segment files is guaranteed by the syncing flag, not the mutex, so
// appenders are never blocked behind the disk.
func (l *walLog) flushAsLeader(batch []Record) {
	l.syncing = true
	l.mu.Unlock()
	l.fire(l.wal.cfg.Hooks.BeforeSync)
	err := l.writeAndSync(batch)
	l.mu.Lock()
	l.syncing = false
	if err != nil {
		l.wedge(err) // panics
	}
	if n := len(batch); n > 0 {
		l.durable = append(l.durable, batch...)
		l.durableSeq = batch[n-1].Seq
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	l.fire(l.wal.cfg.Hooks.AfterSync)
}

// writeAndSync appends batch as one frame to the active segment
// (rotating first if it is full) and forces it. Runs without mu but
// under the syncing flag's exclusion.
func (l *walLog) writeAndSync(batch []Record) error {
	if len(batch) > 0 {
		if l.active != nil && l.activeSize >= int64(l.wal.cfg.SegmentSize) {
			if err := l.sealActive(); err != nil {
				return err
			}
		}
		if l.active == nil {
			if err := l.newSegment(batch[0].Seq); err != nil {
				return err
			}
		}
		buf := encodeBatch(batch)
		if _, err := l.active.Write(buf); err != nil {
			return err
		}
		l.activeSize += int64(len(buf))
		l.segs[len(l.segs)-1].lastSeq = batch[len(batch)-1].Seq
	}
	if l.active == nil {
		return nil
	}
	if err := l.active.Sync(); err != nil {
		return err
	}
	l.wal.syncs.Add(1)
	return nil
}

// sealActive closes the active segment (its data is already synced
// batch by batch).
func (l *walLog) sealActive() error {
	err := l.active.Close()
	l.active = nil
	l.activeSize = 0
	return err
}

// newSegment creates the next segment file and makes its directory
// entry durable before any record is acknowledged out of it.
func (l *walLog) newSegment(firstSeq uint64) error {
	path := filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", segPrefix, firstSeq, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if err := fsyncDir(l.dir); err != nil {
		f.Close()
		return err
	}
	l.active = f
	l.activeSize = 0
	l.segs = append(l.segs, &segment{path: path, firstSeq: firstSeq, lastSeq: firstSeq})
	return nil
}

// AppendSync implements Log.
func (l *walLog) AppendSync(data []byte) uint64 {
	seq := l.Append(data)
	l.Sync()
	return seq
}

// Checkpoint implements Log: the new checkpoint is written to a
// temporary file, forced, and atomically renamed over the old one, so a
// crash at any instant leaves either the old checkpoint or the new —
// never a partial mix. Only after the install is the log compacted;
// recovery skips (and reports) any records at or below the watermark
// that a crash in that window left behind.
func (l *walLog) Checkpoint(state []byte, upTo uint64) {
	l.mu.Lock()
	if l.failIfWedged() {
		l.mu.Unlock()
		return
	}
	for l.syncing {
		l.cond.Wait()
		if l.failIfWedged() {
			l.mu.Unlock()
			return
		}
	}
	if err := l.installCheckpoint(state, upTo); err != nil {
		l.wedge(err) // panics
	}
	buf := make([]byte, len(state))
	copy(buf, state)
	l.checkpoint = buf
	l.cpAt = upTo
	l.hasCP = true
	kept := make([]Record, 0, len(l.durable))
	for _, r := range l.durable {
		if r.Seq > upTo {
			kept = append(kept, r)
		}
	}
	l.durable = kept

	l.fire(l.wal.cfg.Hooks.MidCheckpoint)

	if err := l.compact(upTo); err != nil {
		l.wedge(err) // panics
	}
	l.mu.Unlock()
}

// installCheckpoint performs the write-force-rename-force dance.
func (l *walLog) installCheckpoint(state []byte, upTo uint64) error {
	tmp := filepath.Join(l.dir, checkpointTmpName)
	buf := make([]byte, 12+len(state))
	binary.LittleEndian.PutUint64(buf[0:], upTo)
	binary.LittleEndian.PutUint32(buf[8:], crc32.Checksum(state, crcTable))
	copy(buf[12:], state)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, checkpointName)); err != nil {
		return err
	}
	if err := fsyncDir(l.dir); err != nil {
		return err
	}
	l.wal.syncs.Add(2)
	return nil
}

// compact deletes segments wholly covered by the checkpoint watermark.
func (l *walLog) compact(upTo uint64) error {
	var last *segment
	if n := len(l.segs); n > 0 {
		last = l.segs[n-1]
	}
	kept := l.segs[:0]
	for _, s := range l.segs {
		if s.lastSeq > upTo {
			kept = append(kept, s)
			continue
		}
		if s == last && l.active != nil {
			if err := l.sealActive(); err != nil {
				return err
			}
		}
		if err := os.Remove(s.path); err != nil {
			return err
		}
	}
	l.segs = kept
	return nil
}

// Recover implements Log, returning the in-memory mirror of the
// verified on-disk state — the same data a fresh process's open-time
// scan of the directory yields.
func (l *walLog) Recover() (checkpoint []byte, records []Record, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	records = make([]Record, len(l.durable))
	for i, r := range l.durable {
		data := make([]byte, len(r.Data))
		copy(data, r.Data)
		records[i] = Record{Seq: r.Seq, Data: data}
	}
	if !l.hasCP {
		return nil, records, ErrNoCheckpoint
	}
	cp := make([]byte, len(l.checkpoint))
	copy(cp, l.checkpoint)
	return cp, records, nil
}

// DurableLen implements Log.
func (l *walLog) DurableLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.durable)
}

// VolatileLen implements Log.
func (l *walLog) VolatileLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.volatile)
}

// LastDurableSeq implements Log.
func (l *walLog) LastDurableSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.durable); n > 0 {
		return l.durable[n-1].Seq
	}
	return l.cpAt
}

// SkipTo implements Skipper: it raises the sequence counter (never
// lowering it) so records applied after an installed replica checkpoint
// continue the primary's numbering. Only the counter moves; nothing is
// written until the next Append/Sync.
func (l *walLog) SkipTo(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.nextSeq {
		l.nextSeq = seq
	}
	if seq > l.durableSeq {
		l.durableSeq = seq
	}
}

// --- open-time recovery scan ---

// openWalLog opens one log directory, scanning and verifying its
// checkpoint and every segment.
func openWalLog(w *WAL, name string) (*walLog, error) {
	dir := filepath.Join(w.dir, escapeLogName(name))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	l := &walLog{wal: w, name: name, dir: dir}
	l.cond = sync.NewCond(&l.mu)

	// A leftover checkpoint.tmp is an uninstalled checkpoint from a
	// crash mid-write: the rename never happened, so the old checkpoint
	// (or none) is still the truth. Discard it.
	if err := os.Remove(filepath.Join(dir, checkpointTmpName)); err != nil && !os.IsNotExist(err) {
		return nil, err
	}
	if err := l.readCheckpoint(); err != nil {
		return nil, err
	}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	lastSeen := uint64(0)
	for i, s := range segs {
		if err := l.scanSegment(s, i == len(segs)-1, &lastSeen); err != nil {
			return nil, err
		}
	}
	l.segs = segs
	l.durableSeq = lastSeen
	if l.durableSeq < l.cpAt {
		l.durableSeq = l.cpAt
	}
	l.nextSeq = l.durableSeq
	l.report.Records = len(l.durable)

	// Finish any compaction a crash interrupted: segments wholly at or
	// below the watermark are stale.
	if l.hasCP {
		kept := l.segs[:0]
		for _, s := range l.segs {
			if s.lastSeq > l.cpAt {
				kept = append(kept, s)
				continue
			}
			if err := os.Remove(s.path); err != nil {
				return nil, err
			}
		}
		l.segs = kept
	}
	// Reopen the final surviving segment for appending.
	if n := len(l.segs); n > 0 {
		s := l.segs[n-1]
		f, err := os.OpenFile(s.path, os.O_WRONLY|os.O_APPEND, 0)
		if err != nil {
			return nil, err
		}
		info, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, err
		}
		l.active = f
		l.activeSize = info.Size()
	}
	return l, nil
}

// readCheckpoint loads and verifies the installed checkpoint, if any.
// Damage here is real corruption — the file was installed by an atomic
// rename after an fsync, so no crash can legally tear it.
func (l *walLog) readCheckpoint() error {
	buf, err := os.ReadFile(filepath.Join(l.dir, checkpointName))
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(buf) < 12 {
		return fmt.Errorf("%w: log %s: checkpoint file truncated (%d bytes)", ErrCorrupt, l.name, len(buf))
	}
	state := buf[12:]
	if crc32.Checksum(state, crcTable) != binary.LittleEndian.Uint32(buf[8:]) {
		return fmt.Errorf("%w: log %s: checkpoint checksum mismatch", ErrCorrupt, l.name)
	}
	l.checkpoint = append([]byte(nil), state...)
	l.cpAt = binary.LittleEndian.Uint64(buf[0:])
	l.hasCP = true
	return nil
}

// listSegments returns the log's segment files ordered by first
// sequence number.
func listSegments(dir string) ([]*segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []*segment
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, segPrefix) || !strings.HasSuffix(name, segSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, segPrefix), segSuffix)
		first, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: unparseable segment name %s", ErrCorrupt, name)
		}
		segs = append(segs, &segment{path: filepath.Join(dir, name), firstSeq: first})
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].firstSeq < segs[j].firstSeq })
	return segs, nil
}

// scanSegment parses one segment's batch frames into the in-memory
// mirror. A bad frame at the tail of the FINAL segment is the residue
// of a torn write: the frame (the whole batch — the atomicity unit) is
// truncated away and reported. A bad frame anywhere else cannot have
// been produced by any crash of a correct writer and fails the open
// with ErrCorrupt.
func (l *walLog) scanSegment(s *segment, final bool, lastSeen *uint64) error {
	data, err := os.ReadFile(s.path)
	if err != nil {
		return err
	}
	off := 0
	tear := func(reason string) error {
		if !final {
			return fmt.Errorf("%w: log %s: segment %s: %s at offset %d (not in the final segment)",
				ErrCorrupt, l.name, filepath.Base(s.path), reason, off)
		}
		if err := os.Truncate(s.path, int64(off)); err != nil {
			return err
		}
		if err := fsyncFile(s.path); err != nil {
			return err
		}
		l.report.TornTail = true
		l.report.TornBytes = len(data) - off
		return nil
	}
	for off < len(data) {
		if len(data)-off < batchHeaderSize {
			return tear("short batch header")
		}
		plen := int(binary.LittleEndian.Uint32(data[off:]))
		crc := binary.LittleEndian.Uint32(data[off+4:])
		if plen > maxFramePayload {
			return tear("implausible batch length")
		}
		if off+batchHeaderSize+plen > len(data) {
			return tear("short batch payload")
		}
		payload := data[off+batchHeaderSize : off+batchHeaderSize+plen]
		if crc32.Checksum(payload, crcTable) != crc {
			return tear("batch checksum mismatch")
		}
		// The frame is intact; its interior is covered by the checksum,
		// so malformation inside is a writer bug, never a torn write.
		p := 0
		for p < len(payload) {
			if len(payload)-p < recordHeaderSize {
				return fmt.Errorf("%w: log %s: malformed record header inside a valid batch", ErrCorrupt, l.name)
			}
			dlen := int(binary.LittleEndian.Uint32(payload[p:]))
			seq := binary.LittleEndian.Uint64(payload[p+4:])
			if p+recordHeaderSize+dlen > len(payload) {
				return fmt.Errorf("%w: log %s: record overruns its batch", ErrCorrupt, l.name)
			}
			if seq <= *lastSeen {
				return fmt.Errorf("%w: log %s: sequence numbers not strictly increasing (%d after %d)",
					ErrCorrupt, l.name, seq, *lastSeen)
			}
			*lastSeen = seq
			if l.hasCP && seq <= l.cpAt {
				// Stale: a crash between checkpoint install and
				// compaction left it behind.
				l.report.Skipped++
			} else {
				rec := make([]byte, dlen)
				copy(rec, payload[p+recordHeaderSize:])
				l.durable = append(l.durable, Record{Seq: seq, Data: rec})
			}
			p += recordHeaderSize + dlen
		}
		s.lastSeq = *lastSeen
		off += batchHeaderSize + plen
	}
	return nil
}

// --- encoding helpers ---

// encodeBatch frames a batch: header (length, checksum) then each
// record.
func encodeBatch(batch []Record) []byte {
	plen := 0
	for _, r := range batch {
		plen += recordHeaderSize + len(r.Data)
	}
	buf := make([]byte, batchHeaderSize+plen)
	off := batchHeaderSize
	for _, r := range batch {
		binary.LittleEndian.PutUint32(buf[off:], uint32(len(r.Data)))
		binary.LittleEndian.PutUint64(buf[off+4:], r.Seq)
		copy(buf[off+recordHeaderSize:], r.Data)
		off += recordHeaderSize + len(r.Data)
	}
	binary.LittleEndian.PutUint32(buf[0:], uint32(plen))
	binary.LittleEndian.PutUint32(buf[4:], crc32.Checksum(buf[batchHeaderSize:], crcTable))
	return buf
}

// fsyncDir forces a directory's entries, making file creations,
// renames and removals durable.
func fsyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// fsyncFile forces one file by path (used after truncating a torn
// tail).
func fsyncFile(path string) error {
	f, err := os.OpenFile(path, os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	serr := f.Sync()
	cerr := f.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// escapeLogName maps an arbitrary log name to a safe directory name:
// bytes outside [A-Za-z0-9_-] become %XX.
func escapeLogName(name string) string {
	var b strings.Builder
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_', c == '-':
			b.WriteByte(c)
		default:
			fmt.Fprintf(&b, "%%%02X", c)
		}
	}
	return b.String()
}

// unescapeLogName inverts escapeLogName; malformed escapes pass
// through verbatim.
func unescapeLogName(s string) string {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] == '%' && i+2 < len(s) {
			if v, err := strconv.ParseUint(s[i+1:i+3], 16, 8); err == nil {
				b.WriteByte(byte(v))
				i += 2
				continue
			}
		}
		b.WriteByte(s[i])
	}
	return b.String()
}
