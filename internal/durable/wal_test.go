package durable

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// openTestWAL opens a WAL in a fresh temp dir.
func openTestWAL(t *testing.T, cfg WALConfig) *WAL {
	t.Helper()
	w, err := OpenWAL(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// reopen simulates process death and restart: the old handle is closed
// and a brand-new WAL instance scans the same directory.
func reopen(t *testing.T, w *WAL, cfg WALConfig) *WAL {
	t.Helper()
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	nw, err := OpenWAL(w.Dir(), cfg)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	return nw
}

func mustOpenLog(t *testing.T, w *WAL, name string) Log {
	t.Helper()
	l, err := w.OpenLog(name)
	if err != nil {
		t.Fatalf("open log %s: %v", name, err)
	}
	return l
}

// copyDir snapshots a directory tree — the disk image an instant crash
// would leave behind.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
}

func TestWALRoundTripAcrossReopen(t *testing.T) {
	w := openTestWAL(t, WALConfig{})
	l := mustOpenLog(t, w, "bank_branch-2")
	for i := 0; i < 5; i++ {
		l.AppendSync([]byte(fmt.Sprintf("op-%d", i)))
	}
	l.Append([]byte("volatile: never synced"))
	if got := l.VolatileLen(); got != 1 {
		t.Fatalf("VolatileLen = %d, want 1", got)
	}

	w2 := reopen(t, w, WALConfig{})
	l2 := mustOpenLog(t, w2, "bank_branch-2")
	cp, recs, err := l2.Recover()
	if err != ErrNoCheckpoint {
		t.Fatalf("Recover err = %v, want ErrNoCheckpoint", err)
	}
	if cp != nil {
		t.Fatalf("unexpected checkpoint %q", cp)
	}
	if len(recs) != 5 {
		t.Fatalf("recovered %d records, want 5 (the unsynced append must be gone)", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("op-%d", i); string(r.Data) != want {
			t.Fatalf("record %d = %q, want %q", i, r.Data, want)
		}
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d seq = %d, want %d", i, r.Seq, i+1)
		}
	}
	if got := l2.LastDurableSeq(); got != 5 {
		t.Fatalf("LastDurableSeq = %d, want 5", got)
	}
	// Appending after recovery continues the sequence.
	if seq := l2.AppendSync([]byte("op-5")); seq != 6 {
		t.Fatalf("post-recovery seq = %d, want 6", seq)
	}
	if names := w2.LogNames(); len(names) != 1 || names[0] != "bank_branch-2" {
		t.Fatalf("LogNames = %v", names)
	}
}

func TestWALSyncBatchIsAtomic(t *testing.T) {
	// Two records forced by one Sync form one frame; damaging the frame
	// drops BOTH at recovery — never a prefix. This is the property that
	// keeps an op record and its dedup record inseparable.
	w := openTestWAL(t, WALConfig{})
	l := mustOpenLog(t, w, "log")
	l.AppendSync([]byte("alone"))
	l.Append([]byte("withdraw"))
	l.Append([]byte("deposit"))
	l.Sync()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := filepath.Glob(filepath.Join(w.Dir(), "log", "wal-*.seg"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments = %v (%v)", segs, err)
	}
	// Flip one byte inside the final batch's payload.
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(w.Dir(), WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l2 := mustOpenLog(t, w2, "log")
	_, recs, _ := l2.Recover()
	if len(recs) != 1 || string(recs[0].Data) != "alone" {
		t.Fatalf("recovered %v, want only the first batch", recs)
	}
	rep, ok := w2.Report("log")
	if !ok || !rep.TornTail || rep.TornBytes == 0 {
		t.Fatalf("report = %+v, want a reported torn tail", rep)
	}
	if rep.Records != 1 {
		t.Fatalf("report.Records = %d, want 1", rep.Records)
	}
}

func TestWALTruncatedTail(t *testing.T) {
	// A file cut mid-frame (kernel wrote only part of the batch before
	// the crash) recovers to the last complete batch.
	w := openTestWAL(t, WALConfig{})
	l := mustOpenLog(t, w, "log")
	l.AppendSync([]byte("first"))
	l.AppendSync([]byte("second"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(w.Dir(), "log", "wal-*.seg"))
	info, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], info.Size()-2); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(w.Dir(), WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	l2 := mustOpenLog(t, w2, "log")
	_, recs, _ := l2.Recover()
	if len(recs) != 1 || string(recs[0].Data) != "first" {
		t.Fatalf("recovered %v, want just %q", recs, "first")
	}
	rep, _ := w2.Report("log")
	if !rep.TornTail {
		t.Fatalf("report = %+v, want torn tail", rep)
	}
	// The torn bytes are physically gone: a further reopen is clean.
	w3 := reopen(t, w2, WALConfig{})
	rep3, _ := func() (RecoveryReport, bool) {
		mustOpenLog(t, w3, "log")
		return w3.Report("log")
	}()
	if rep3.TornTail {
		t.Fatalf("second reopen still reports a torn tail: %+v", rep3)
	}
}

func TestWALInteriorCorruptionRejected(t *testing.T) {
	// Damage in a non-final segment is not a legal crash residue;
	// recovery must refuse to open rather than silently skip it.
	w := openTestWAL(t, WALConfig{SegmentSize: 1}) // every batch rotates
	l := mustOpenLog(t, w, "log")
	l.AppendSync([]byte("seg-one"))
	l.AppendSync([]byte("seg-two"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := filepath.Glob(filepath.Join(w.Dir(), "log", "wal-*.seg"))
	if len(segs) != 2 {
		t.Fatalf("segments = %v, want 2", segs)
	}
	data, _ := os.ReadFile(segs[0])
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	w2, err := OpenWAL(w.Dir(), WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.OpenLog("log"); !strings.Contains(fmt.Sprint(err), "corrupt") {
		t.Fatalf("OpenLog on interior damage = %v, want ErrCorrupt", err)
	}
}

func TestWALCheckpointRoundTrip(t *testing.T) {
	w := openTestWAL(t, WALConfig{})
	l := mustOpenLog(t, w, "log")
	for i := 0; i < 6; i++ {
		l.AppendSync([]byte(fmt.Sprintf("op-%d", i)))
	}
	l.Checkpoint([]byte("state@4"), 4)
	if got := l.DurableLen(); got != 2 {
		t.Fatalf("DurableLen after checkpoint = %d, want 2", got)
	}

	w2 := reopen(t, w, WALConfig{})
	l2 := mustOpenLog(t, w2, "log")
	cp, recs, err := l2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if string(cp) != "state@4" {
		t.Fatalf("checkpoint = %q", cp)
	}
	if len(recs) != 2 || recs[0].Seq != 5 || recs[1].Seq != 6 {
		t.Fatalf("records after checkpoint = %v", recs)
	}
	if got := l2.LastDurableSeq(); got != 6 {
		t.Fatalf("LastDurableSeq = %d, want 6", got)
	}
}

func TestWALCrashBetweenCheckpointInstallAndCompaction(t *testing.T) {
	// Snapshot the disk image at the MidCheckpoint hook — the instant
	// after the atomic rename installed the new checkpoint but before
	// any record was compacted away — and recover from the snapshot.
	// The (checkpoint, records) pair must be consistent: stale records
	// at or below the watermark are skipped and reported, not replayed.
	snap := t.TempDir()
	var once sync.Once
	var root string
	cfg := WALConfig{Hooks: WALHooks{MidCheckpoint: func(string) {
		once.Do(func() { copyDir(t, root, snap) })
	}}}
	w := openTestWAL(t, cfg)
	root = w.Dir()
	l := mustOpenLog(t, w, "log")
	for i := 0; i < 5; i++ {
		l.AppendSync([]byte(fmt.Sprintf("op-%d", i)))
	}
	l.Checkpoint([]byte("state@3"), 3)

	ws, err := OpenWAL(snap, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	ls := mustOpenLog(t, ws, "log")
	cp, recs, err := ls.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if string(cp) != "state@3" {
		t.Fatalf("snapshot checkpoint = %q, want the installed one", cp)
	}
	if len(recs) != 2 || recs[0].Seq != 4 || recs[1].Seq != 5 {
		t.Fatalf("snapshot records = %v, want seqs 4,5 only", recs)
	}
	rep, _ := ws.Report("log")
	if rep.Skipped != 3 {
		t.Fatalf("report.Skipped = %d, want the 3 stale records at or below the watermark", rep.Skipped)
	}
}

func TestWALCrashBeforeAndAfterSync(t *testing.T) {
	// BeforeSync: the batch is claimed but nothing is on disk — a crash
	// loses it whole. AfterSync: the batch is durable though the caller
	// has not yet been told — a durable-but-unacked tail.
	before, after := t.TempDir(), t.TempDir()
	var root string
	var mode atomic.Int32 // 1: snapshot at BeforeSync; 2: at AfterSync
	cfg := WALConfig{Hooks: WALHooks{
		BeforeSync: func(string) {
			if mode.Load() == 1 {
				copyDir(t, root, before)
				mode.Store(0)
			}
		},
		AfterSync: func(string) {
			if mode.Load() == 2 {
				copyDir(t, root, after)
				mode.Store(0)
			}
		},
	}}
	w := openTestWAL(t, cfg)
	root = w.Dir()
	l := mustOpenLog(t, w, "log")
	l.AppendSync([]byte("base"))

	mode.Store(1)
	l.AppendSync([]byte("lost-at-before-sync"))
	mode.Store(2)
	l.AppendSync([]byte("durable-at-after-sync"))

	wb, err := OpenWAL(before, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, recs, _ := mustOpenLog(t, wb, "log").Recover()
	if len(recs) != 1 || string(recs[0].Data) != "base" {
		t.Fatalf("before-sync image recovered %v, want only %q", recs, "base")
	}

	wa, err := OpenWAL(after, WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	_, recs, _ = mustOpenLog(t, wa, "log").Recover()
	if len(recs) != 3 {
		t.Fatalf("after-sync image recovered %d records, want 3", len(recs))
	}
}

func TestWALStrayCheckpointTmpDiscarded(t *testing.T) {
	w := openTestWAL(t, WALConfig{})
	l := mustOpenLog(t, w, "log")
	l.AppendSync([]byte("op"))
	l.Checkpoint([]byte("good"), 0)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	tmp := filepath.Join(w.Dir(), "log", "checkpoint.tmp")
	if err := os.WriteFile(tmp, []byte("half-written junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(w.Dir(), WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := mustOpenLog(t, w2, "log").Recover()
	if err != nil || string(cp) != "good" {
		t.Fatalf("Recover = %q, %v; want the installed checkpoint", cp, err)
	}
	if _, err := os.Stat(tmp); !os.IsNotExist(err) {
		t.Fatalf("checkpoint.tmp survived open: %v", err)
	}
}

func TestWALCheckpointCorruptionRejected(t *testing.T) {
	w := openTestWAL(t, WALConfig{})
	l := mustOpenLog(t, w, "log")
	l.AppendSync([]byte("op"))
	l.Checkpoint([]byte("state"), 1)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(w.Dir(), "log", "checkpoint")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	w2, err := OpenWAL(w.Dir(), WALConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w2.OpenLog("log"); !strings.Contains(fmt.Sprint(err), "corrupt") {
		t.Fatalf("OpenLog with damaged checkpoint = %v, want ErrCorrupt", err)
	}
}

func TestWALSegmentRotationAndCompaction(t *testing.T) {
	w := openTestWAL(t, WALConfig{SegmentSize: 64})
	l := mustOpenLog(t, w, "log")
	for i := 0; i < 20; i++ {
		l.AppendSync(bytes.Repeat([]byte{byte(i)}, 32))
	}
	glob := filepath.Join(w.Dir(), "log", "wal-*.seg")
	segs, _ := filepath.Glob(glob)
	if len(segs) < 3 {
		t.Fatalf("only %d segments after 20 oversized batches", len(segs))
	}
	// Fold everything into a checkpoint: every segment is deletable.
	l.Checkpoint([]byte("all"), l.LastDurableSeq())
	segs, _ = filepath.Glob(glob)
	if len(segs) != 0 {
		t.Fatalf("%d segments survive a covering checkpoint: %v", len(segs), segs)
	}
	// The log keeps working afterwards.
	l.AppendSync([]byte("after"))
	w2 := reopen(t, w, WALConfig{})
	cp, recs, err := mustOpenLog(t, w2, "log").Recover()
	if err != nil || string(cp) != "all" {
		t.Fatalf("cp = %q, %v", cp, err)
	}
	if len(recs) != 1 || string(recs[0].Data) != "after" {
		t.Fatalf("records = %v", recs)
	}
}

func TestWALGroupCommitCoalesces(t *testing.T) {
	// One leader's fsync covers every record appended while it ran: 1
	// fsync for the first caller, then one more for the batch of
	// followers — far fewer than one per caller.
	const followers = 8
	gate := make(chan struct{})
	entered := make(chan struct{}, 1)
	var first atomic.Bool
	first.Store(true)
	cfg := WALConfig{Hooks: WALHooks{BeforeSync: func(string) {
		if first.CompareAndSwap(true, false) {
			entered <- struct{}{}
			<-gate
		}
	}}}
	w := openTestWAL(t, cfg)
	l := mustOpenLog(t, w, "log")

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		l.AppendSync([]byte("leader"))
	}()
	<-entered // the leader is mid-flush, holding the disk

	wg.Add(followers)
	for i := 0; i < followers; i++ {
		go func(i int) {
			defer wg.Done()
			l.AppendSync([]byte(fmt.Sprintf("follower-%d", i)))
		}(i)
	}
	// Wait until every follower has appended and is parked behind the
	// syncing leader.
	deadline := time.Now().Add(5 * time.Second)
	for l.VolatileLen() < followers {
		if time.Now().After(deadline) {
			t.Fatalf("followers never queued: volatile=%d", l.VolatileLen())
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()

	if got := w.SyncCount(); got > 3 {
		t.Fatalf("group commit used %d fsyncs for %d concurrent callers, want <= 3", got, followers+1)
	}
	_, recs, _ := l.Recover()
	if len(recs) != followers+1 {
		t.Fatalf("recovered %d records, want %d", len(recs), followers+1)
	}
}

func TestWALNoGroupCommitOneFsyncPerCall(t *testing.T) {
	w := openTestWAL(t, WALConfig{NoGroupCommit: true})
	l := mustOpenLog(t, w, "log")
	for i := 0; i < 10; i++ {
		l.AppendSync([]byte("op"))
	}
	if got := w.SyncCount(); got != 10 {
		t.Fatalf("naive mode used %d fsyncs for 10 calls, want 10", got)
	}
}

func TestWALSimulatedCrashDropsVolatile(t *testing.T) {
	// In-process Crash (dst worlds run WAL-backed nodes in one process)
	// must behave exactly like the simulated disk: volatile gone,
	// durable intact, sequence numbers still strictly increasing.
	w := openTestWAL(t, WALConfig{})
	l := mustOpenLog(t, w, "log")
	l.AppendSync([]byte("durable"))
	l.Append([]byte("volatile"))
	w.Crash()
	if got := l.VolatileLen(); got != 0 {
		t.Fatalf("VolatileLen after crash = %d", got)
	}
	seq := l.AppendSync([]byte("next"))
	if seq != 2 {
		t.Fatalf("post-crash seq = %d, want 2", seq)
	}
	w2 := reopen(t, w, WALConfig{})
	_, recs, _ := mustOpenLog(t, w2, "log").Recover()
	if len(recs) != 2 || string(recs[0].Data) != "durable" || string(recs[1].Data) != "next" {
		t.Fatalf("records = %v", recs)
	}
}

func TestLogNameEscapeRoundTrip(t *testing.T) {
	for _, name := range []string{"bank_branch-2", "_catalog", "a/b", "..", "%41", "weird name!"} {
		esc := escapeLogName(name)
		if strings.ContainsAny(esc, "/\\") || esc == "." || esc == ".." {
			t.Fatalf("escape(%q) = %q is not a safe file name", name, esc)
		}
		if got := unescapeLogName(esc); got != name {
			t.Fatalf("round trip %q -> %q -> %q", name, esc, got)
		}
	}
}

func TestSimStoreSeam(t *testing.T) {
	// The simulated disk satisfies the seam unchanged, and the adapter
	// unwraps for tests that reach past it.
	s := NewSim(newTestDisk())
	if s.Persistent() {
		t.Fatal("simulated storage must not claim persistence")
	}
	l, err := s.OpenLog("x")
	if err != nil {
		t.Fatal(err)
	}
	l.AppendSync([]byte("one"))
	l.Append([]byte("two"))
	s.Crash()
	_, recs, err := l.Recover()
	if err != ErrNoCheckpoint {
		t.Fatalf("err = %v", err)
	}
	if len(recs) != 1 {
		t.Fatalf("records = %v", recs)
	}
	if s.Disk() == nil {
		t.Fatal("Disk unwrap returned nil")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}
