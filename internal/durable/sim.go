package durable

import (
	"time"

	"repro/internal/stable"
	"repro/internal/vtime"
)

// Sim adapts the in-memory simulated disk to the Store seam — the
// default backend, exactly as transport.Sim adapts netsim. It survives
// simulated Node.Crash calls but not process death, and Persistent is
// accordingly false: the guardian runtime keeps re-creation metadata in
// process memory for it, just as it always has.
type Sim struct {
	disk *stable.Disk
}

// NewSim wraps a simulated disk.
func NewSim(disk *stable.Disk) *Sim { return &Sim{disk: disk} }

// NewSimDisk builds a Sim over a fresh simulated disk on the given
// clock — the same default storage a World gives nodes when Config.Store
// is nil, packaged for callers who need the Store value itself (e.g. to
// wrap it in replication). syncDelay models per-Sync fsync latency; zero
// means instantaneous forces.
func NewSimDisk(clock vtime.Clock, syncDelay time.Duration) *Sim {
	return NewSim(stable.NewDisk(clock, stable.DiskConfig{SyncDelay: syncDelay}))
}

// Disk unwraps to the simulated device, for tests and experiments that
// reach past the seam (mirroring transport.Sim's Network unwrap).
func (s *Sim) Disk() *stable.Disk { return s.disk }

// OpenLog implements Store. The simulated log is the interface's
// reference implementation; opening cannot fail.
func (s *Sim) OpenLog(name string) (Log, error) { return s.disk.OpenLog(name), nil }

// LogNames implements Store.
func (s *Sim) LogNames() []string { return s.disk.LogNames() }

// Persistent implements Store: simulated storage dies with the process.
func (s *Sim) Persistent() bool { return false }

// Crash implements Store.
func (s *Sim) Crash() { s.disk.Crash() }

// SyncCount implements Store.
func (s *Sim) SyncCount() int64 { return s.disk.SyncCount() }

// Close implements Store: the simulated disk holds no OS resources.
func (s *Sim) Close() error { return nil }
