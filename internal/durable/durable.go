// Package durable is the storage seam: the interface between the
// guardian runtime and whatever device provides the paper's stable
// storage that "will survive a node crash" (§2.2). It mirrors the
// transport seam exactly — transport.Transport made the network
// pluggable (simulator for tests, UDP for real processes, a fault
// wrapper for soak tests); durable.Store does the same for storage:
//
//   - Sim adapts the in-memory stable.Disk — the default, so every
//     existing in-process test keeps its instant, deterministic disk;
//   - WAL is a real on-disk write-ahead log (segmented, checksummed,
//     fsync-backed) that makes permanence of effect survive kill -9 of
//     the hosting OS process;
//   - Wrapper injects storage faults (failed syncs, short writes,
//     corrupted tails) deterministically from a seed, so recovery paths
//     can be exercised in dst and unit tests.
//
// The Log interface is extracted from *stable.Log without changing a
// signature, so the simulated log satisfies it unchanged and all
// guardian code is oblivious to which device is underneath.
package durable

import (
	"errors"
	"sync"

	"repro/internal/stable"
)

// Record is one durable log entry. It is exactly the simulated disk's
// record type, so replay helpers written against stable records (e.g.
// bank.ReplayAccounts) work on any backend.
type Record = stable.Record

// ErrNoCheckpoint is returned by Recover when the log has no checkpoint.
// It aliases the simulated disk's sentinel so existing comparisons keep
// working whichever backend produced it.
var ErrNoCheckpoint = stable.ErrNoCheckpoint

// ErrCorrupt reports storage damage recovery must not silently repair: a
// checksum failure in the interior of a log (not the final, possibly
// torn batch) or an unreadable checkpoint. A torn tail — the suffix a
// crash mid-write legitimately leaves behind — is NOT corruption; it is
// truncated away and reported via RecoveryReport.
var ErrCorrupt = errors.New("durable: log corrupt")

// Log is a guardian's append-only record log with an optional
// checkpoint. The contract is the paper's §2.2 protocol, with one
// sharpened clause learned from E7: a record is volatile until Sync
// returns, and everything forced by ONE Sync call becomes durable
// atomically — a crash never exposes a strict prefix of a Sync batch.
// That atomicity is what lets a guardian commit an operation record and
// its at-most-once dedup record in one forced write with no crash
// window between them.
//
// Implementations are fail-stop: an I/O error on the durability path
// panics rather than returning, because a guardian that keeps running
// after its stable storage failed would acknowledge effects it cannot
// make permanent.
type Log interface {
	// Append adds a record to the volatile tail and returns its sequence
	// number. The record becomes durable only on the next Sync.
	Append(data []byte) uint64
	// Sync forces every appended record to durable storage.
	Sync()
	// AppendSync appends and immediately syncs — log-then-ack in one call.
	AppendSync(data []byte) uint64
	// Checkpoint atomically replaces the log's checkpoint with state,
	// folding in every durable record with Seq <= upTo.
	Checkpoint(state []byte, upTo uint64)
	// Recover returns the checkpoint (or ErrNoCheckpoint) and every
	// durable record after it, in sequence order. Implementations reject
	// interior corruption with ErrCorrupt rather than replaying it.
	Recover() (checkpoint []byte, records []Record, err error)
	// DurableLen reports durable records not yet folded into the checkpoint.
	DurableLen() int
	// VolatileLen reports appended-but-unsynced records.
	VolatileLen() int
	// LastDurableSeq returns the highest durable sequence number,
	// counting the checkpoint watermark.
	LastDurableSeq() uint64
}

// Store is one node's storage device: a namespace of Logs that survives
// whatever "crash" means for the backend — a simulated Node.Crash for
// Sim, SIGKILL of the OS process for WAL.
type Store interface {
	// OpenLog returns the named log, creating it if absent. Opening an
	// existing log performs recovery scanning on backends that need it,
	// so corruption surfaces here rather than mid-operation.
	OpenLog(name string) (Log, error)
	// LogNames returns the names of all logs on the store, sorted.
	LogNames() []string
	// Persistent reports whether the store outlives the OS process. The
	// guardian runtime keeps its catalog of recoverable guardians on
	// persistent stores so a restarted process can re-create them.
	Persistent() bool
	// Crash simulates the node failing: volatile tails are lost, durable
	// records and checkpoints survive. On persistent backends this only
	// drops buffered state; real process death needs no help.
	Crash()
	// SyncCount reports how many forced writes the store has performed —
	// the cost metric group commit exists to reduce.
	SyncCount() int64
	// Close releases OS resources (file handles). The simulated store
	// has none; worlds on a WAL must Close.
	Close() error
}

// RecoveryReport describes what open-time scanning of one log found.
// Reporter is implemented by backends that scan (WAL, Wrapper); the
// simulated disk never has anything to report.
type RecoveryReport struct {
	// Records is the number of live records recovered (after the
	// checkpoint watermark).
	Records int
	// Skipped counts stale records at or below the checkpoint watermark
	// left behind by a crash between checkpoint install and truncation.
	Skipped int
	// TornTail is true when the final batch was incomplete or failed its
	// checksum — the legitimate residue of a crash mid-write. The torn
	// bytes were truncated, not replayed.
	TornTail bool
	// TornBytes is the number of bytes the torn tail occupied.
	TornBytes int
}

// Reporter exposes per-log recovery reports.
type Reporter interface {
	// Report returns the recovery report for the named log and whether
	// the log has been opened/scanned.
	Report(name string) (RecoveryReport, bool)
}

// Null returns an inert Log that accepts and discards everything. It is
// what a DEAD guardian's straggling processes write to when their store
// is already closed: their appends were volatile the moment the guardian
// was killed, so discarding them is exactly the simulated-crash
// semantics. It must never back a live guardian — that would be the
// silent-loss sin the fail-stop discipline exists to prevent.
func Null() Log { return &nullLog{} }

type nullLog struct {
	mu   sync.Mutex
	next uint64
}

func (l *nullLog) Append(data []byte) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.next++
	return l.next
}
func (l *nullLog) Sync()                         {}
func (l *nullLog) AppendSync(data []byte) uint64 { return l.Append(data) }
func (l *nullLog) Checkpoint(_ []byte, _ uint64) {}
func (l *nullLog) Recover() ([]byte, []Record, error) {
	return nil, nil, ErrNoCheckpoint
}
func (l *nullLog) DurableLen() int        { return 0 }
func (l *nullLog) VolatileLen() int       { return 0 }
func (l *nullLog) LastDurableSeq() uint64 { return 0 }
func (l *nullLog) SkipTo(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.next {
		l.next = seq
	}
}

// Skipper is the optional catch-up extension of Log: SkipTo raises the
// log's sequence counter (never lowers it) so the next Append continues
// from seq+1. A replica installing a shipped checkpoint at watermark W
// calls SkipTo(W) so locally applied records keep the primary's
// numbering. All backends in this package implement it.
type Skipper interface {
	SkipTo(seq uint64)
}

// SkipTo raises log's sequence counter when the backend supports it and
// reports whether it did.
func SkipTo(log Log, seq uint64) bool {
	s, ok := log.(Skipper)
	if ok {
		s.SkipTo(seq)
	}
	return ok
}
