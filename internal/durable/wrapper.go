package durable

import (
	"math/rand"
	"sync"
)

// WrapperConfig is the storage fault model a Wrapper injects around an
// inner Store — the disk counterpart of transport.WrapperConfig. Fates
// are a pure function of the seed and the sync order, so a failing run
// reproduces from its seed.
type WrapperConfig struct {
	// Seed initializes the fate source.
	Seed int64
	// SyncFailRate is the probability in [0,1] that a Sync loses its
	// entire batch: the fsync "succeeded" from the device's point of
	// view never happened. Models a power cut before the platter write.
	SyncFailRate float64
	// ShortWriteRate is the probability that only a strict prefix of
	// the batch reaches the device and the torn remainder is detected
	// and discarded at recovery.
	ShortWriteRate float64
	// CorruptTailRate is the probability that the batch reaches the
	// device but is damaged in place, so recovery's checksum scan
	// rejects the whole batch.
	CorruptTailRate float64
	// OnFault, when non-nil, is called (outside the wrapper's lock)
	// after a fault is applied, before Sync returns to the caller. A
	// harness uses it to fail-stop the faulted node immediately — the
	// post-fsyncgate discipline: a storage error must crash the process
	// BEFORE any acknowledgment escapes, or acked-implies-durable is
	// lost.
	OnFault func(log, fault string)
}

// Fault names passed to OnFault.
const (
	FaultSyncFail    = "sync_fail"
	FaultShortWrite  = "short_write"
	FaultCorruptTail = "corrupt_tail"
)

// WrapperStats counts the faults a Wrapper has injected.
type WrapperStats struct {
	Syncs          int64 // Sync calls observed
	SyncsFailed    int64 // whole batches lost
	ShortWrites    int64 // batches committed only as a prefix
	CorruptedTails int64 // batches committed then damaged
	RecordsDropped int64 // records recovery will never see
}

// Wrapper injects storage faults around any Store. It owns each log's
// volatile tail (so a failed sync can lose a whole batch, exactly as
// the WAL's batch atomicity would) and remembers which committed
// records it damaged, excluding them from Recover — presenting callers
// with precisely the post-scan view a real WAL recovery would produce:
// torn and corrupted batches are dropped and reported, never replayed.
//
// Under faults the sequence numbers returned by Append are advisory:
// records that survive are renumbered by the inner store when
// committed. Recover's records carry the inner numbering, which is what
// LastDurableSeq and Checkpoint watermarks speak as well, so the
// log-checkpoint-replay contract is unaffected.
type Wrapper struct {
	inner Store
	cfg   WrapperConfig

	mu    sync.Mutex
	rng   *rand.Rand
	scale float64 // fault-rate multiplier; 1 outside burst windows
	stats WrapperStats
	logs  map[string]*wrapLog
}

// Wrap composes the fault model around inner.
func Wrap(inner Store, cfg WrapperConfig) *Wrapper {
	return &Wrapper{
		inner: inner,
		cfg:   cfg,
		rng:   rand.New(rand.NewSource(cfg.Seed)),
		scale: 1,
		logs:  make(map[string]*wrapLog),
	}
}

// SetFaultScale multiplies the configured fault rates by f until the
// next call — the storage-burst primitive: a harness raises the scale
// for a window (a dying disk, a battery-backed cache losing power) and
// drops it back to 1. Exactly one fate value is drawn per non-empty
// Sync regardless of the rates in force, so changing the scale
// mid-run never desynchronizes the seeded fate stream: the same seed
// under the same Sync order draws the same values, burst or no burst.
// Negative f is treated as 0 (faults off).
func (w *Wrapper) SetFaultScale(f float64) {
	if f < 0 {
		f = 0
	}
	w.mu.Lock()
	w.scale = f
	w.mu.Unlock()
}

// Inner returns the wrapped store.
func (w *Wrapper) Inner() Store { return w.inner }

// OpenLog implements Store.
func (w *Wrapper) OpenLog(name string) (Log, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if l, ok := w.logs[name]; ok {
		return l, nil
	}
	inner, err := w.inner.OpenLog(name)
	if err != nil {
		return nil, err
	}
	l := &wrapLog{w: w, name: name, inner: inner, tainted: make(map[uint64]bool)}
	w.logs[name] = l
	return l, nil
}

// LogNames implements Store.
func (w *Wrapper) LogNames() []string { return w.inner.LogNames() }

// Persistent implements Store.
func (w *Wrapper) Persistent() bool { return w.inner.Persistent() }

// Crash implements Store: pending batches die with the node. The
// wrapper lock is released before any log lock is taken — Sync holds a
// log lock while drawing its fate under the wrapper lock, so nesting
// them here would invert the order.
func (w *Wrapper) Crash() {
	w.mu.Lock()
	logs := make([]*wrapLog, 0, len(w.logs))
	for _, l := range w.logs {
		logs = append(logs, l)
	}
	w.mu.Unlock()
	for _, l := range logs {
		l.mu.Lock()
		l.pending = nil
		l.mu.Unlock()
	}
	w.inner.Crash()
}

// SyncCount implements Store.
func (w *Wrapper) SyncCount() int64 { return w.inner.SyncCount() }

// Close implements Store.
func (w *Wrapper) Close() error { return w.inner.Close() }

// InjectedStats reports the faults injected so far.
func (w *Wrapper) InjectedStats() WrapperStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stats
}

// Report implements Reporter for opened logs.
func (w *Wrapper) Report(name string) (RecoveryReport, bool) {
	w.mu.Lock()
	l, ok := w.logs[name]
	w.mu.Unlock()
	if !ok {
		return RecoveryReport{}, false
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rep := RecoveryReport{
		TornTail:  len(l.tainted) > 0,
		TornBytes: l.taintedBytes,
	}
	_, recs, _ := l.inner.Recover()
	for _, r := range recs {
		if !l.tainted[r.Seq] {
			rep.Records++
		}
	}
	return rep, true
}

// wrapLog is one log under fault injection.
type wrapLog struct {
	w     *Wrapper
	name  string
	inner Log

	mu      sync.Mutex
	nextAdv uint64   // advisory sequence for Append's return value
	pending [][]byte // the volatile tail, owned here so faults can drop it
	// tainted marks inner sequence numbers recovery must reject: they
	// were committed but then torn or damaged on the device.
	tainted      map[uint64]bool
	taintedBytes int
}

// Append implements Log; the returned sequence number is advisory
// under faults (see Wrapper).
func (l *wrapLog) Append(data []byte) uint64 {
	buf := make([]byte, len(data))
	copy(buf, data)
	l.mu.Lock()
	defer l.mu.Unlock()
	l.pending = append(l.pending, buf)
	l.nextAdv = l.inner.LastDurableSeq() + uint64(len(l.pending))
	return l.nextAdv
}

// Sync implements Log, deciding the batch's fate from the seed: commit
// clean, lose it whole, commit a torn prefix, or commit then damage it.
// Damaged records are committed to the inner store (they occupy disk)
// but marked so Recover drops them, as a checksum scan would.
func (l *wrapLog) Sync() {
	l.mu.Lock()
	batch := l.pending
	l.pending = nil

	w := l.w
	w.mu.Lock()
	w.stats.Syncs++
	fault := ""
	cut := len(batch)
	if len(batch) > 0 {
		sf := w.cfg.SyncFailRate * w.scale
		sw := w.cfg.ShortWriteRate * w.scale
		ct := w.cfg.CorruptTailRate * w.scale
		switch f := w.rng.Float64(); {
		case f < sf:
			fault = FaultSyncFail
			cut = 0
			w.stats.SyncsFailed++
			w.stats.RecordsDropped += int64(len(batch))
		case f < sf+sw:
			fault = FaultShortWrite
			cut = w.rng.Intn(len(batch)) // strict prefix, possibly empty
			w.stats.ShortWrites++
			w.stats.RecordsDropped += int64(len(batch))
		case f < sf+sw+ct:
			fault = FaultCorruptTail
			w.stats.CorruptedTails++
			w.stats.RecordsDropped += int64(len(batch))
		}
	}
	w.mu.Unlock()

	// Commit what reaches the device. For a short write the surviving
	// prefix is also tainted: it is part of a batch whose frame checksum
	// can no longer verify, so recovery rejects the batch whole —
	// preserving the Sync batch as the atomicity unit.
	commit := batch[:cut]
	if fault == FaultCorruptTail {
		commit = batch
	}
	taintCommitted := fault == FaultCorruptTail || fault == FaultShortWrite
	for _, data := range commit {
		seq := l.inner.Append(data)
		if taintCommitted {
			l.tainted[seq] = true
			l.taintedBytes += len(data)
		}
	}
	//lint:allow lockorder the inner store is the in-memory simulator: its Sync decides fault outcomes and returns, it cannot park the goroutine
	l.inner.Sync()
	l.mu.Unlock()

	if fault != "" && w.cfg.OnFault != nil {
		w.cfg.OnFault(l.name, fault)
	}
}

// AppendSync implements Log.
func (l *wrapLog) AppendSync(data []byte) uint64 {
	seq := l.Append(data)
	l.Sync()
	return seq
}

// Checkpoint implements Log. Tainted records folded under the
// watermark are discarded by the inner store and forgotten here.
func (l *wrapLog) Checkpoint(state []byte, upTo uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	//lint:allow lockorder the inner store is the in-memory simulator: Checkpoint folds records and returns, it cannot park the goroutine
	l.inner.Checkpoint(state, upTo)
	for seq := range l.tainted {
		if seq <= upTo {
			delete(l.tainted, seq)
		}
	}
}

// Recover implements Log, presenting the post-scan view: committed
// records minus the tainted ones a checksum scan would reject.
func (l *wrapLog) Recover() (checkpoint []byte, records []Record, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cp, recs, err := l.inner.Recover()
	if err != nil && err != ErrNoCheckpoint {
		return nil, nil, err
	}
	kept := recs[:0]
	for _, r := range recs {
		if !l.tainted[r.Seq] {
			kept = append(kept, r)
		}
	}
	return cp, kept, err
}

// DurableLen implements Log, counting records recovery would replay.
func (l *wrapLog) DurableLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.inner.DurableLen() - len(l.tainted)
	if n < 0 {
		n = 0
	}
	return n
}

// VolatileLen implements Log.
func (l *wrapLog) VolatileLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending)
}

// LastDurableSeq implements Log (inner numbering; tainted records still
// advance it, exactly as torn bytes still occupy the tail of a real
// log until truncated).
func (l *wrapLog) LastDurableSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.inner.LastDurableSeq()
}

// SkipTo implements Skipper by forwarding to the inner log when it
// supports skipping; the advisory counter is raised alongside so the
// two numbering streams stay ordered the same way.
func (l *wrapLog) SkipTo(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if s, ok := l.inner.(Skipper); ok {
		s.SkipTo(seq)
	}
	if seq > l.nextAdv {
		l.nextAdv = seq
	}
}
