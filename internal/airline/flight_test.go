package airline

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

const testTimeout = 5 * time.Second

// deployOne builds a world with a single region ("hub") holding flights
// 1..n, plus a client node ("clerk-node").
func deployOne(t *testing.T, org string, nFlights int, capacity int64) (*System, *guardian.Node) {
	t.Helper()
	w := guardian.NewWorld(guardian.Config{})
	if err := RegisterDefs(w); err != nil {
		t.Fatal(err)
	}
	flights := make([]int64, nFlights)
	for i := range flights {
		flights[i] = int64(i + 1)
	}
	sys, err := Deploy(w, SystemConfig{
		Regions:  []RegionConfig{{Node: "hub", Flights: flights}},
		UINodes:  []string{"hub"},
		Capacity: capacity,
		Org:      org,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli := w.MustAddNode("clerk-node")
	return sys, cli
}

func TestReserveAndCancelAllOrgs(t *testing.T) {
	for _, org := range []string{OrgSequential, OrgSerializer, OrgMonitor} {
		t.Run(org, func(t *testing.T) {
			sys, cli := deployOne(t, org, 1, 2)
			a, err := NewAgent(cli, "a")
			if err != nil {
				t.Fatal(err)
			}
			port := sys.Directory[1]
			out, err := a.Request(port, "reserve", 1, "alice", "dec-10", testTimeout)
			if err != nil || out != OutcomeOK {
				t.Fatalf("reserve: %v %v", out, err)
			}
			out, err = a.Request(port, "cancel", 1, "alice", "dec-10", testTimeout)
			if err != nil || out != OutcomeCanceled {
				t.Fatalf("cancel: %v %v", out, err)
			}
			out, err = a.Request(port, "cancel", 1, "alice", "dec-10", testTimeout)
			if err != nil || out != OutcomeNotReserved {
				t.Fatalf("re-cancel: %v %v", out, err)
			}
		})
	}
}

func TestReserveIdempotent(t *testing.T) {
	sys, cli := deployOne(t, OrgSequential, 1, 5)
	a, _ := NewAgent(cli, "a")
	port := sys.Directory[1]
	if out, _ := a.Request(port, "reserve", 1, "bob", "dec-10", testTimeout); out != OutcomeOK {
		t.Fatalf("first reserve: %v", out)
	}
	// "no problems result since they are idempotent (many performances
	// are equivalent to one)".
	for i := 0; i < 3; i++ {
		if out, _ := a.Request(port, "reserve", 1, "bob", "dec-10", testTimeout); out != OutcomePreReserved {
			t.Fatalf("retry %d: %v", i, out)
		}
	}
}

func TestFullFlightWaitlistsAndPromotes(t *testing.T) {
	sys, cli := deployOne(t, OrgSequential, 1, 2)
	a, _ := NewAgent(cli, "a")
	port := sys.Directory[1]
	for _, p := range []string{"p1", "p2"} {
		if out, _ := a.Request(port, "reserve", 1, p, "dec-10", testTimeout); out != OutcomeOK {
			t.Fatalf("reserve %s: %v", p, out)
		}
	}
	if out, _ := a.Request(port, "reserve", 1, "p3", "dec-10", testTimeout); out != OutcomeWaitList {
		t.Fatalf("overflow reserve: %v", out)
	}
	// Waitlisting is idempotent too.
	if out, _ := a.Request(port, "reserve", 1, "p3", "dec-10", testTimeout); out != OutcomeWaitList {
		t.Fatalf("repeat waitlist: %v", out)
	}
	// A cancel promotes p3 into the freed seat.
	if out, _ := a.Request(port, "cancel", 1, "p1", "dec-10", testTimeout); out != OutcomeCanceled {
		t.Fatal("cancel failed")
	}
	if out, _ := a.Request(port, "cancel", 1, "p3", "dec-10", testTimeout); out != OutcomeCanceled {
		t.Fatalf("promoted passenger not reserved: %v", out)
	}
}

func TestDatesIndependent(t *testing.T) {
	sys, cli := deployOne(t, OrgSequential, 1, 1)
	a, _ := NewAgent(cli, "a")
	port := sys.Directory[1]
	if out, _ := a.Request(port, "reserve", 1, "p1", "dec-10", testTimeout); out != OutcomeOK {
		t.Fatal("reserve dec-10")
	}
	// Same flight, different date: capacity is per date.
	if out, _ := a.Request(port, "reserve", 1, "p2", "dec-11", testTimeout); out != OutcomeOK {
		t.Fatal("reserve dec-11 should have its own capacity")
	}
	if out, _ := a.Request(port, "reserve", 1, "p3", "dec-10", testTimeout); out != OutcomeWaitList {
		t.Fatal("dec-10 should be full")
	}
}

func TestNoSuchFlight(t *testing.T) {
	sys, cli := deployOne(t, OrgSequential, 1, 2)
	a, _ := NewAgent(cli, "a")
	if out, _ := a.Request(sys.RegionPorts["hub"], "reserve", 99, "p", "dec-10", testTimeout); out != OutcomeNoSuchFlight {
		t.Fatalf("unknown flight: %v", out)
	}
}

func TestCapacityInvariantUnderConcurrency(t *testing.T) {
	// The heart of Figure 1: under every organization, concurrent
	// reservations never oversell a date.
	for _, org := range []string{OrgSequential, OrgSerializer, OrgMonitor} {
		t.Run(org, func(t *testing.T) {
			const capacity = 10
			sys, cli := deployOne(t, org, 1, capacity)
			port := sys.Directory[1]
			const clients = 8
			const perClient = 10
			var wg sync.WaitGroup
			outcomes := make(chan string, clients*perClient)
			for cidx := 0; cidx < clients; cidx++ {
				a, err := NewAgent(cli, fmt.Sprintf("a%d", cidx))
				if err != nil {
					t.Fatal(err)
				}
				wg.Add(1)
				go func(cidx int, a *Agent) {
					defer wg.Done()
					for i := 0; i < perClient; i++ {
						pid := fmt.Sprintf("p-%d-%d", cidx, i)
						out, err := a.Request(port, "reserve", 1, pid, "dec-10", testTimeout)
						if err != nil {
							t.Errorf("request: %v", err)
							return
						}
						outcomes <- out
					}
				}(cidx, a)
			}
			wg.Wait()
			close(outcomes)
			ok, wl := 0, 0
			for o := range outcomes {
				switch o {
				case OutcomeOK:
					ok++
				case OutcomeWaitList:
					wl++
				default:
					t.Fatalf("unexpected outcome %q", o)
				}
			}
			if ok != capacity {
				t.Fatalf("org %s: %d seats granted, capacity %d", org, ok, capacity)
			}
			if wl != clients*perClient-capacity {
				t.Fatalf("org %s: %d waitlisted", org, wl)
			}
		})
	}
}

func TestListPassengersViaRegionRequiresGrant(t *testing.T) {
	sys, cli := deployOne(t, OrgSequential, 1, 5)
	a, _ := NewAgent(cli, "manager")
	region := sys.RegionPorts["hub"]
	if out, _ := a.Request(region, "reserve", 1, "carol", "dec-10", testTimeout); out != OutcomeOK {
		t.Fatal("reserve")
	}
	// Ungranted: denied.
	_, outcome, err := a.ListPassengers(region, 1, "dec-10", testTimeout)
	if err != nil || outcome != OutcomeNotPermitted {
		t.Fatalf("ungranted list: %v %v", outcome, err)
	}
	// Grants may only come from the manager's own node.
	if m, err := a.Admin(region, "grant_list_access", testTimeout,
		a.Principal().Node, int64(a.Principal().Guardian)); err != nil || m.Command != OutcomeNotPermitted {
		t.Fatalf("remote grant accepted: %v %v", m, err)
	}
	// An owner-side agent at the hub can grant.
	hub, err := sys.World.Node("hub")
	if err != nil {
		t.Fatal(err)
	}
	owner, _ := NewAgent(hub, "owner")
	if m, err := owner.Admin(region, "grant_list_access", testTimeout,
		a.Principal().Node, int64(a.Principal().Guardian)); err != nil || m.Command != "granted" {
		t.Fatalf("owner grant: %v %v", m, err)
	}
	names, outcome, err := a.ListPassengers(region, 1, "dec-10", testTimeout)
	if err != nil || outcome != "info" {
		t.Fatalf("granted list: %v %v", outcome, err)
	}
	if len(names) != 1 || names[0] != "carol" {
		t.Fatalf("passengers = %v", names)
	}
}

func TestAdminAddDeleteFlight(t *testing.T) {
	sys, cli := deployOne(t, OrgSequential, 1, 3)
	a, _ := NewAgent(cli, "a")
	region := sys.RegionPorts["hub"]
	if m, err := a.Admin(region, "add_flight", testTimeout, int64(7), int64(3)); err != nil || m.Command != "flight_added" {
		t.Fatalf("add_flight: %v %v", m, err)
	}
	if m, _ := a.Admin(region, "add_flight", testTimeout, int64(7), int64(3)); m.Command != "flight_exists" {
		t.Fatalf("duplicate add: %v", m.Command)
	}
	if out, _ := a.Request(region, "reserve", 7, "dan", "dec-12", testTimeout); out != OutcomeOK {
		t.Fatalf("reserve on added flight: %v", out)
	}
	if m, _ := a.Admin(region, "delete_flight", testTimeout, int64(7)); m.Command != "flight_deleted" {
		t.Fatalf("delete: %v", m.Command)
	}
	if out, _ := a.Request(region, "reserve", 7, "erin", "dec-12", testTimeout); out != OutcomeNoSuchFlight {
		t.Fatalf("reserve on deleted flight: %v", out)
	}
	if m, _ := a.Admin(region, "delete_flight", testTimeout, int64(7)); m.Command != OutcomeNoSuchFlight {
		t.Fatalf("re-delete: %v", m.Command)
	}
}

func TestUsageStatistics(t *testing.T) {
	sys, cli := deployOne(t, OrgSequential, 2, 5)
	a, _ := NewAgent(cli, "a")
	region := sys.RegionPorts["hub"]
	for i := 0; i < 3; i++ {
		if out, _ := a.Request(region, "reserve", 1, fmt.Sprintf("p%d", i), "dec-10", testTimeout); out != OutcomeOK {
			t.Fatal("reserve")
		}
	}
	if out, _ := a.Request(region, "reserve", 2, "q", "dec-11", testTimeout); out != OutcomeOK {
		t.Fatal("reserve flight 2")
	}
	m, err := a.Admin(region, "usage", testTimeout)
	if err != nil || m.Command != "usage_info" {
		t.Fatalf("usage: %v %v", m, err)
	}
	got := map[int64]int64{}
	for _, e := range m.Args[0].(xrep.Seq) {
		pair := e.(xrep.Seq)
		got[int64(pair[0].(xrep.Int))] = int64(pair[1].(xrep.Int))
	}
	if got[1] != 3 || got[2] != 1 {
		t.Fatalf("usage = %v", got)
	}
}

func TestFlightRecoversSeatDataAfterCrash(t *testing.T) {
	for _, org := range []string{OrgSequential, OrgSerializer, OrgMonitor} {
		t.Run(org, func(t *testing.T) {
			sys, cli := deployOne(t, org, 1, 3)
			a, _ := NewAgent(cli, "a")
			port := sys.Directory[1]
			for _, p := range []string{"p1", "p2", "p3", "p4"} {
				if _, err := a.Request(port, "reserve", 1, p, "dec-10", testTimeout); err != nil {
					t.Fatal(err)
				}
			}
			if out, _ := a.Request(port, "cancel", 1, "p2", "dec-10", testTimeout); out != OutcomeCanceled {
				t.Fatal("cancel")
			}
			hub, _ := sys.World.Node("hub")
			hub.Crash()
			if err := hub.Restart(); err != nil {
				t.Fatal(err)
			}
			// After recovery: p1, p3 reserved, p4 promoted from waitlist,
			// p2 canceled. Verify through the recovered guardian.
			if out, _ := a.Request(port, "reserve", 1, "p1", "dec-10", testTimeout); out != OutcomePreReserved {
				t.Fatalf("p1 after recovery: %v (permanence violated)", out)
			}
			if out, _ := a.Request(port, "reserve", 1, "p4", "dec-10", testTimeout); out != OutcomePreReserved {
				t.Fatalf("p4 after recovery: %v (promotion lost)", out)
			}
			if out, _ := a.Request(port, "cancel", 1, "p2", "dec-10", testTimeout); out != OutcomeNotReserved {
				t.Fatalf("p2 after recovery: %v (cancel lost)", out)
			}
		})
	}
}

func TestRegionalManagerRecoversDirectory(t *testing.T) {
	sys, cli := deployOne(t, OrgSequential, 3, 2)
	a, _ := NewAgent(cli, "a")
	region := sys.RegionPorts["hub"]
	if out, _ := a.Request(region, "reserve", 2, "zoe", "dec-10", testTimeout); out != OutcomeOK {
		t.Fatal("reserve before crash")
	}
	hub, _ := sys.World.Node("hub")
	hub.Crash()
	if err := hub.Restart(); err != nil {
		t.Fatal(err)
	}
	// The regional manager's port name is stable and its rebuilt directory
	// still routes to the recovered flight guardians.
	out, err := a.Request(region, "reserve", 2, "zoe", "dec-10", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomePreReserved {
		t.Fatalf("post-recovery reserve = %v, want pre_reserved", out)
	}
}

func TestReplyBypassesRegionalManager(t *testing.T) {
	// With the paper's design the reply comes straight from the flight
	// guardian: its SrcGuardian differs from the regional manager's id.
	sys, cli := deployOne(t, OrgSequential, 1, 2)
	a, _ := NewAgent(cli, "a")
	region := sys.RegionPorts["hub"]
	if err := a.proc.SendReplyTo(region, a.reply.Name(), "reserve", int64(1), "pat", "dec-10"); err != nil {
		t.Fatal(err)
	}
	m, st := a.proc.Receive(testTimeout, a.reply)
	if st != guardian.RecvOK {
		t.Fatal(st)
	}
	if m.SrcGuardian == sys.RegionGuardians["hub"] {
		t.Fatal("reply relayed through the regional manager; want direct from flight guardian")
	}
}

func TestRelayAblationRoutesThroughManager(t *testing.T) {
	w := guardian.NewWorld(guardian.Config{})
	if err := RegisterDefs(w); err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(w, SystemConfig{
		Regions:      []RegionConfig{{Node: "hub", Flights: []int64{1}}},
		Capacity:     2,
		Org:          OrgSequential,
		RelayReplies: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	cli := w.MustAddNode("cli")
	a, _ := NewAgent(cli, "a")
	if err := a.proc.SendReplyTo(sys.RegionPorts["hub"], a.reply.Name(), "reserve", int64(1), "pat", "dec-10"); err != nil {
		t.Fatal(err)
	}
	m, st := a.proc.Receive(testTimeout, a.reply)
	if st != guardian.RecvOK {
		t.Fatal(st)
	}
	if m.Command != OutcomeOK {
		t.Fatalf("outcome %v", m.Command)
	}
	if m.SrcGuardian != sys.RegionGuardians["hub"] {
		t.Fatal("relay ablation: reply did not come from the regional manager")
	}
}
