package airline

import (
	"fmt"

	"repro/internal/guardian"
	"repro/internal/wire"
	"repro/internal/xrep"
)

// RegionalDefName is the library name of the regional manager definition.
const RegionalDefName = "airline_regional"

// regionalState is the regional manager's objects: the directory mapping
// flight numbers to flight guardian ports (the paper's
// `directory = map[string, flight_port]`), plus the flight creation
// parameters and the access-control list for passenger listings.
type regionalState struct {
	org        string
	workCostUS int64
	capacity   int64
	relay      bool
	directory  map[int64]xrep.PortName
	acl        *guardian.ACL
}

// RegionalDef returns the regional manager guardian definition (Figures 2
// and 4). Creation arguments:
//
//	flights    Seq of Int — the region's initial flight numbers
//	capacity   Int        — seats per flight per date
//	org        Str        — flight guardian organization (Org* constant)
//	work_us    Int        — per-request simulated work, microseconds
//	relay      Bool       — when true, replies pass back through the
//	                        manager instead of flowing directly from the
//	                        flight guardian to the requester (the E2
//	                        ablation; the paper's design is false)
//
// The manager creates one flight guardian per flight at its own node and
// dispatches requests to them. With relay=false it forwards the original
// replyto, so "the response will go directly from the flight guardian to
// the original requesting process, bypassing the regional manager".
//
// The manager itself recovers after a crash by re-creating its directory;
// the flight guardians recover their own seat data from their own logs.
func RegionalDef() *guardian.GuardianDef {
	return &guardian.GuardianDef{
		TypeName: RegionalDefName,
		Provides: []*guardian.PortType{RegionalPortType},
		Init:     func(ctx *guardian.Ctx) { regionalMain(ctx, false) },
		Recover:  func(ctx *guardian.Ctx) { regionalMain(ctx, true) },
	}
}

func regionalArgs(args xrep.Seq) (*regionalState, []int64, error) {
	if len(args) != 5 {
		return nil, nil, fmt.Errorf("airline: regional manager takes 5 args, got %d", len(args))
	}
	flights, ok1 := args[0].(xrep.Seq)
	capacity, ok2 := args[1].(xrep.Int)
	org, ok3 := args[2].(xrep.Str)
	workUS, ok4 := args[3].(xrep.Int)
	relay, ok5 := args[4].(xrep.Bool)
	if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
		return nil, nil, fmt.Errorf("airline: bad regional manager args %v", args)
	}
	nos := make([]int64, 0, len(flights))
	for _, f := range flights {
		n, ok := f.(xrep.Int)
		if !ok {
			return nil, nil, fmt.Errorf("airline: flight list holds %v", f)
		}
		nos = append(nos, int64(n))
	}
	return &regionalState{
		org:        string(org),
		workCostUS: int64(workUS),
		capacity:   int64(capacity),
		relay:      bool(relay),
		directory:  make(map[int64]xrep.PortName),
		acl:        guardian.NewACL(),
	}, nos, nil
}

func regionalMain(ctx *guardian.Ctx, recovering bool) {
	st, flights, err := regionalArgs(ctx.Args)
	if err != nil {
		ctx.G.SelfDestruct()
		return
	}
	ctx.G.SetState(st)
	g := ctx.G
	log := g.Log()

	// The manager's directory is part of the resource it guards: every
	// change is logged durably before it takes effect (§2.2), and recovery
	// replays the log. The flight guardians recover their own seat data
	// from their own logs; their port names are stable across the crash,
	// so replayed directory entries remain valid.
	addFlight := func(no int64) error {
		created, err := g.Create(FlightDefName, no, st.capacity, st.org, st.workCostUS)
		if err != nil {
			return err
		}
		log.AppendSync(directoryRecord("add", no, created.Ports[0]))
		st.directory[no] = created.Ports[0]
		return nil
	}
	if recovering {
		_, recs, _ := log.Recover()
		for _, r := range recs {
			replayDirectoryRecord(st, r.Data)
		}
	} else {
		for _, no := range flights {
			if err := addFlight(no); err != nil {
				ctx.G.SelfDestruct()
				return
			}
		}
	}

	// forward dispatches a request to the flight guardian. With the
	// paper's design the original replyto rides along, so the flight
	// guardian answers the requester directly; with relay=true the manager
	// interposes a relay port and forwards the answer itself (one extra
	// message and one extra hop of latency — measured in E2).
	forward := func(pr *guardian.Process, m *guardian.Message, args ...any) {
		no := m.Int(0)
		fp, ok := st.directory[no]
		if !ok {
			if !m.ReplyTo.IsZero() {
				_ = pr.Send(m.ReplyTo, OutcomeNoSuchFlight)
			}
			return
		}
		if !st.relay || m.ReplyTo.IsZero() {
			_ = pr.SendReplyTo(fp, m.ReplyTo, m.Command, args...)
			return
		}
		relayPort, err := g.NewPort(ClientReplyType, 1)
		if err != nil {
			return
		}
		finalDest := m.ReplyTo
		if err := pr.SendReplyTo(fp, relayPort.Name(), m.Command, args...); err != nil {
			g.RemovePort(relayPort)
			return
		}
		g.Spawn("relay", func(q *guardian.Process) {
			defer g.RemovePort(relayPort)
			reply, status := q.Receive(guardian.Infinite, relayPort)
			if status != guardian.RecvOK {
				return
			}
			argv := make([]any, len(reply.Args))
			for i, a := range reply.Args {
				argv[i] = a
			}
			_ = q.Send(finalDest, reply.Command, argv...)
		})
	}

	guardian.NewReceiver(ctx.Ports[0]).
		When("reserve", func(pr *guardian.Process, m *guardian.Message) {
			forward(pr, m, m.Args[0], m.Args[1], m.Args[2])
		}).
		When("cancel", func(pr *guardian.Process, m *guardian.Message) {
			forward(pr, m, m.Args[0], m.Args[1], m.Args[2])
		}).
		When("list_passengers", func(pr *guardian.Process, m *guardian.Message) {
			// §2.3: "only a manager can request a passenger list" — the
			// guardian checks the requester's right before dispatching.
			if !st.acl.PermitsMessage(m) {
				if !m.ReplyTo.IsZero() {
					_ = pr.Send(m.ReplyTo, OutcomeNotPermitted)
				}
				return
			}
			forward(pr, m, m.Args[0], m.Args[1])
		}).
		When("add_flight", func(pr *guardian.Process, m *guardian.Message) {
			no := m.Int(0)
			reply := func(cmd string) {
				if !m.ReplyTo.IsZero() {
					_ = pr.Send(m.ReplyTo, cmd)
				}
			}
			if _, dup := st.directory[no]; dup {
				reply("flight_exists")
				return
			}
			if cap := m.Int(1); cap > 0 {
				st.capacity = cap
			}
			if err := addFlight(no); err != nil {
				reply("flight_exists")
				return
			}
			reply("flight_added")
		}).
		When("delete_flight", func(pr *guardian.Process, m *guardian.Message) {
			no := m.Int(0)
			reply := func(cmd string) {
				if !m.ReplyTo.IsZero() {
					_ = pr.Send(m.ReplyTo, cmd)
				}
			}
			fp, ok := st.directory[no]
			if !ok {
				reply(OutcomeNoSuchFlight)
				return
			}
			log.AppendSync(directoryRecord("del", no, xrep.PortName{}))
			delete(st.directory, no)
			if fg, ok := lookupGuardian(g, fp.Guardian); ok {
				fg.SelfDestruct()
			}
			reply("flight_deleted")
		}).
		When("usage", func(pr *guardian.Process, m *guardian.Message) {
			// Administrative statistics: per flight, total reserved seats
			// across all dates (a same-node read of quiescent state).
			if m.ReplyTo.IsZero() {
				return
			}
			out := xrep.Seq{}
			for no, fp := range st.directory {
				fg, ok := lookupGuardian(g, fp.Guardian)
				if !ok {
					continue
				}
				fst, ok := fg.State().(*flightState)
				if !ok {
					continue
				}
				total := 0
				fst.mu.Lock()
				for _, dd := range fst.dates {
					total += len(dd.reserved)
				}
				fst.mu.Unlock()
				out = append(out, xrep.Seq{xrep.Int(no), xrep.Int(total)})
			}
			_ = pr.Send(m.ReplyTo, "usage_info", out)
		}).
		When("grant_list_access", func(pr *guardian.Process, m *guardian.Message) {
			// Physical control (§1, advantage 3): only software at the
			// manager's own node may change who can list passengers.
			reply := func(cmd string) {
				if !m.ReplyTo.IsZero() {
					_ = pr.Send(m.ReplyTo, cmd)
				}
			}
			if m.SrcNode != g.Node().Name() {
				reply(OutcomeNotPermitted)
				return
			}
			st.acl.Allow(guardian.Principal{Node: m.Str(0), Guardian: uint64(m.Int(1))}, "list_passengers")
			reply("granted")
		}).
		WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
			// §3.4 failure arm: a forward of ours named this port as its
			// replyto and was thrown away. The client's retry (or its own
			// timeout) owns recovery; the regional keeps no call state.
		}).
		Loop(ctx.Proc, nil)
}

// directoryRecord encodes a durable directory change.
func directoryRecord(op string, no int64, port xrep.PortName) []byte {
	b, err := wire.MarshalValue(xrep.Seq{xrep.Str(op), xrep.Int(no), port})
	if err != nil {
		panic(err)
	}
	return b
}

// replayDirectoryRecord applies one logged directory change.
func replayDirectoryRecord(st *regionalState, data []byte) {
	v, err := wire.UnmarshalValue(data)
	if err != nil {
		return
	}
	seq, ok := v.(xrep.Seq)
	if !ok || len(seq) != 3 {
		return
	}
	op, _ := seq[0].(xrep.Str)
	no, _ := seq[1].(xrep.Int)
	port, _ := seq[2].(xrep.PortName)
	switch string(op) {
	case "add":
		st.directory[int64(no)] = port
	case "del":
		delete(st.directory, int64(no))
	}
}

// lookupGuardian finds a co-resident guardian by id. Guardians at the same
// node may hold direct references (they were created by each other);
// cross-guardian state is still only reachable via messages or these
// owner-mediated reads.
func lookupGuardian(g *guardian.Guardian, id uint64) (*guardian.Guardian, bool) {
	return g.Node().GuardianByID(id)
}
