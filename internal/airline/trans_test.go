package airline

import (
	"strings"
	"testing"
	"time"

	"repro/internal/guardian"
	"repro/internal/netsim"
)

// deployTwoRegion builds the Figure-2 shape: two regional nodes (east,
// west) with flights 1-2 and 3-4, a UI guardian on a separate office node,
// and a clerk at the office.
func deployTwoRegion(t *testing.T, netCfg netsim.Config, deadlineMS int64) (*System, *Clerk) {
	t.Helper()
	w := guardian.NewWorld(guardian.Config{Net: netCfg})
	if err := RegisterDefs(w); err != nil {
		t.Fatal(err)
	}
	sys, err := Deploy(w, SystemConfig{
		Regions: []RegionConfig{
			{Node: "east", Flights: []int64{1, 2}},
			{Node: "west", Flights: []int64{3, 4}},
		},
		UINodes:    []string{"office"},
		Capacity:   2,
		Org:        OrgMonitor,
		DeadlineMS: deadlineMS,
	})
	if err != nil {
		t.Fatal(err)
	}
	office, err := w.Node("office")
	if err != nil {
		t.Fatal(err)
	}
	clerk, err := NewClerk(office, "clerk")
	if err != nil {
		t.Fatal(err)
	}
	return sys, clerk
}

func TestTransactionReserveAndDone(t *testing.T) {
	sys, clerk := deployTwoRegion(t, netsim.Config{}, 1000)
	if err := clerk.Begin(sys.UIPorts["office"], "cust-1", testTimeout); err != nil {
		t.Fatal(err)
	}
	out, err := clerk.Reserve(1, "dec-10", testTimeout)
	if err != nil || out != OutcomeOK {
		t.Fatalf("reserve: %v %v", out, err)
	}
	// Cross-region reservation in the same transaction.
	out, err = clerk.Reserve(3, "dec-11", testTimeout)
	if err != nil || out != OutcomeOK {
		t.Fatalf("reserve west: %v %v", out, err)
	}
	reserves, cancels, err := clerk.Done(testTimeout)
	if err != nil || reserves != 2 || cancels != 0 {
		t.Fatalf("done: %d/%d %v", reserves, cancels, err)
	}
}

func TestTransactionCancelsDeferred(t *testing.T) {
	sys, clerk := deployTwoRegion(t, netsim.Config{}, 1000)
	// Seed a prior reservation in its own transaction.
	if err := clerk.Begin(sys.UIPorts["office"], "cust-2", testTimeout); err != nil {
		t.Fatal(err)
	}
	if out, _ := clerk.Reserve(1, "dec-10", testTimeout); out != OutcomeOK {
		t.Fatal("seed reserve")
	}
	if _, _, err := clerk.Done(testTimeout); err != nil {
		t.Fatal(err)
	}
	// New transaction: the cancel is deferred, so until done the seat is
	// still held.
	if err := clerk.Begin(sys.UIPorts["office"], "cust-2", testTimeout); err != nil {
		t.Fatal(err)
	}
	out, err := clerk.Cancel(1, "dec-10", testTimeout)
	if err != nil || out != OutcomeDeferred {
		t.Fatalf("cancel: %v %v", out, err)
	}
	// While deferred, another customer cannot take the seat count beyond
	// capacity: seat is still reserved. Verify directly.
	office, _ := sys.World.Node("office")
	a, _ := NewAgent(office, "checker")
	if out, _ := a.Request(sys.Directory[1], "reserve", 1, "cust-2", "dec-10", testTimeout); out != OutcomePreReserved {
		t.Fatalf("seat released before done: %v", out)
	}
	if _, cancels, err := clerk.Done(testTimeout); err != nil || cancels != 1 {
		t.Fatalf("done: cancels=%d err=%v", cancels, err)
	}
	// Now the cancel has been performed.
	if out, _ := a.Request(sys.Directory[1], "cancel", 1, "cust-2", "dec-10", testTimeout); out != OutcomeNotReserved {
		t.Fatalf("seat still held after done: %v", out)
	}
}

func TestTransactionUndoReserve(t *testing.T) {
	sys, clerk := deployTwoRegion(t, netsim.Config{}, 1000)
	if err := clerk.Begin(sys.UIPorts["office"], "cust-3", testTimeout); err != nil {
		t.Fatal(err)
	}
	if out, _ := clerk.Reserve(2, "dec-15", testTimeout); out != OutcomeOK {
		t.Fatal("reserve")
	}
	undone, err := clerk.UndoLast(testTimeout)
	if err != nil || undone != "reserve" {
		t.Fatalf("undo: %q %v", undone, err)
	}
	// "An unwanted reservation can be undone by a cancel" — the seat is
	// free again immediately.
	office, _ := sys.World.Node("office")
	a, _ := NewAgent(office, "checker")
	if out, _ := a.Request(sys.Directory[2], "cancel", 2, "cust-3", "dec-15", testTimeout); out != OutcomeNotReserved {
		t.Fatalf("undo did not release the seat: %v", out)
	}
	if reserves, _, err := clerk.Done(testTimeout); err != nil || reserves != 0 {
		t.Fatalf("done after undo: reserves=%d err=%v", reserves, err)
	}
}

func TestTransactionUndoPendingCancel(t *testing.T) {
	sys, clerk := deployTwoRegion(t, netsim.Config{}, 1000)
	if err := clerk.Begin(sys.UIPorts["office"], "cust-4", testTimeout); err != nil {
		t.Fatal(err)
	}
	if out, _ := clerk.Reserve(1, "dec-10", testTimeout); out != OutcomeOK {
		t.Fatal("reserve")
	}
	if out, _ := clerk.Cancel(1, "dec-10", testTimeout); out != OutcomeDeferred {
		t.Fatal("cancel")
	}
	// Undoing the pending cancel drops it from the history, so done
	// performs no cancels and the seat survives.
	if undone, err := clerk.UndoLast(testTimeout); err != nil || undone != "cancel" {
		t.Fatalf("undo: %q %v", undone, err)
	}
	reserves, cancels, err := clerk.Done(testTimeout)
	if err != nil || reserves != 1 || cancels != 0 {
		t.Fatalf("done: %d/%d %v", reserves, cancels, err)
	}
	office, _ := sys.World.Node("office")
	a, _ := NewAgent(office, "checker")
	if out, _ := a.Request(sys.Directory[1], "reserve", 1, "cust-4", "dec-10", testTimeout); out != OutcomePreReserved {
		t.Fatalf("seat lost after undone cancel: %v", out)
	}
}

func TestUndoEmptyHistory(t *testing.T) {
	sys, clerk := deployTwoRegion(t, netsim.Config{}, 1000)
	if err := clerk.Begin(sys.UIPorts["office"], "cust-5", testTimeout); err != nil {
		t.Fatal(err)
	}
	undone, err := clerk.UndoLast(testTimeout)
	if err != nil || undone != "" {
		t.Fatalf("undo on empty history: %q %v", undone, err)
	}
}

func TestTransactionIllegalFlight(t *testing.T) {
	sys, clerk := deployTwoRegion(t, netsim.Config{}, 1000)
	if err := clerk.Begin(sys.UIPorts["office"], "cust-6", testTimeout); err != nil {
		t.Fatal(err)
	}
	// Figure 5: a flight not in the directory sends "illegal" to the clerk
	// and waits for the next request.
	out, err := clerk.Reserve(42, "dec-10", testTimeout)
	if err != nil || out != OutcomeIllegal {
		t.Fatalf("illegal reserve: %v %v", out, err)
	}
	// The transaction continues normally afterwards.
	if out, _ := clerk.Reserve(1, "dec-10", testTimeout); out != OutcomeOK {
		t.Fatal("transaction dead after illegal request")
	}
	if _, _, err := clerk.Done(testTimeout); err != nil {
		t.Fatal(err)
	}
}

func TestRegionalCrashYieldsCannotCommunicate(t *testing.T) {
	// "A failure of the regional node will cause the timeout arm of the
	// receive statement to be selected ... the information is conveyed to
	// the clerk."
	sys, clerk := deployTwoRegion(t, netsim.Config{}, 150)
	if err := clerk.Begin(sys.UIPorts["office"], "cust-7", testTimeout); err != nil {
		t.Fatal(err)
	}
	east, _ := sys.World.Node("east")
	east.Crash()
	out, err := clerk.Reserve(1, "dec-10", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if out != "can't communicate" {
		t.Fatalf("outcome %q, want can't communicate", out)
	}
	// The west region still works.
	if out, _ := clerk.Reserve(3, "dec-10", testTimeout); out != OutcomeOK {
		t.Fatalf("west reserve after east crash: %v", out)
	}
}

func TestRetryAfterTimeoutIsIdempotent(t *testing.T) {
	// The clerk retries after a timeout; because reserve is idempotent,
	// "no problems result" even if the first attempt actually succeeded.
	sys, clerk := deployTwoRegion(t, netsim.Config{}, 200)
	if err := clerk.Begin(sys.UIPorts["office"], "cust-8", testTimeout); err != nil {
		t.Fatal(err)
	}
	// Sever replies from east to office so the request is performed but
	// the outcome never returns.
	sys.World.Net().SetLink("east", "office", &netsim.Config{LossRate: 1.0})
	out, err := clerk.Reserve(1, "dec-10", testTimeout)
	if err != nil || out != "can't communicate" {
		t.Fatalf("first attempt: %v %v", out, err)
	}
	// Heal and retry: the seat was already taken by cust-8, so the
	// idempotent retry reports pre_reserved — not an error, not a double
	// booking.
	sys.World.Net().SetLink("east", "office", nil)
	out, err = clerk.Reserve(1, "dec-10", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomePreReserved {
		t.Fatalf("retry outcome %q, want pre_reserved", out)
	}
	// Exactly one seat is held.
	east, _ := sys.World.Node("east")
	fgID := uint64(0)
	for _, id := range east.Guardians() {
		if g, ok := east.GuardianByID(id); ok {
			if _, isFlight := g.State().(*flightState); isFlight && g.DefName() == FlightDefName {
				if snap, _ := SnapshotFlight(g, "dec-10"); snap.Reserved > 0 {
					fgID = id
					if snap.Reserved != 1 {
						t.Fatalf("reserved = %d, want 1", snap.Reserved)
					}
				}
			}
		}
	}
	if fgID == 0 {
		t.Fatal("no flight guardian holds the seat")
	}
}

func TestUINodeCrashForgetsTransactions(t *testing.T) {
	// "We have chosen to forget transactions rather than to try and
	// finish them after a crash." After the office node restarts, the old
	// transaction port is gone; the clerk starts a new transaction and
	// redoes the last request safely.
	sys, clerk := deployTwoRegion(t, netsim.Config{}, 500)
	if err := clerk.Begin(sys.UIPorts["office"], "cust-9", testTimeout); err != nil {
		t.Fatal(err)
	}
	if out, _ := clerk.Reserve(1, "dec-10", testTimeout); out != OutcomeOK {
		t.Fatal("reserve")
	}
	office, _ := sys.World.Node("office")
	oldTrans := clerk.TransPort()
	office.Crash()
	if err := office.Restart(); err != nil {
		t.Fatal(err)
	}
	// The owner re-deploys the interface guardian (fresh, no transactions).
	newUI, err := sys.RedeployUI("office", 500)
	if err != nil {
		t.Fatal(err)
	}
	// A new clerk at the restarted node (the old driver guardian was
	// volatile too, like a logged-out terminal).
	clerk2, err := NewClerk(office, "clerk2")
	if err != nil {
		t.Fatal(err)
	}
	// Talking to the old transaction port draws a failure.
	if err := clerk2.proc.SendReplyTo(oldTrans, clerk2.term.Name(), "reserve", int64(1), "dec-10"); err != nil {
		t.Fatal(err)
	}
	if _, err := clerk2.expect("result", 2*time.Second); err == nil ||
		!strings.Contains(err.Error(), "doesn't exist") {
		t.Fatalf("old transaction reachable after crash: %v", err)
	}
	// "To finish the transaction, the clerk starts a new transaction ...
	// beginning with the request being worked on when the node failed."
	if err := clerk2.Begin(newUI, "cust-9", testTimeout); err != nil {
		t.Fatal(err)
	}
	out, err := clerk2.Reserve(1, "dec-10", testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if out != OutcomePreReserved {
		t.Fatalf("redo outcome %q, want pre_reserved (no double booking)", out)
	}
	if _, _, err := clerk2.Done(testTimeout); err != nil {
		t.Fatal(err)
	}
}

func TestManyConcurrentTransactions(t *testing.T) {
	sys, _ := deployTwoRegion(t, netsim.Config{}, 1000)
	office, _ := sys.World.Node("office")
	const clerks = 6
	errs := make(chan error, clerks)
	for i := 0; i < clerks; i++ {
		go func(i int) {
			clerk, err := NewClerk(office, "c")
			if err != nil {
				errs <- err
				return
			}
			if err := clerk.Begin(sys.UIPorts["office"], "cust", testTimeout); err != nil {
				errs <- err
				return
			}
			// Each clerk reserves a distinct date so all succeed.
			date := "dec-" + string(rune('a'+i))
			if out, err := clerk.Reserve(1, date, testTimeout); err != nil || out != OutcomeOK {
				errs <- err
				return
			}
			_, _, err = clerk.Done(testTimeout)
			errs <- err
		}(i)
	}
	for i := 0; i < clerks; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}
