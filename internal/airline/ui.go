package airline

import (
	"fmt"
	"time"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

// UIDefName is the library name of the user-interface guardian (U_j).
const UIDefName = "airline_ui"

// uiState is the interface guardian's objects: the directory mapping
// flight numbers to regional manager ports, and the reply deadline used by
// transaction processes (the paper's expression e, "a delay long enough to
// permit the request to complete under reasonable circumstances").
type uiState struct {
	directory map[int64]xrep.PortName
	deadline  time.Duration
}

// UIDef returns the user-interface guardian definition. Creation
// arguments:
//
//	directory   Seq of Seq{Int flight_no, PortName regional_port}
//	deadline_ms Int — the timeout expression e of Figure 5, milliseconds
//
// The guardian "guards the entire airline data base and provides
// transactions that consist of sequences of requests": begin_transaction
// forks a process to handle a transaction for a single customer (Figure
// 5's do_trans), whose private port name is returned to the clerk.
//
// The definition has no Recover on purpose: §3.5 chooses "to forget
// transactions rather than to try and finish them after a crash" — after a
// restart the node owner re-creates the interface guardian fresh, and
// clerks start new transactions.
func UIDef() *guardian.GuardianDef {
	return &guardian.GuardianDef{
		TypeName: UIDefName,
		Provides: []*guardian.PortType{UIPortType},
		Init:     uiMain,
	}
}

func uiArgs(args xrep.Seq) (*uiState, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("airline: ui guardian takes 2 args, got %d", len(args))
	}
	dir, ok1 := args[0].(xrep.Seq)
	deadlineMS, ok2 := args[1].(xrep.Int)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("airline: bad ui guardian args %v", args)
	}
	st := &uiState{
		directory: make(map[int64]xrep.PortName),
		deadline:  time.Duration(deadlineMS) * time.Millisecond,
	}
	for _, e := range dir {
		pair, ok := e.(xrep.Seq)
		if !ok || len(pair) != 2 {
			return nil, fmt.Errorf("airline: bad directory entry %v", e)
		}
		no, ok1 := pair[0].(xrep.Int)
		port, ok2 := pair[1].(xrep.PortName)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("airline: bad directory entry %v", e)
		}
		st.directory[int64(no)] = port
	}
	return st, nil
}

// DirectoryArg builds the ui guardian's directory creation argument.
func DirectoryArg(entries map[int64]xrep.PortName) xrep.Seq {
	out := make(xrep.Seq, 0, len(entries))
	for no, port := range entries {
		out = append(out, xrep.Seq{xrep.Int(no), port})
	}
	return out
}

func uiMain(ctx *guardian.Ctx) {
	st, err := uiArgs(ctx.Args)
	if err != nil {
		ctx.G.SelfDestruct()
		return
	}
	ctx.G.SetState(st)
	g := ctx.G
	guardian.NewReceiver(ctx.Ports[0]).
		When("begin_transaction", func(pr *guardian.Process, m *guardian.Message) {
			if m.ReplyTo.IsZero() {
				return
			}
			passenger := m.Str(0)
			clerk := m.ReplyTo
			transPort, err := g.NewPort(TransPortType, 16)
			if err != nil {
				return
			}
			g.Spawn("do_trans", func(q *guardian.Process) {
				doTrans(q, st, transPort, clerk, passenger)
			})
			_ = pr.Send(clerk, "trans", transPort.Name())
		}).
		WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
			// §3.4 failure arm: a discarded message named this port as its
			// replyto. Nothing to undo at the front desk; the transaction
			// process owns its own conversation with the clerk.
		}).
		Loop(ctx.Proc, nil)
}

// transEntry is one history item of a transaction (the paper's
// trans_history data abstraction).
type transEntry struct {
	op     string // "reserve" (performed) or "cancel" (pending)
	flight int64
	date   string
}

// doTrans is Figure 5's do_trans procedure: it handles one transaction
// with a clerk. Reserves are performed immediately and their results
// reported; cancels are saved until the transaction finishes "to permit
// the customer a late change of mind"; undo_last undoes the most recent
// request (an unwanted reservation is undone by a cancel, a pending cancel
// is simply dropped); done performs all saved cancels and ends the
// process.
func doTrans(q *guardian.Process, st *uiState, transPort *guardian.Port, clerk xrep.PortName, passenger string) {
	g := q.Guardian()
	defer g.RemovePort(transPort)

	var history []transEntry

	// perform sends one request to the region owning the flight and waits
	// for the outcome on a fresh reply port, timing out after the deadline
	// expression e. After a timeout "nothing is known about the true state
	// of affairs" — the outcome string reflects that.
	perform := func(op string, flight int64, date string) string {
		region, ok := st.directory[flight]
		if !ok {
			return OutcomeIllegal
		}
		s, err := g.NewPort(ClientReplyType, 4)
		if err != nil {
			return OutcomeIllegal
		}
		defer g.RemovePort(s)
		if err := q.SendReplyTo(region, s.Name(), op, flight, passenger, date); err != nil {
			return OutcomeIllegal
		}
		m, status := q.Receive(st.deadline, s)
		switch status {
		case guardian.RecvOK:
			if m.IsFailure() {
				return "can't communicate"
			}
			return m.Command
		case guardian.RecvTimeout:
			return "can't communicate"
		default:
			return "killed"
		}
	}

	report := func(cmd string, args ...any) {
		_ = q.Send(clerk, cmd, args...)
	}

	finished := false
	rcv := guardian.NewReceiver(transPort).
		When("reserve", func(_ *guardian.Process, m *guardian.Message) {
			flight, date := m.Int(0), m.Str(1)
			outcome := perform("reserve", flight, date)
			if outcome == OutcomeOK || outcome == OutcomeWaitList {
				history = append(history, transEntry{op: "reserve", flight: flight, date: date})
			}
			report("result", "reserve", flight, date, outcome)
		}).
		When("cancel", func(_ *guardian.Process, m *guardian.Message) {
			// "Cancel requests are not done immediately ... but are
			// processed at the time the transaction finishes."
			flight, date := m.Int(0), m.Str(1)
			if _, ok := st.directory[flight]; !ok {
				report("result", "cancel", flight, date, OutcomeIllegal)
				return
			}
			history = append(history, transEntry{op: "cancel", flight: flight, date: date})
			report("result", "cancel", flight, date, OutcomeDeferred)
		}).
		When("undo_last", func(_ *guardian.Process, m *guardian.Message) {
			if len(history) == 0 {
				report("nothing_to_undo")
				return
			}
			last := history[len(history)-1]
			history = history[:len(history)-1]
			switch last.op {
			case "reserve":
				// "An unwanted reservation can be undone by a cancel."
				outcome := perform("cancel", last.flight, last.date)
				report("undone", "reserve", last.flight, last.date)
				_ = outcome
			case "cancel":
				// A pending cancel simply leaves the history.
				report("undone", "cancel", last.flight, last.date)
			}
		}).
		When("done", func(_ *guardian.Process, m *guardian.Message) {
			// Perform all saved cancels, then finish.
			reserves, cancels := 0, 0
			for _, e := range history {
				switch e.op {
				case "reserve":
					reserves++
				case "cancel":
					perform("cancel", e.flight, e.date)
					cancels++
				}
			}
			report("trans_done", reserves, cancels)
			finished = true // "this terminates the process"
		}).
		WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
			// §3.4 failure arm: a clerk request named the transaction port
			// as its replyto and was discarded — or the clerk's own port
			// vanished. Abandon the transaction; its saved cancels die with
			// it, exactly as an unfinished paper transaction would.
			finished = true
		})

	for !finished {
		if rcv.RunOnce(q) == guardian.RecvKilled {
			return
		}
	}
}
