package airline

import (
	"fmt"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

// RegionConfig places one geographical region at one node, mirroring
// Figure 2: "each node belonging to the airline has one guardian P_j for
// the region in which it resides".
type RegionConfig struct {
	// Node is the region's node address (created if absent).
	Node string
	// Flights lists the region's flight numbers. A flight guardian is
	// "assigned to the region containing the flight's destination".
	Flights []int64
}

// SystemConfig describes a whole airline deployment.
type SystemConfig struct {
	// Regions of the distributed data base. One region at one node gives
	// the centralized baseline of §2.3; several give Figure 2.
	Regions []RegionConfig
	// UINodes host user-interface guardians (U_j). Often the same nodes
	// as the regions; any node works.
	UINodes []string
	// Capacity is seats per flight per date.
	Capacity int64
	// Org selects the flight guardian organization (Org* constant).
	Org string
	// WorkCostUS is the simulated per-request work in microseconds.
	WorkCostUS int64
	// RelayReplies, when true, routes replies back through the regional
	// manager instead of directly from flight guardian to requester (the
	// E2 ablation).
	RelayReplies bool
	// DeadlineMS is the transaction processes' reply deadline (Figure 5's
	// expression e), in milliseconds. Zero means 1000.
	DeadlineMS int64
}

// System is a deployed airline: the port names a client needs.
type System struct {
	World *guardian.World
	// RegionPorts maps node → regional manager port.
	RegionPorts map[string]xrep.PortName
	// Directory maps flight number → owning region's port.
	Directory map[int64]xrep.PortName
	// UIPorts maps node → interface guardian port.
	UIPorts map[string]xrep.PortName
	// RegionGuardians maps node → regional manager guardian id.
	RegionGuardians map[string]uint64
}

// RegisterDefs adds the airline guardian definitions to the world library.
// Safe to call once per world.
func RegisterDefs(w *guardian.World) error {
	for _, def := range []*guardian.GuardianDef{FlightDef(), RegionalDef(), UIDef()} {
		if err := w.Register(def); err != nil {
			return err
		}
	}
	return nil
}

// Deploy builds the system of Figure 2 in the given world: one regional
// manager guardian per region (each creating its flight guardians
// locally), and one interface guardian per UI node holding the full
// directory.
func Deploy(w *guardian.World, cfg SystemConfig) (*System, error) {
	if cfg.DeadlineMS == 0 {
		cfg.DeadlineMS = 1000
	}
	sys := &System{
		World:           w,
		RegionPorts:     make(map[string]xrep.PortName),
		Directory:       make(map[int64]xrep.PortName),
		UIPorts:         make(map[string]xrep.PortName),
		RegionGuardians: make(map[string]uint64),
	}
	ensureNode := func(name string) (*guardian.Node, error) {
		if n, err := w.Node(name); err == nil {
			return n, nil
		}
		return w.AddNode(name)
	}
	for _, rc := range cfg.Regions {
		n, err := ensureNode(rc.Node)
		if err != nil {
			return nil, err
		}
		flights := make(xrep.Seq, len(rc.Flights))
		for i, f := range rc.Flights {
			flights[i] = xrep.Int(f)
		}
		created, err := n.Bootstrap(RegionalDefName,
			flights, cfg.Capacity, cfg.Org, cfg.WorkCostUS, cfg.RelayReplies)
		if err != nil {
			return nil, fmt.Errorf("airline: deploying region %s: %w", rc.Node, err)
		}
		sys.RegionPorts[rc.Node] = created.Ports[0]
		sys.RegionGuardians[rc.Node] = created.GuardianID
		for _, f := range rc.Flights {
			if _, dup := sys.Directory[f]; dup {
				return nil, fmt.Errorf("airline: flight %d in two regions", f)
			}
			sys.Directory[f] = created.Ports[0]
		}
	}
	for _, un := range cfg.UINodes {
		n, err := ensureNode(un)
		if err != nil {
			return nil, err
		}
		created, err := n.Bootstrap(UIDefName, DirectoryArg(sys.Directory), cfg.DeadlineMS)
		if err != nil {
			return nil, fmt.Errorf("airline: deploying UI at %s: %w", un, err)
		}
		sys.UIPorts[un] = created.Ports[0]
	}
	return sys, nil
}

// RedeployUI re-creates the interface guardian at a node after a crash and
// restart — the owner's recovery action for a guardian that is
// deliberately not recovered automatically (§3.5: transactions are
// forgotten). It returns the fresh UI port.
func (s *System) RedeployUI(nodeName string, deadlineMS int64) (xrep.PortName, error) {
	n, err := s.World.Node(nodeName)
	if err != nil {
		return xrep.PortName{}, err
	}
	if deadlineMS == 0 {
		deadlineMS = 1000
	}
	created, err := n.Bootstrap(UIDefName, DirectoryArg(s.Directory), deadlineMS)
	if err != nil {
		return xrep.PortName{}, err
	}
	s.UIPorts[nodeName] = created.Ports[0]
	return created.Ports[0], nil
}
