package airline

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/amo"
	"repro/internal/csync"
	"repro/internal/guardian"
	"repro/internal/wire"
	"repro/internal/xrep"
)

// FlightDefName is the library name of the flight guardian definition.
const FlightDefName = "airline_flight"

// flightState is the guardian's objects: the seat data for one flight,
// shared by the guardian's processes and coordinated per organization.
type flightState struct {
	flightNo int64
	capacity int
	org      string
	// workCost simulates the real work of performing a request (I/O,
	// validation); it is what makes concurrency matter in experiment E1.
	workCost time.Duration

	mu    sync.Mutex // guards the dates map itself
	dates map[string]*dateData

	// Organization-specific synchronization objects.
	serializer *csync.Serializer[string] // Fig 1b
	dateLock   *csync.KeyLock[string]    // Fig 1c
}

// dateData is the seat data for one (flight, date). Access is serialized
// per date by the organization's synchronization object, so no further
// locking is needed inside.
type dateData struct {
	reserved map[string]bool
	waitlist []string
}

func (st *flightState) date(d string) *dateData {
	st.mu.Lock()
	defer st.mu.Unlock()
	dd, ok := st.dates[d]
	if !ok {
		dd = &dateData{reserved: make(map[string]bool)}
		st.dates[d] = dd
	}
	return dd
}

// apply performs one reserve or cancel against the date's data and returns
// the outcome. It must be called while holding possession of the date.
// The logic is deterministic, so recovery replays the log through the same
// function.
func (dd *dateData) apply(op, passenger string, capacity int) string {
	switch op {
	case "reserve":
		if dd.reserved[passenger] {
			return OutcomePreReserved
		}
		if len(dd.reserved) < capacity {
			dd.reserved[passenger] = true
			return OutcomeOK
		}
		for _, w := range dd.waitlist {
			if w == passenger {
				return OutcomeWaitList // already waiting; idempotent
			}
		}
		dd.waitlist = append(dd.waitlist, passenger)
		return OutcomeWaitList
	case "cancel":
		if dd.reserved[passenger] {
			delete(dd.reserved, passenger)
			// Promote the oldest waitlisted passenger, if any.
			if len(dd.waitlist) > 0 {
				dd.reserved[dd.waitlist[0]] = true
				dd.waitlist = dd.waitlist[1:]
			}
			return OutcomeCanceled
		}
		// Dropping out of the waitlist also counts as a cancel.
		for i, w := range dd.waitlist {
			if w == passenger {
				dd.waitlist = append(dd.waitlist[:i], dd.waitlist[i+1:]...)
				return OutcomeCanceled
			}
		}
		return OutcomeNotReserved
	default:
		panic("airline: unknown op " + op)
	}
}

// passengers returns the reserved passengers, sorted.
func (dd *dateData) passengers() []string {
	out := make([]string, 0, len(dd.reserved))
	for p := range dd.reserved {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// FlightDef returns the flight guardian definition. Creation arguments:
// flight_no (int), capacity (int), organization (string, an Org*
// constant), work_cost_us (int, simulated per-request work in
// microseconds).
//
// The guardian logs every completed reserve/cancel (log-then-reply, §2.2)
// and recovers its seat data by replaying the log.
//
// Besides its native port it serves an at-most-once port. The paper makes
// reserve and cancel deliberately idempotent so §3.5 retries are safe;
// what idempotence cannot give a retrying client is the ORIGINAL outcome
// (a re-sent reserve that first answered ok reports pre_reserved). The amo
// filter's cached reply restores that. The filter keeps no durable state:
// after a crash the operations' own idempotence is protection enough.
func FlightDef() *guardian.GuardianDef {
	return &guardian.GuardianDef{
		TypeName: FlightDefName,
		Provides: []*guardian.PortType{FlightPortType, amo.ReqType},
		Init:     func(ctx *guardian.Ctx) { flightMain(ctx) },
		Recover:  func(ctx *guardian.Ctx) { flightMain(ctx) },
	}
}

func flightArgs(args xrep.Seq) (*flightState, error) {
	if len(args) != 4 {
		return nil, fmt.Errorf("airline: flight guardian takes 4 args, got %d", len(args))
	}
	no, ok1 := args[0].(xrep.Int)
	capacity, ok2 := args[1].(xrep.Int)
	org, ok3 := args[2].(xrep.Str)
	workUS, ok4 := args[3].(xrep.Int)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return nil, fmt.Errorf("airline: bad flight guardian args %v", args)
	}
	switch string(org) {
	case OrgSequential, OrgSerializer, OrgMonitor:
	default:
		return nil, fmt.Errorf("airline: unknown organization %q", org)
	}
	return &flightState{
		flightNo: int64(no),
		capacity: int(capacity),
		org:      string(org),
		workCost: time.Duration(workUS) * time.Microsecond,
		dates:    make(map[string]*dateData),
	}, nil
}

// logRecord encodes one durable operation record.
func logRecord(op, passenger, date string) []byte {
	b, err := wire.MarshalValue(xrep.Seq{xrep.Str(op), xrep.Str(passenger), xrep.Str(date)})
	if err != nil {
		panic(err) // strings always encode
	}
	return b
}

func replayRecord(st *flightState, data []byte) {
	v, err := wire.UnmarshalValue(data)
	if err != nil {
		return // torn record: ignore, as a real log scanner would
	}
	seq, ok := v.(xrep.Seq)
	if !ok || len(seq) != 3 {
		return
	}
	op, _ := seq[0].(xrep.Str)
	pid, _ := seq[1].(xrep.Str)
	date, _ := seq[2].(xrep.Str)
	st.date(string(date)).apply(string(op), string(pid), st.capacity)
}

func flightMain(ctx *guardian.Ctx) {
	st, err := flightArgs(ctx.Args)
	if err != nil {
		// A malformed creation is a programming error in the creator;
		// the guardian refuses to serve.
		ctx.G.SelfDestruct()
		return
	}
	switch st.org {
	case OrgSerializer:
		st.serializer = csync.NewSerializer[string]()
	case OrgMonitor:
		st.dateLock = csync.NewKeyLock[string]()
	}
	ctx.G.SetState(st)
	log := ctx.G.Log()
	if ctx.Recovering {
		_, recs, _ := log.Recover()
		for _, r := range recs {
			replayRecord(st, r.Data)
		}
	}

	g := ctx.G
	// perform executes one data-touching request while possession of the
	// date is held, logging before replying (permanence of effect).
	perform := func(pr *guardian.Process, m *guardian.Message, op string) {
		pid, date := m.Str(1), m.Str(2)
		if st.workCost > 0 {
			pr.Pause(st.workCost)
		}
		dd := st.date(date)
		outcome := dd.apply(op, pid, st.capacity)
		// Only state-changing outcomes need a log record; idempotent
		// no-ops (pre_reserved, not_reserved) do not change state, and
		// replaying them is harmless anyway.
		log.AppendSync(logRecord(op, pid, date))
		if !m.ReplyTo.IsZero() {
			_ = pr.Send(m.ReplyTo, outcome)
		}
	}

	// dispatch routes a request according to the organization.
	dispatch := func(pr *guardian.Process, m *guardian.Message, op string) {
		date := m.Str(2)
		switch st.org {
		case OrgSequential: // Fig 1a: process p does it all
			perform(pr, m, op)
		case OrgSerializer: // Fig 1b: p consults S, forks q_i when free
			st.serializer.Submit(date, func() {
				g.Spawn("q", func(q *guardian.Process) {
					perform(q, m, op)
					st.serializer.Done(date)
				})
			})
		case OrgMonitor: // Fig 1c: fork immediately; q_i synchronize via M
			g.Spawn("q", func(q *guardian.Process) {
				st.dateLock.StartRequest(date)
				defer st.dateLock.EndRequest(date)
				perform(q, m, op)
			})
		}
	}

	checkFlight := func(pr *guardian.Process, m *guardian.Message) bool {
		if m.Int(0) != st.flightNo {
			if !m.ReplyTo.IsZero() {
				_ = pr.Send(m.ReplyTo, OutcomeNoSuchFlight)
			}
			return false
		}
		return true
	}

	// withDate runs fn holding possession of the date under the guardian's
	// organization, blocking the calling process until fn completes.
	withDate := func(pr *guardian.Process, date string, fn func(dd *dateData)) {
		switch st.org {
		case OrgSerializer:
			done := make(chan struct{})
			st.serializer.Submit(date, func() {
				fn(st.date(date))
				st.serializer.Done(date)
				close(done)
			})
			<-done
		case OrgMonitor:
			st.dateLock.StartRequest(date)
			fn(st.date(date))
			st.dateLock.EndRequest(date)
		default:
			fn(st.date(date))
		}
	}

	// amoExec serves the at-most-once port: same operations, but executed
	// synchronously on the session process so the dedup filter can cache
	// the outcome before the reply leaves.
	amoExec := func(pr *guardian.Process, req *amo.Request) (string, xrep.Seq) {
		argInt := func(i int) int64 {
			if i < len(req.Args) {
				if n, ok := req.Args[i].(xrep.Int); ok {
					return int64(n)
				}
			}
			return -1
		}
		argStr := func(i int) string {
			if i < len(req.Args) {
				if s, ok := req.Args[i].(xrep.Str); ok {
					return string(s)
				}
			}
			return ""
		}
		if argInt(0) != st.flightNo {
			return OutcomeNoSuchFlight, nil
		}
		switch req.Command {
		case "reserve", "cancel":
			pid, date := argStr(1), argStr(2)
			var outcome string
			withDate(pr, date, func(dd *dateData) {
				if st.workCost > 0 {
					pr.Pause(st.workCost)
				}
				outcome = dd.apply(req.Command, pid, st.capacity)
				log.AppendSync(logRecord(req.Command, pid, date))
			})
			return outcome, nil
		case "list_passengers":
			var names []string
			withDate(pr, argStr(1), func(dd *dateData) {
				names = dd.passengers()
			})
			seq := make(xrep.Seq, len(names))
			for i, nm := range names {
				seq[i] = xrep.Str(nm)
			}
			return "info", xrep.Seq{seq}
		}
		return OutcomeNoSuchFlight, nil
	}
	dedup := amo.NewDedup(amo.DedupOptions{})

	guardian.NewReceiver(ctx.Ports[0], ctx.Ports[1]).
		Intercept(dedup.Hook(amoExec), amo.ReqCommand).
		When("reserve", func(pr *guardian.Process, m *guardian.Message) {
			if checkFlight(pr, m) {
				dispatch(pr, m, "reserve")
			}
		}).
		When("cancel", func(pr *guardian.Process, m *guardian.Message) {
			if checkFlight(pr, m) {
				dispatch(pr, m, "cancel")
			}
		}).
		When("list_passengers", func(pr *guardian.Process, m *guardian.Message) {
			if !checkFlight(pr, m) {
				return
			}
			date := m.Str(1)
			// Listing is a read: take possession briefly for a consistent
			// snapshot under the concurrent organizations.
			var names []string
			switch st.org {
			case OrgMonitor:
				st.dateLock.StartRequest(date)
				names = st.date(date).passengers()
				st.dateLock.EndRequest(date)
			case OrgSerializer:
				done := make(chan struct{})
				st.serializer.Submit(date, func() {
					names = st.date(date).passengers()
					st.serializer.Done(date)
					close(done)
				})
				<-done
			default:
				names = st.date(date).passengers()
			}
			if !m.ReplyTo.IsZero() {
				seq := make(xrep.Seq, len(names))
				for i, nm := range names {
					seq[i] = xrep.Str(nm)
				}
				_ = pr.Send(m.ReplyTo, "info", seq)
			}
		}).
		WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
			// §3.4 failure arm: a discarded message named this port as its
			// replyto. Reservation state is already settled; the at-most-
			// once layer re-answers a retry from its duplicate table.
		}).
		Loop(ctx.Proc, nil)
}

// FlightSnapshot is a read-only view of a flight's data for one date, used
// by tests and the usage statistics.
type FlightSnapshot struct {
	Reserved int
	Waiting  int
}

// SnapshotAllDates inspects every date a flight guardian has touched.
// Quiescent-guardians-only, like SnapshotFlight.
func SnapshotAllDates(g *guardian.Guardian) (map[string]FlightSnapshot, bool) {
	st, ok := g.State().(*flightState)
	if !ok {
		return nil, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make(map[string]FlightSnapshot, len(st.dates))
	for d, dd := range st.dates {
		out[d] = FlightSnapshot{Reserved: len(dd.reserved), Waiting: len(dd.waitlist)}
	}
	return out, true
}

// FlightCapacity reports the guardian's configured seats per date — the
// bound a no-overbooking checker holds every date's Reserved count to.
func FlightCapacity(g *guardian.Guardian) (int, bool) {
	st, ok := g.State().(*flightState)
	if !ok {
		return 0, false
	}
	return st.capacity, true
}

// SnapshotFlight inspects a flight guardian's state. Only for tests and
// in-process tooling at the same node; it takes the date maps' mutex but
// not per-date possession, so use it only on quiescent guardians.
func SnapshotFlight(g *guardian.Guardian, date string) (FlightSnapshot, bool) {
	st, ok := g.State().(*flightState)
	if !ok {
		return FlightSnapshot{}, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	dd, ok := st.dates[date]
	if !ok {
		return FlightSnapshot{}, true
	}
	return FlightSnapshot{Reserved: len(dd.reserved), Waiting: len(dd.waitlist)}, true
}
