// Package airline implements the paper's running example: the Airline
// Reservation System of §2.3 and §3.5 (Figures 1, 2, 4 and 5).
//
// The system is a group of guardians, each guarding a discernible
// resource:
//
//   - a flight guardian guards the data for a single flight, organized in
//     any of the three ways of Figure 1 (one-at-a-time, serializer,
//     monitor);
//   - a regional manager guardian (P_j, Figure 4) guards the data for a
//     geographical region: it owns the region's flight guardians and
//     dispatches requests to them, with replies flowing directly from the
//     flight guardian to the original requester;
//   - a user-interface guardian (U_j) guards access for one node's users:
//     it forks a transaction process per clerk conversation (Figure 5),
//     keeping the conversation state — history, deferred cancellations —
//     in the process.
//
// Reserve and cancel are atomic, idempotent, and logged for permanence of
// effect; transactions are deliberately forgotten at a crash (§3.5).
package airline

import (
	"repro/internal/guardian"
	"repro/internal/xrep"
)

// Request outcomes, used as reply command identifiers exactly as the paper
// writes them.
const (
	OutcomeOK           = "ok"
	OutcomeFull         = "full"
	OutcomeWaitList     = "wait_list"
	OutcomePreReserved  = "pre_reserved"
	OutcomeNoSuchFlight = "no_such_flight"
	OutcomeCanceled     = "canceled"
	OutcomeNotReserved  = "not_reserved"
	OutcomeNotPermitted = "not_permitted"
	OutcomeIllegal      = "illegal"
	OutcomeDeferred     = "deferred"
)

// Flight guardian organizations (Figure 1).
const (
	// OrgSequential (Fig 1a): a single process handles requests one at a
	// time.
	OrgSequential = "sequential"
	// OrgSerializer (Fig 1b): a single process synchronizes requests and
	// hands them to forked worker processes when the flight data of
	// interest are available.
	OrgSerializer = "serializer"
	// OrgMonitor (Fig 1c): a process is forked per request; the forked
	// processes synchronize with each other using a monitor providing
	// start_request(date) and end_request(date).
	OrgMonitor = "monitor"
)

// FlightPortType describes the port of a flight guardian (and the
// request half of the paper's regional_port): reserve, cancel and
// list_passengers, each paired with its expected replies.
var FlightPortType = guardian.NewPortType("flight_port").
	Msg("reserve", xrep.KindInt, xrep.KindString, xrep.KindString).
	Replies("reserve", OutcomeOK, OutcomeFull, OutcomeWaitList, OutcomePreReserved, OutcomeNoSuchFlight).
	Msg("cancel", xrep.KindInt, xrep.KindString, xrep.KindString).
	Replies("cancel", OutcomeCanceled, OutcomeNotReserved, OutcomeNoSuchFlight).
	Msg("list_passengers", xrep.KindInt, xrep.KindString).
	Replies("list_passengers", "info", OutcomeNoSuchFlight)

// RegionalPortType describes the port of a regional manager guardian
// (P_j): the flight requests plus the administrative functions §2.3
// sketches — adding and deleting flights, usage statistics, and managing
// who may list passengers.
var RegionalPortType = guardian.NewPortType("regional_port").
	Msg("reserve", xrep.KindInt, xrep.KindString, xrep.KindString).
	Replies("reserve", OutcomeOK, OutcomeFull, OutcomeWaitList, OutcomePreReserved, OutcomeNoSuchFlight).
	Msg("cancel", xrep.KindInt, xrep.KindString, xrep.KindString).
	Replies("cancel", OutcomeCanceled, OutcomeNotReserved, OutcomeNoSuchFlight).
	Msg("list_passengers", xrep.KindInt, xrep.KindString).
	Replies("list_passengers", "info", OutcomeNoSuchFlight, OutcomeNotPermitted).
	Msg("add_flight", xrep.KindInt, xrep.KindInt).
	Replies("add_flight", "flight_added", "flight_exists").
	Msg("delete_flight", xrep.KindInt).
	Replies("delete_flight", "flight_deleted", OutcomeNoSuchFlight).
	Msg("usage").
	Replies("usage", "usage_info").
	Msg("grant_list_access", xrep.KindString, xrep.KindInt).
	Replies("grant_list_access", "granted", OutcomeNotPermitted)

// ClientReplyType describes a port able to receive every reply the flight
// and regional guardians produce; requesters (and the UI guardian's
// transaction processes) make ports of this type.
var ClientReplyType = guardian.NewPortType("client_reply_port").
	Msg(OutcomeOK).
	Msg(OutcomeFull).
	Msg(OutcomeWaitList).
	Msg(OutcomePreReserved).
	Msg(OutcomeNoSuchFlight).
	Msg(OutcomeCanceled).
	Msg(OutcomeNotReserved).
	Msg(OutcomeNotPermitted).
	Msg("info", xrep.KindSeq).
	Msg("flight_added").
	Msg("flight_exists").
	Msg("flight_deleted").
	Msg("usage_info", xrep.KindSeq).
	Msg("granted")

// UIPortType describes the user-interface guardian's public port: clerks
// open a transaction for one customer and receive the name of the
// transaction process's private port.
var UIPortType = guardian.NewPortType("ui_port").
	Msg("begin_transaction", xrep.KindString).
	Replies("begin_transaction", "trans")

// TransPortType is the private port of one transaction process (the
// paper's transport): the requests a clerk may issue during a
// conversation.
var TransPortType = guardian.NewPortType("trans_port").
	Msg("reserve", xrep.KindInt, xrep.KindString).
	Msg("cancel", xrep.KindInt, xrep.KindString).
	Msg("undo_last").
	Msg("done")

// TermPortType is the clerk's terminal port (the paper's termport): every
// message the transaction process sends back to the display.
var TermPortType = guardian.NewPortType("term_port").
	Msg("trans", xrep.KindPortName).
	Msg("result", xrep.KindString, xrep.KindInt, xrep.KindString, xrep.KindString).
	Msg("undone", xrep.KindString, xrep.KindInt, xrep.KindString).
	Msg("nothing_to_undo").
	Msg("trans_done", xrep.KindInt, xrep.KindInt)
