package airline

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

// Client errors.
var (
	ErrTimeout = errors.New("airline: timed out waiting for reply")
	ErrKilled  = errors.New("airline: client guardian destroyed")
)

// Agent is a direct requester of flight/regional guardians: the workload
// generator used by the Figure-1 and Figure-2 experiments, issuing
// reserve/cancel/list requests without the transaction machinery.
type Agent struct {
	proc  *guardian.Process
	reply *guardian.Port
}

// NewAgent creates a driver guardian at node and an agent process on it.
func NewAgent(node *guardian.Node, name string) (*Agent, error) {
	g, proc, err := node.NewDriver(name)
	if err != nil {
		return nil, err
	}
	reply, err := g.NewPort(ClientReplyType, 64)
	if err != nil {
		return nil, err
	}
	return &Agent{proc: proc, reply: reply}, nil
}

// Process exposes the agent's process for ad-hoc sends.
func (a *Agent) Process() *guardian.Process { return a.proc }

// Principal returns the agent's access-control identity.
func (a *Agent) Principal() guardian.Principal {
	return guardian.Principal{Node: a.proc.Guardian().Node().Name(), Guardian: a.proc.Guardian().ID()}
}

// Request issues one reserve/cancel to the given port and waits for the
// outcome. It returns the outcome command identifier ("ok", "full",
// "wait_list", "pre_reserved", "canceled", "not_reserved",
// "no_such_flight") or the failure text.
func (a *Agent) Request(port xrep.PortName, op string, flight int64, passenger, date string, timeout time.Duration) (string, error) {
	if err := a.proc.SendReplyTo(port, a.reply.Name(), op, flight, passenger, date); err != nil {
		return "", err
	}
	return a.awaitOutcome(timeout)
}

// ListPassengers issues a list_passengers request and returns the names.
func (a *Agent) ListPassengers(port xrep.PortName, flight int64, date string, timeout time.Duration) ([]string, string, error) {
	if err := a.proc.SendReplyTo(port, a.reply.Name(), "list_passengers", flight, date); err != nil {
		return nil, "", err
	}
	m, st := a.proc.Receive(timeout, a.reply)
	switch st {
	case guardian.RecvOK:
	case guardian.RecvTimeout:
		return nil, "", ErrTimeout
	default:
		return nil, "", ErrKilled
	}
	if m.Command != "info" {
		return nil, m.Command, nil
	}
	seq, _ := m.Args[0].(xrep.Seq)
	names := make([]string, 0, len(seq))
	for _, v := range seq {
		if s, ok := v.(xrep.Str); ok {
			names = append(names, string(s))
		}
	}
	return names, "info", nil
}

// Admin issues an administrative command (add_flight, delete_flight,
// usage, grant_list_access) and returns the reply.
func (a *Agent) Admin(port xrep.PortName, command string, timeout time.Duration, args ...any) (*guardian.Message, error) {
	if err := a.proc.SendReplyTo(port, a.reply.Name(), command, args...); err != nil {
		return nil, err
	}
	m, st := a.proc.Receive(timeout, a.reply)
	switch st {
	case guardian.RecvOK:
		return m, nil
	case guardian.RecvTimeout:
		return nil, ErrTimeout
	default:
		return nil, ErrKilled
	}
}

func (a *Agent) awaitOutcome(timeout time.Duration) (string, error) {
	m, st := a.proc.Receive(timeout, a.reply)
	switch st {
	case guardian.RecvOK:
		if m.IsFailure() {
			return "", fmt.Errorf("airline: %s", m.FailureText())
		}
		return m.Command, nil
	case guardian.RecvTimeout:
		return "", ErrTimeout
	default:
		return "", ErrKilled
	}
}

// Clerk drives the transaction interface of Figure 5: it talks to a U_j
// guardian through a terminal port, standing in for "the guardian that
// manages the display used by the reservations clerk".
type Clerk struct {
	proc    *guardian.Process
	term    *guardian.Port
	trans   xrep.PortName
	inTrans bool
}

// NewClerk creates a clerk at node.
func NewClerk(node *guardian.Node, name string) (*Clerk, error) {
	g, proc, err := node.NewDriver(name)
	if err != nil {
		return nil, err
	}
	term, err := g.NewPort(TermPortType, 64)
	if err != nil {
		return nil, err
	}
	return &Clerk{proc: proc, term: term}, nil
}

// Begin opens a transaction for a customer at the given UI port.
func (c *Clerk) Begin(ui xrep.PortName, passenger string, timeout time.Duration) error {
	if err := c.proc.SendReplyTo(ui, c.term.Name(), "begin_transaction", passenger); err != nil {
		return err
	}
	m, err := c.expect("trans", timeout)
	if err != nil {
		return err
	}
	c.trans = m.Port(0)
	c.inTrans = true
	return nil
}

// TransPort returns the current transaction's private port name.
func (c *Clerk) TransPort() xrep.PortName { return c.trans }

// Reserve asks the transaction to reserve a seat; the outcome string is
// the reply identifier or the communication failure text.
func (c *Clerk) Reserve(flight int64, date string, timeout time.Duration) (string, error) {
	return c.request("reserve", flight, date, timeout)
}

// Cancel asks the transaction to cancel a seat; cancels are deferred, so
// the immediate outcome is "deferred".
func (c *Clerk) Cancel(flight int64, date string, timeout time.Duration) (string, error) {
	return c.request("cancel", flight, date, timeout)
}

func (c *Clerk) request(op string, flight int64, date string, timeout time.Duration) (string, error) {
	if !c.inTrans {
		return "", errors.New("airline: no open transaction")
	}
	if err := c.proc.SendReplyTo(c.trans, c.term.Name(), op, flight, date); err != nil {
		return "", err
	}
	m, err := c.expectAny([]string{"result"}, timeout)
	if err != nil {
		return "", err
	}
	return m.Str(3), nil
}

// UndoLast undoes the most recent request of the transaction. It returns
// the undone operation ("reserve" or "cancel"), or "" when the history
// was empty.
func (c *Clerk) UndoLast(timeout time.Duration) (string, error) {
	if !c.inTrans {
		return "", errors.New("airline: no open transaction")
	}
	if err := c.proc.SendReplyTo(c.trans, c.term.Name(), "undo_last"); err != nil {
		return "", err
	}
	m, err := c.expectAny([]string{"undone", "nothing_to_undo"}, timeout)
	if err != nil {
		return "", err
	}
	if m.Command == "nothing_to_undo" {
		return "", nil
	}
	return m.Str(0), nil
}

// Done finishes the transaction: all deferred cancels are performed. It
// returns the counts of performed reserves and cancels.
func (c *Clerk) Done(timeout time.Duration) (reserves, cancels int64, err error) {
	if !c.inTrans {
		return 0, 0, errors.New("airline: no open transaction")
	}
	if err := c.proc.SendReplyTo(c.trans, c.term.Name(), "done"); err != nil {
		return 0, 0, err
	}
	m, err := c.expect("trans_done", timeout)
	if err != nil {
		return 0, 0, err
	}
	c.inTrans = false
	return m.Int(0), m.Int(1), nil
}

// expect waits for a specific terminal message.
func (c *Clerk) expect(command string, timeout time.Duration) (*guardian.Message, error) {
	return c.expectAny([]string{command}, timeout)
}

// expectAny waits for any of the given terminal messages. A system failure
// message surfaces as an error carrying its text — this is how the clerk
// learns the transaction node has crashed.
func (c *Clerk) expectAny(commands []string, timeout time.Duration) (*guardian.Message, error) {
	deadline := c.proc.Guardian().Node().World().Clock().Now().Add(timeout)
	for {
		remain := deadline.Sub(c.proc.Guardian().Node().World().Clock().Now())
		if remain <= 0 {
			return nil, ErrTimeout
		}
		m, st := c.proc.Receive(remain, c.term)
		switch st {
		case guardian.RecvOK:
			if m.IsFailure() {
				return nil, fmt.Errorf("airline: %s", m.FailureText())
			}
			for _, want := range commands {
				if m.Command == want {
					return m, nil
				}
			}
			// Stale message from an earlier request (e.g. a late reply
			// after a timeout); skip it.
		case guardian.RecvTimeout:
			return nil, ErrTimeout
		default:
			return nil, ErrKilled
		}
	}
}
