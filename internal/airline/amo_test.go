package airline

import (
	"testing"
	"time"

	"repro/internal/amo"
	"repro/internal/guardian"
	"repro/internal/xrep"
)

// TestAMOReplayReportsOriginalOutcome is why the flight guardian carries
// an amo port at all: reserve is idempotent (§3.5), but a RETRIED reserve
// answers pre_reserved where the lost original said ok. Through the amo
// filter the replay reports the original outcome; only a genuinely new
// request sees the idempotent no-op.
func TestAMOReplayReportsOriginalOutcome(t *testing.T) {
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(FlightDef())
	east := w.MustAddNode("east")
	created, err := east.Bootstrap(FlightDefName, int64(12), int64(5), OrgMonitor, int64(0))
	if err != nil {
		t.Fatal(err)
	}
	amoPort := created.Ports[1]
	office := w.MustAddNode("office")
	g, proc, err := office.NewDriver("agent")
	if err != nil {
		t.Fatal(err)
	}
	reply := g.MustNewPort(amo.ReplyType, 8)

	reserve := func(seq int64) string {
		t.Helper()
		if err := proc.SendReplyTo(amoPort, reply.Name(), amo.ReqCommand,
			"agent1", seq, int64(0), "reserve",
			xrep.Seq{xrep.Int(12), xrep.Str("p1"), xrep.Str("d1")}); err != nil {
			t.Fatal(err)
		}
		m, st := proc.Receive(5*time.Second, reply)
		if st != guardian.RecvOK {
			t.Fatalf("seq %d: %v", seq, st)
		}
		return m.Str(1)
	}

	if got := reserve(1); got != OutcomeOK {
		t.Fatalf("first reserve: %s", got)
	}
	// A duplicate of the SAME request reports the original ok.
	if got := reserve(1); got != OutcomeOK {
		t.Fatalf("replayed reserve: %s, want cached %s", got, OutcomeOK)
	}
	// A NEW request for the same seat sees the idempotent outcome.
	if got := reserve(2); got != OutcomePreReserved {
		t.Fatalf("fresh duplicate reserve: %s, want %s", got, OutcomePreReserved)
	}
}
