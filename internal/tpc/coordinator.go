package tpc

import (
	"sync"
	"time"

	"repro/internal/guardian"
	"repro/internal/wire"
	"repro/internal/xrep"
)

// CoordinatorDefName is the library name of the coordinator definition.
const CoordinatorDefName = "tpc_coordinator"

// Coordinator tuning. Creation arguments of the coordinator guardian:
//
//	vote_timeout_ms Int — how long to wait for each vote round
//	retries         Int — decision-phase retry attempts per participant
type coordConfig struct {
	voteTimeout time.Duration
	retries     int
}

// decision is the coordinator's durable record for one transaction.
type decision struct {
	txid    string
	commit  bool
	ops     []txOp
	settled bool // every participant acknowledged the decision
}

type txOp struct {
	participant xrep.PortName
	op          xrep.Value
}

// coordState is rebuilt from the coordinator's log at recovery. The mutex
// guards the decisions map and the settled flags: each transaction runs in
// its own process (a deliberate echo of Figure 1c), so they share the
// coordinator's objects the way any guardian's processes do.
type coordState struct {
	cfg coordConfig

	mu        sync.Mutex
	decisions map[string]*decision
}

func (st *coordState) lookup(txid string) (*decision, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	d, ok := st.decisions[txid]
	return d, ok
}

func (st *coordState) record(d *decision) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.decisions[d.txid] = d
}

func (st *coordState) markSettled(d *decision) {
	st.mu.Lock()
	defer st.mu.Unlock()
	d.settled = true
}

func decisionRecord(kind string, d *decision) []byte {
	ops := make(xrep.Seq, len(d.ops))
	for i, o := range d.ops {
		ops[i] = xrep.Seq{o.participant, o.op}
	}
	b, err := wire.MarshalValue(xrep.Seq{
		xrep.Str(kind), xrep.Str(d.txid), xrep.Bool(d.commit), ops,
	})
	if err != nil {
		panic(err)
	}
	return b
}

func parseDecisionRecord(data []byte) (kind string, d *decision, ok bool) {
	v, err := wire.UnmarshalValue(data)
	if err != nil {
		return "", nil, false
	}
	seq, isSeq := v.(xrep.Seq)
	if !isSeq || len(seq) != 4 {
		return "", nil, false
	}
	k, ok1 := seq[0].(xrep.Str)
	txid, ok2 := seq[1].(xrep.Str)
	commit, ok3 := seq[2].(xrep.Bool)
	opsSeq, ok4 := seq[3].(xrep.Seq)
	if !ok1 || !ok2 || !ok3 || !ok4 {
		return "", nil, false
	}
	d = &decision{txid: string(txid), commit: bool(commit)}
	for _, e := range opsSeq {
		pair, isPair := e.(xrep.Seq)
		if !isPair || len(pair) != 2 {
			return "", nil, false
		}
		pn, isPN := pair[0].(xrep.PortName)
		if !isPN {
			return "", nil, false
		}
		d.ops = append(d.ops, txOp{participant: pn, op: pair[1]})
	}
	return string(k), d, true
}

// CoordinatorDef returns the coordinator guardian definition. The
// coordinator logs every decision before announcing it (the classic 2PC
// commit point) and a settlement marker once all participants have
// acknowledged; recovery re-drives the decision phase of unsettled
// transactions, which is safe because commit/abort are idempotent at the
// participants.
func CoordinatorDef() *guardian.GuardianDef {
	main := func(ctx *guardian.Ctx) {
		st := &coordState{
			cfg:       coordConfig{voteTimeout: time.Second, retries: 3},
			decisions: make(map[string]*decision),
		}
		if len(ctx.Args) == 2 {
			if ms, ok := ctx.Args[0].(xrep.Int); ok && ms > 0 {
				st.cfg.voteTimeout = time.Duration(ms) * time.Millisecond
			}
			if r, ok := ctx.Args[1].(xrep.Int); ok && r >= 0 {
				st.cfg.retries = int(r)
			}
		}
		ctx.G.SetState(st)
		log := ctx.G.Log()
		if ctx.Recovering {
			_, recs, _ := log.Recover()
			// Rebuild under the state lock: owner-side audits
			// (CoordinatorUnsettled) may read the map as soon as the
			// guardian exists, which is before this loop finishes.
			st.mu.Lock()
			var unsettled []*decision
			for _, r := range recs {
				kind, d, ok := parseDecisionRecord(r.Data)
				if !ok {
					continue
				}
				switch kind {
				case "decided":
					st.decisions[d.txid] = d
				case "settled":
					if prev, ok := st.decisions[d.txid]; ok {
						prev.settled = true
					}
				}
			}
			for _, d := range st.decisions {
				if !d.settled {
					unsettled = append(unsettled, d)
				}
			}
			st.mu.Unlock()
			// Finish the decision phase of every unsettled transaction.
			for _, d := range unsettled {
				d := d
				ctx.G.Spawn("resettle", func(pr *guardian.Process) {
					settle(pr, log, st, d)
				})
			}
		}

		guardian.NewReceiver(ctx.Ports[0]).
			When("begin", func(pr *guardian.Process, m *guardian.Message) {
				txid := m.Str(0)
				opsSeq, _ := m.Args[1].(xrep.Seq)
				client := m.ReplyTo
				// Duplicate begin for a decided transaction: re-announce
				// the recorded outcome (client retry after lost reply).
				if d, dup := st.lookup(txid); dup {
					replyOutcome(pr, client, d)
					return
				}
				d := &decision{txid: txid}
				for _, e := range opsSeq {
					pair, ok := e.(xrep.Seq)
					if !ok || len(pair) != 2 {
						continue
					}
					pn, ok := pair[0].(xrep.PortName)
					if !ok {
						continue
					}
					d.ops = append(d.ops, txOp{participant: pn, op: pair[1]})
				}
				// Each transaction gets its own process so slow votes do
				// not serialize unrelated transactions (the Figure 1b/1c
				// lesson applied to the coordinator itself).
				g := ctx.G
				g.Spawn("tx", func(q *guardian.Process) {
					runTx(q, log, st, d, client)
				})
			}).
			WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
				// §3.4 failure arm: a discarded message named the begin
				// port as its replyto. Per-transaction processes talk to
				// participants on their own ports and handle their own
				// failures; nothing to settle here.
			}).
			Loop(ctx.Proc, nil)
	}
	return &guardian.GuardianDef{
		TypeName: CoordinatorDefName,
		Provides: []*guardian.PortType{CoordinatorPortType},
		Init:     main,
		Recover:  main,
	}
}

// runTx drives one transaction: vote phase, durable decision, decision
// phase, client reply.
func runTx(pr *guardian.Process, log logAppender, st *coordState, d *decision, client xrep.PortName) {
	g := pr.Guardian()
	votes, err := g.NewPort(CoordReplyType, len(d.ops)*2+4)
	if err != nil {
		return
	}
	defer g.RemovePort(votes)

	// Phase 1: solicit votes. Prepares are idempotent at the participants
	// (a prepared participant re-votes yes), so the coordinator re-sends
	// to participants it has not heard from across several sub-windows of
	// the vote timeout — masking lost prepare/vote messages without
	// changing the protocol’s semantics.
	clock := g.Node().World().Clock()
	// Count distinct yes voters so a duplicated network delivery cannot
	// fake a quorum.
	voted := make(map[principalKey]bool)
	commit := true
	const voteRounds = 3
	roundLen := st.cfg.voteTimeout / voteRounds
vote:
	for round := 0; round < voteRounds && len(voted) < len(d.ops); round++ {
		for _, o := range d.ops {
			if !voted[principalKey{o.participant.Node, o.participant.Guardian}] {
				_ = pr.SendReplyTo(o.participant, votes.Name(), "prepare", d.txid, o.op)
			}
		}
		deadline := clock.Now().Add(roundLen)
		for len(voted) < len(d.ops) {
			remain := deadline.Sub(clock.Now())
			if remain <= 0 {
				break // next round re-solicits the missing votes
			}
			m, status := pr.Receive(remain, votes)
			if status == guardian.RecvKilled {
				return
			}
			if status != guardian.RecvOK {
				break
			}
			switch m.Command {
			case "vote_yes":
				if m.Str(0) == d.txid {
					voted[principalKey{m.SrcNode, m.SrcGuardian}] = true
				}
			case "vote_no", guardian.FailureCommand:
				commit = false
				break vote
			}
		}
	}
	if len(voted) < len(d.ops) {
		commit = false // missing votes count as no (presumed abort)
	}
	d.commit = commit

	// The commit point: log the decision durably before telling anyone.
	log.AppendSync(decisionRecord("decided", d))
	st.record(d)

	settle(pr, log, st, d)
	replyOutcome(pr, client, d)
}

// principalKey identifies a participant by message provenance.
type principalKey struct {
	node     string
	guardian uint64
}

// settle announces the decision until every participant acknowledges (or
// retries run out; recovery will resume it).
func settle(pr *guardian.Process, log logAppender, st *coordState, d *decision) {
	g := pr.Guardian()
	acks, err := g.NewPort(CoordReplyType, len(d.ops)*2+4)
	if err != nil {
		return
	}
	defer g.RemovePort(acks)
	cmd, ack := "commit", "ack_commit"
	if !d.commit {
		cmd, ack = "abort", "ack_abort"
	}
	pending := make(map[xrep.PortName]bool, len(d.ops))
	for _, o := range d.ops {
		pending[o.participant] = true
	}
	for attempt := 0; attempt <= st.cfg.retries && len(pending) > 0; attempt++ {
		for _, o := range d.ops {
			if pending[o.participant] {
				_ = pr.SendReplyTo(o.participant, acks.Name(), cmd, d.txid)
			}
		}
		deadline := g.Node().World().Clock().Now().Add(st.cfg.voteTimeout)
		for len(pending) > 0 {
			remain := deadline.Sub(g.Node().World().Clock().Now())
			if remain <= 0 {
				break
			}
			m, status := pr.Receive(remain, acks)
			if status != guardian.RecvOK {
				break
			}
			if m.Command == ack && m.Str(0) == d.txid {
				// Provenance carries node and guardian; match the pending
				// participant port by those coordinates.
				for p := range pending {
					if p.Node == m.SrcNode && p.Guardian == m.SrcGuardian {
						delete(pending, p)
					}
				}
			}
		}
	}
	if len(pending) == 0 {
		st.markSettled(d)
		log.AppendSync(decisionRecord("settled", d))
	}
}

func replyOutcome(pr *guardian.Process, client xrep.PortName, d *decision) {
	if client.IsZero() {
		return
	}
	if d.commit {
		_ = pr.Send(client, OutcomeCommitted, d.txid)
	} else {
		_ = pr.Send(client, OutcomeAborted, d.txid)
	}
}

// logAppender is the slice of stable.Log the coordinator needs; an
// interface keeps settle testable.
type logAppender interface {
	AppendSync(data []byte) uint64
}

// CoordinatorUnsettled lists the transactions whose decision is durable
// but not yet acknowledged by every participant (owner-side audit
// facility: a drain checker polls this to empty after recovery).
func CoordinatorUnsettled(g *guardian.Guardian) ([]string, bool) {
	st, ok := g.State().(*coordState)
	if !ok {
		return nil, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []string
	for txid, d := range st.decisions {
		if !d.settled {
			out = append(out, txid)
		}
	}
	return out, true
}

// CoordinatorDecision inspects the coordinator's durable outcome for a
// transaction (owner-side test facility).
func CoordinatorDecision(g *guardian.Guardian, txid string) (outcome string, settled, known bool) {
	st, ok := g.State().(*coordState)
	if !ok {
		return "", false, false
	}
	d, ok := st.lookup(txid)
	if !ok {
		return "", false, false
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if d.commit {
		return OutcomeCommitted, d.settled, true
	}
	return OutcomeAborted, d.settled, true
}
