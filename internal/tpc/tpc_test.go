package tpc

import (
	"fmt"
	"testing"
	"time"

	"repro/internal/guardian"
	"repro/internal/netsim"
	"repro/internal/xrep"
)

const testTimeout = 10 * time.Second

// harness wires a coordinator plus n slot participants, each on its own
// node.
type harness struct {
	w           *guardian.World
	coordPort   xrep.PortName
	coordNode   *guardian.Node
	coordID     uint64
	parts       []xrep.PortName
	partNodes   []*guardian.Node
	partIDs     []uint64
	client      *guardian.Process
	clientReply *guardian.Port
}

func newHarness(t *testing.T, nParts int, netCfg netsim.Config, capacity int64) *harness {
	t.Helper()
	w := guardian.NewWorld(guardian.Config{Net: netCfg})
	w.MustRegister(CoordinatorDef())
	w.MustRegister(NewParticipantDef("slot_participant", func() Resource {
		return NewSlotResource(map[string]int64{"unit": capacity})
	}))
	h := &harness{w: w}
	cn := w.MustAddNode("coord")
	h.coordNode = cn
	created, err := cn.Bootstrap(CoordinatorDefName, int64(500), int64(3))
	if err != nil {
		t.Fatal(err)
	}
	h.coordPort = created.Ports[0]
	h.coordID = created.GuardianID
	for i := 0; i < nParts; i++ {
		pn := w.MustAddNode(fmt.Sprintf("part%d", i))
		pc, err := pn.Bootstrap("slot_participant")
		if err != nil {
			t.Fatal(err)
		}
		h.parts = append(h.parts, pc.Ports[0])
		h.partNodes = append(h.partNodes, pn)
		h.partIDs = append(h.partIDs, pc.GuardianID)
	}
	clientNode := w.MustAddNode("client")
	g, proc, err := clientNode.NewDriver("c")
	if err != nil {
		t.Fatal(err)
	}
	h.client = proc
	h.clientReply = g.MustNewPort(ClientReplyType, 16)
	return h
}

// begin runs one transaction taking n units from every participant and
// returns the outcome command. Lost replies are handled the way a real
// client handles them: re-send the same begin (the coordinator records
// decisions per txid, so duplicates are answered from memory).
func (h *harness) begin(t *testing.T, txid string, n int64) string {
	t.Helper()
	ops := make(xrep.Seq, len(h.parts))
	for i, p := range h.parts {
		ops[i] = xrep.Seq{p, SlotOp("unit", n)}
	}
	for attempt := 0; attempt < 12; attempt++ {
		if err := h.client.SendReplyTo(h.coordPort, h.clientReply.Name(), "begin", txid, ops); err != nil {
			t.Fatal(err)
		}
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			m, st := h.client.Receive(time.Until(deadline), h.clientReply)
			if st != guardian.RecvOK {
				break // retry the begin
			}
			if m.IsFailure() {
				t.Fatalf("tx %s: %s", txid, m.FailureText())
			}
			if m.Str(0) == txid {
				return m.Command
			}
		}
	}
	t.Fatalf("tx %s: no outcome after retries", txid)
	return ""
}

// resources returns each participant's SlotResource.
func (h *harness) resources(t *testing.T) []*SlotResource {
	t.Helper()
	out := make([]*SlotResource, len(h.partIDs))
	for i, id := range h.partIDs {
		g, ok := h.partNodes[i].GuardianByID(id)
		if !ok {
			t.Fatalf("participant %d gone", i)
		}
		res, ok := ParticipantResource(g)
		if !ok {
			t.Fatalf("participant %d has no resource", i)
		}
		out[i] = res.(*SlotResource)
	}
	return out
}

// auditAtomic checks all-or-nothing: every participant committed the same
// set of transactions' units.
func (h *harness) auditAtomic(t *testing.T) {
	t.Helper()
	res := h.resources(t)
	first := res[0].Committed("unit")
	for i, r := range res {
		if got := r.Committed("unit"); got != first {
			t.Fatalf("atomicity violated: participant 0 committed %d units, participant %d committed %d",
				first, i, got)
		}
		if held := r.Held("unit"); held != 0 {
			t.Fatalf("participant %d still holds %d units after all transactions settled", i, held)
		}
	}
}

func TestCommitAcrossParticipants(t *testing.T) {
	h := newHarness(t, 3, netsim.Config{}, 10)
	if out := h.begin(t, "tx1", 2); out != OutcomeCommitted {
		t.Fatalf("tx1: %s", out)
	}
	for i, r := range h.resources(t) {
		if got := r.Committed("unit"); got != 2 {
			t.Fatalf("participant %d committed %d, want 2", i, got)
		}
	}
	h.auditAtomic(t)
}

func TestAbortWhenAnyParticipantRefuses(t *testing.T) {
	h := newHarness(t, 3, netsim.Config{}, 10)
	// First tx takes 9 of 10 everywhere.
	if out := h.begin(t, "tx1", 9); out != OutcomeCommitted {
		t.Fatal("tx1 should commit")
	}
	// Second wants 2: no participant can prepare — abort, nothing changes.
	if out := h.begin(t, "tx2", 2); out != OutcomeAborted {
		t.Fatal("tx2 should abort")
	}
	for i, r := range h.resources(t) {
		if got := r.Committed("unit"); got != 9 {
			t.Fatalf("participant %d committed %d after abort, want 9", i, got)
		}
	}
	h.auditAtomic(t)
}

func TestAbortReleasesHolds(t *testing.T) {
	// Only one participant refuses; the others prepared and must release.
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(CoordinatorDef())
	w.MustRegister(NewParticipantDef("big", func() Resource {
		return NewSlotResource(map[string]int64{"unit": 100})
	}))
	w.MustRegister(NewParticipantDef("small", func() Resource {
		return NewSlotResource(map[string]int64{"unit": 1})
	}))
	cn := w.MustAddNode("coord")
	created, err := cn.Bootstrap(CoordinatorDefName, int64(500), int64(3))
	if err != nil {
		t.Fatal(err)
	}
	bigNode := w.MustAddNode("big")
	bigC, err := bigNode.Bootstrap("big")
	if err != nil {
		t.Fatal(err)
	}
	smallNode := w.MustAddNode("small")
	smallC, err := smallNode.Bootstrap("small")
	if err != nil {
		t.Fatal(err)
	}
	clientNode := w.MustAddNode("client")
	g, client, err := clientNode.NewDriver("c")
	if err != nil {
		t.Fatal(err)
	}
	reply := g.MustNewPort(ClientReplyType, 8)
	ops := xrep.Seq{
		xrep.Seq{bigC.Ports[0], SlotOp("unit", 5)},
		xrep.Seq{smallC.Ports[0], SlotOp("unit", 5)}, // exceeds small's capacity
	}
	if err := client.SendReplyTo(created.Ports[0], reply.Name(), "begin", "tx1", ops); err != nil {
		t.Fatal(err)
	}
	m, st := client.Receive(testTimeout, reply)
	if st != guardian.RecvOK || m.Command != OutcomeAborted {
		t.Fatalf("want aborted, got %v %v", st, m)
	}
	// The big participant's hold must be released.
	bg, _ := bigNode.GuardianByID(bigC.GuardianID)
	res, _ := ParticipantResource(bg)
	slot := res.(*SlotResource)
	if slot.Held("unit") != 0 || slot.Committed("unit") != 0 {
		t.Fatalf("aborted hold not released: held=%d committed=%d",
			slot.Held("unit"), slot.Committed("unit"))
	}
	if ph, _ := ParticipantPhase(bg, "tx1"); ph != "aborted" {
		t.Fatalf("big participant phase %s, want aborted", ph)
	}
}

func TestDeadParticipantAborts(t *testing.T) {
	h := newHarness(t, 2, netsim.Config{}, 10)
	h.partNodes[1].Crash()
	if out := h.begin(t, "tx1", 1); out != OutcomeAborted {
		t.Fatalf("tx with dead participant: %s, want aborted", out)
	}
	// The live participant must not be left holding.
	g, _ := h.partNodes[0].GuardianByID(h.partIDs[0])
	res, _ := ParticipantResource(g)
	if held := res.(*SlotResource).Held("unit"); held != 0 {
		t.Fatalf("live participant holds %d after abort", held)
	}
}

func TestDuplicateBeginReturnsRecordedOutcome(t *testing.T) {
	h := newHarness(t, 2, netsim.Config{}, 10)
	if out := h.begin(t, "tx1", 3); out != OutcomeCommitted {
		t.Fatal("tx1 commit")
	}
	// Retrying the same txid must not re-run the transaction.
	if out := h.begin(t, "tx1", 3); out != OutcomeCommitted {
		t.Fatal("duplicate begin outcome")
	}
	for _, r := range h.resources(t) {
		if got := r.Committed("unit"); got != 3 {
			t.Fatalf("duplicate begin re-applied: committed %d, want 3", got)
		}
	}
}

func TestTransactionsSurviveMessageLoss(t *testing.T) {
	// 20% loss: retries in the settle phase mask it; every outcome must
	// still be atomic.
	h := newHarness(t, 3, netsim.Config{Seed: 5, LossRate: 0.2, BaseLatency: time.Millisecond}, 100)
	committed := 0
	for i := 0; i < 10; i++ {
		if out := h.begin(t, fmt.Sprintf("tx%d", i), 1); out == OutcomeCommitted {
			committed++
		}
	}
	if committed == 0 {
		t.Fatal("no transaction committed under 20% loss")
	}
	h.w.Quiesce()
	time.Sleep(50 * time.Millisecond)
	h.auditAtomic(t)
	for i, r := range h.resources(t) {
		if got := r.Committed("unit"); got != int64(committed) {
			t.Fatalf("participant %d committed %d units, want %d", i, got, committed)
		}
	}
}

// slowResource wraps a SlotResource with a prepare delay, opening a
// deterministic window between "prepared and voted" and "heard the
// decision" for crash-injection tests.
type slowResource struct {
	*SlotResource
	delay time.Duration
}

func (s *slowResource) Prepare(txid string, op xrep.Value) bool {
	time.Sleep(s.delay)
	return s.SlotResource.Prepare(txid, op)
}

func TestParticipantCrashAfterPrepareThenRecovery(t *testing.T) {
	// A participant votes yes but never hears the decision (its inbound
	// link is severed right after the prepare arrives); after recovery its
	// durable prepared state plus the coordinator's recovery resettle
	// deliver the commit.
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(CoordinatorDef())
	w.MustRegister(NewParticipantDef("fast_p", func() Resource {
		return NewSlotResource(map[string]int64{"unit": 10})
	}))
	w.MustRegister(NewParticipantDef("slow_p", func() Resource {
		return &slowResource{
			SlotResource: NewSlotResource(map[string]int64{"unit": 10}),
			delay:        250 * time.Millisecond,
		}
	}))
	coordNode := w.MustAddNode("coord")
	created, err := coordNode.Bootstrap(CoordinatorDefName, int64(1000), int64(2))
	if err != nil {
		t.Fatal(err)
	}
	p0Node := w.MustAddNode("part0")
	p0, err := p0Node.Bootstrap("fast_p")
	if err != nil {
		t.Fatal(err)
	}
	p1Node := w.MustAddNode("part1")
	p1, err := p1Node.Bootstrap("slow_p")
	if err != nil {
		t.Fatal(err)
	}
	clientNode := w.MustAddNode("client")
	g, client, err := clientNode.NewDriver("c")
	if err != nil {
		t.Fatal(err)
	}
	reply := g.MustNewPort(ClientReplyType, 8)
	ops := xrep.Seq{
		xrep.Seq{p0.Ports[0], SlotOp("unit", 2)},
		xrep.Seq{p1.Ports[0], SlotOp("unit", 2)},
	}
	if err := client.SendReplyTo(created.Ports[0], reply.Name(), "begin", "tx1", ops); err != nil {
		t.Fatal(err)
	}
	// Both prepares are delivered almost instantly; participant 1 sits in
	// its 250 ms prepare. Sever coord→part1 now: the vote (part1→coord)
	// will still flow, but the commit decision cannot reach part1.
	time.Sleep(50 * time.Millisecond)
	w.Net().SetLink("coord", "part1", &netsim.Config{LossRate: 1.0})
	m, st := client.Receive(testTimeout, reply)
	if st != guardian.RecvOK || m.Command != OutcomeCommitted {
		t.Fatalf("tx1 outcome: %v %v (both votes arrived)", st, m)
	}
	g1, _ := p1Node.GuardianByID(p1.GuardianID)
	if ph, _ := ParticipantPhase(g1, "tx1"); ph != "prepared" {
		t.Fatalf("participant 1 phase %s, want prepared (decision severed)", ph)
	}
	// Crash the prepared participant; its promise is durable.
	p1Node.Crash()
	if err := p1Node.Restart(); err != nil {
		t.Fatal(err)
	}
	w.Net().SetLink("coord", "part1", nil)
	h := struct {
		partNodes []*guardian.Node
		partIDs   []uint64
		coordNode *guardian.Node
	}{
		partNodes: []*guardian.Node{p0Node, p1Node},
		partIDs:   []uint64{p0.GuardianID, p1.GuardianID},
		coordNode: coordNode,
	}
	// Crash and recover the coordinator: its decision log shows tx1
	// unsettled, so recovery re-drives the commit phase.
	h.coordNode.Crash()
	if err := h.coordNode.Restart(); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		g1, ok := h.partNodes[1].GuardianByID(h.partIDs[1])
		if ok {
			if ph, _ := ParticipantPhase(g1, "tx1"); ph == "committed" {
				break
			}
		}
		if time.Now().After(deadline) {
			ph := "gone"
			if ok {
				ph, _ = ParticipantPhase(g1, "tx1")
			}
			t.Fatalf("participant 1 never learned the decision after recovery (phase %s)", ph)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// And the resource state matches.
	g1b, _ := h.partNodes[1].GuardianByID(h.partIDs[1])
	resb, _ := ParticipantResource(g1b)
	if got := resb.(*slowResource).Committed("unit"); got != 2 {
		t.Fatalf("recovered participant committed %d, want 2", got)
	}
}

func TestCoordinatorCrashBeforeDecisionAborts(t *testing.T) {
	// If the coordinator dies before logging a decision, the transaction
	// never decided; prepared participants stay prepared (blocking is
	// 2PC's known weakness — we only verify nothing commits).
	h := newHarness(t, 2, netsim.Config{}, 10)
	// Sever vote replies so the coordinator stalls in the vote phase.
	h.w.Net().SetLink("part0", "coord", &netsim.Config{LossRate: 1.0})
	h.w.Net().SetLink("part1", "coord", &netsim.Config{LossRate: 1.0})
	ops := make(xrep.Seq, len(h.parts))
	for i, p := range h.parts {
		ops[i] = xrep.Seq{p, SlotOp("unit", 1)}
	}
	if err := h.client.SendReplyTo(h.coordPort, h.clientReply.Name(), "begin", "tx1", ops); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let prepares land
	h.coordNode.Crash()
	if err := h.coordNode.Restart(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	for i, r := range h.resources(t) {
		if got := r.Committed("unit"); got != 0 {
			t.Fatalf("participant %d committed %d units without a decision", i, got)
		}
	}
}

func TestSlotResourceBasics(t *testing.T) {
	s := NewSlotResource(map[string]int64{"seat": 2})
	if !s.Prepare("t1", SlotOp("seat", 1)) {
		t.Fatal("prepare 1 of 2")
	}
	if !s.Prepare("t1", SlotOp("seat", 1)) {
		t.Fatal("idempotent re-prepare")
	}
	if !s.Prepare("t2", SlotOp("seat", 1)) {
		t.Fatal("prepare 2 of 2")
	}
	if s.Prepare("t3", SlotOp("seat", 1)) {
		t.Fatal("overcommitted hold accepted")
	}
	if s.Available("seat") != 0 {
		t.Fatalf("available = %d", s.Available("seat"))
	}
	s.Commit("t1")
	s.Abort("t2")
	if s.Committed("seat") != 1 || s.Held("seat") != 0 || s.Available("seat") != 1 {
		t.Fatalf("state: committed=%d held=%d avail=%d",
			s.Committed("seat"), s.Held("seat"), s.Available("seat"))
	}
	s.Commit("t1") // idempotent
	s.Abort("t9")  // unknown: no-op
	if s.Committed("seat") != 1 {
		t.Fatal("idempotent commit re-applied")
	}
}

func TestSlotResourceRejectsMalformedOps(t *testing.T) {
	s := NewSlotResource(map[string]int64{"seat": 5})
	bad := []xrep.Value{
		xrep.Int(1),
		xrep.Seq{xrep.Str("seat")},
		xrep.Seq{xrep.Int(1), xrep.Int(2)},
		SlotOp("seat", 0),
		SlotOp("seat", -3),
		SlotOp("unknown-item", 1),
	}
	for _, op := range bad {
		if s.Prepare("t", op) {
			t.Fatalf("malformed op accepted: %v", op)
		}
	}
}

func TestCoordinatorDecisionInspector(t *testing.T) {
	h := newHarness(t, 2, netsim.Config{}, 10)
	if out := h.begin(t, "tx1", 1); out != OutcomeCommitted {
		t.Fatal(out)
	}
	cg, ok := h.coordNode.GuardianByID(h.coordID)
	if !ok {
		t.Fatal("coordinator gone")
	}
	outcome, settled, known := CoordinatorDecision(cg, "tx1")
	if !known || outcome != OutcomeCommitted || !settled {
		t.Fatalf("decision = %q settled=%v known=%v", outcome, settled, known)
	}
	if _, _, known := CoordinatorDecision(cg, "ghost"); known {
		t.Fatal("unknown tx reported known")
	}
}
