// Package tpc implements two-phase commit on top of the no-wait send —
// the "recoverable atomic transactions" class of protocols the paper cites
// as the test of its communication primitive (§3: "it is best to be
// conservative and select a primitive that can implement currently known
// protocols"). Nothing here uses any mechanism beyond what the guardian
// runtime provides: typed messages to ports, replyto, timeouts, per-
// guardian logs, and recovery processes.
//
// A coordinator guardian drives transactions over participant guardians.
// Every protocol step is idempotent and logged before it is acknowledged,
// so any node may crash at any point: prepared participants re-learn the
// decision from the coordinator's retries, and a recovered coordinator
// finishes the commit phase of transactions whose decision had been logged.
package tpc

import (
	"fmt"
	"sync"

	"repro/internal/guardian"
	"repro/internal/wire"
	"repro/internal/xrep"
)

// Transaction outcomes.
const (
	OutcomeCommitted = "committed"
	OutcomeAborted   = "aborted"
)

// ParticipantPortType describes a participant guardian's port.
var ParticipantPortType = guardian.NewPortType("tpc_participant_port").
	Msg("prepare", xrep.KindString, guardian.AnyKind).
	Replies("prepare", "vote_yes", "vote_no").
	Msg("commit", xrep.KindString).
	Replies("commit", "ack_commit").
	Msg("abort", xrep.KindString).
	Replies("abort", "ack_abort")

// CoordReplyType receives participant votes and acks (coordinator side).
var CoordReplyType = guardian.NewPortType("tpc_coord_reply_port").
	Msg("vote_yes", xrep.KindString).
	Msg("vote_no", xrep.KindString).
	Msg("ack_commit", xrep.KindString).
	Msg("ack_abort", xrep.KindString)

// CoordinatorPortType is the client-facing coordinator port. A begin
// carries a transaction id and a sequence of (participant port, operation)
// pairs.
var CoordinatorPortType = guardian.NewPortType("tpc_coordinator_port").
	Msg("begin", xrep.KindString, xrep.KindSeq).
	Replies("begin", OutcomeCommitted, OutcomeAborted)

// ClientReplyType receives transaction outcomes.
var ClientReplyType = guardian.NewPortType("tpc_client_port").
	Msg(OutcomeCommitted, xrep.KindString).
	Msg(OutcomeAborted, xrep.KindString)

// Resource is the application state a participant guards. Implementations
// must be deterministic: recovery replays the logged operation sequence
// through the same methods.
type Resource interface {
	// Prepare validates and durably holds the operation for txid. It
	// reports whether the participant can commit. A held operation must
	// remain committable until Commit or Abort.
	Prepare(txid string, op xrep.Value) bool
	// Commit applies the held operation.
	Commit(txid string)
	// Abort releases the held operation.
	Abort(txid string)
}

// txPhase is a participant's durable per-transaction state.
type txPhase uint8

const (
	phasePrepared txPhase = iota + 1
	phaseCommitted
	phaseAborted
	phaseRefused
)

// participantState is the guardian's volatile view, rebuilt from the log.
// The mutex exists for owner-side inspectors (ParticipantPhase); the
// guardian's single receive process is the only writer.
type participantState struct {
	res Resource

	mu sync.Mutex
	// phases maps txid → phase; ops remembers prepared operations for
	// replay-independent idempotency.
	phases map[string]txPhase
	ops    map[string]xrep.Value
}

func (st *participantState) phase(txid string) txPhase {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.phases[txid]
}

func participantRecord(kind, txid string, op xrep.Value) []byte {
	if op == nil {
		op = xrep.Null{}
	}
	b, err := wire.MarshalValue(xrep.Seq{xrep.Str(kind), xrep.Str(txid), op})
	if err != nil {
		panic(err)
	}
	return b
}

// apply performs one logged step against the state; used both live and in
// recovery replay, so it must be deterministic.
func (st *participantState) apply(kind, txid string, op xrep.Value) {
	st.mu.Lock()
	defer st.mu.Unlock()
	switch kind {
	case "prepared":
		st.phases[txid] = phasePrepared
		st.ops[txid] = op
	case "refused":
		st.phases[txid] = phaseRefused
	case "committed":
		st.phases[txid] = phaseCommitted
	case "aborted":
		st.phases[txid] = phaseAborted
	}
}

// NewParticipantDef builds a participant guardian definition. factory
// constructs the guarded resource; on recovery the fresh resource is
// rebuilt by replaying the participant's own log through the same
// Prepare/Commit/Abort sequence.
func NewParticipantDef(typeName string, factory func() Resource) *guardian.GuardianDef {
	main := func(ctx *guardian.Ctx) {
		st := &participantState{
			res:    factory(),
			phases: make(map[string]txPhase),
			ops:    make(map[string]xrep.Value),
		}
		ctx.G.SetState(st)
		log := ctx.G.Log()
		if ctx.Recovering {
			_, recs, _ := log.Recover()
			for _, r := range recs {
				v, err := wire.UnmarshalValue(r.Data)
				if err != nil {
					continue
				}
				seq, ok := v.(xrep.Seq)
				if !ok || len(seq) != 3 {
					continue
				}
				kind, _ := seq[0].(xrep.Str)
				txid, _ := seq[1].(xrep.Str)
				// Drive the resource through the same transitions.
				switch string(kind) {
				case "prepared":
					st.res.Prepare(string(txid), seq[2])
				case "committed":
					st.res.Commit(string(txid))
				case "aborted":
					st.res.Abort(string(txid))
				}
				st.apply(string(kind), string(txid), seq[2])
			}
		}

		reply := func(pr *guardian.Process, m *guardian.Message, cmd, txid string) {
			if !m.ReplyTo.IsZero() {
				_ = pr.Send(m.ReplyTo, cmd, txid)
			}
		}
		guardian.NewReceiver(ctx.Ports[0]).
			When("prepare", func(pr *guardian.Process, m *guardian.Message) {
				txid := m.Str(0)
				op, _ := m.Arg(1)
				switch st.phase(txid) {
				case phasePrepared, phaseCommitted:
					// Duplicate prepare (lost vote): re-vote yes. A
					// committed transaction also re-votes yes; the
					// coordinator's decision was commit.
					reply(pr, m, "vote_yes", txid)
					return
				case phaseRefused, phaseAborted:
					reply(pr, m, "vote_no", txid)
					return
				}
				if !st.res.Prepare(txid, op) {
					log.AppendSync(participantRecord("refused", txid, nil))
					st.apply("refused", txid, nil)
					reply(pr, m, "vote_no", txid)
					return
				}
				// Log the hold before voting: a yes vote is a durable
				// promise.
				log.AppendSync(participantRecord("prepared", txid, op))
				st.apply("prepared", txid, op)
				reply(pr, m, "vote_yes", txid)
			}).
			When("commit", func(pr *guardian.Process, m *guardian.Message) {
				txid := m.Str(0)
				switch st.phase(txid) {
				case phaseCommitted:
					reply(pr, m, "ack_commit", txid) // duplicate
					return
				case phasePrepared:
					log.AppendSync(participantRecord("committed", txid, nil))
					st.res.Commit(txid)
					st.apply("committed", txid, nil)
					reply(pr, m, "ack_commit", txid)
					return
				}
				// Commit for an unknown transaction: the prepare was lost
				// yet the coordinator decided commit — impossible under
				// 2PC (a commit decision needs our yes vote). Ignore.
			}).
			When("abort", func(pr *guardian.Process, m *guardian.Message) {
				txid := m.Str(0)
				switch st.phase(txid) {
				case phaseAborted, phaseRefused:
					reply(pr, m, "ack_abort", txid)
					return
				case phasePrepared:
					log.AppendSync(participantRecord("aborted", txid, nil))
					st.res.Abort(txid)
					st.apply("aborted", txid, nil)
					reply(pr, m, "ack_abort", txid)
					return
				default:
					// Abort for a transaction we never prepared: safe to
					// acknowledge (presumed abort).
					reply(pr, m, "ack_abort", txid)
				}
			}).
			WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
				// §3.4 failure arm: a discarded message named this port as
				// its replyto. Votes and acks are idempotent re-replies;
				// the coordinator re-asks until settled, so drop it.
			}).
			Loop(ctx.Proc, nil)
	}
	return &guardian.GuardianDef{
		TypeName: typeName,
		Provides: []*guardian.PortType{ParticipantPortType},
		Init:     main,
		Recover:  main,
	}
}

// ParticipantPhase inspects a participant's durable phase for a
// transaction (owner-side test facility).
func ParticipantPhase(g *guardian.Guardian, txid string) (string, bool) {
	st, ok := g.State().(*participantState)
	if !ok {
		return "", false
	}
	switch st.phase(txid) {
	case phasePrepared:
		return "prepared", true
	case phaseCommitted:
		return "committed", true
	case phaseAborted:
		return "aborted", true
	case phaseRefused:
		return "refused", true
	default:
		return "unknown", true
	}
}

// ParticipantResource returns the participant's guarded resource
// (owner-side test facility).
func ParticipantResource(g *guardian.Guardian) (Resource, bool) {
	st, ok := g.State().(*participantState)
	if !ok {
		return nil, false
	}
	return st.res, true
}

// fmt is used by coordinator.go too; keep the import anchored here.
var _ = fmt.Sprintf
