package tpc

import (
	"sync"

	"repro/internal/xrep"
)

// SlotResource is a capacity-limited inventory: a named pool of slots
// (seats on a flight, rooms in a hotel, units of stock). The prepare
// operation is Seq{Str(item), Int(n)} — hold n units of item; commit
// consumes the hold, abort releases it. It is the concrete resource used
// by the travel-booking example and the E9 experiment.
//
// Note one operation per participant per transaction: 2PC votes are
// per-participant, so a transaction wanting several items from one
// inventory encodes them in a single operation.
type SlotResource struct {
	mu        sync.Mutex
	capacity  map[string]int64
	committed map[string]int64
	// holds maps txid → (item, n) held by a prepared transaction.
	holds map[string]slotHold
}

type slotHold struct {
	item string
	n    int64
}

// NewSlotResource creates an inventory with the given per-item capacities.
func NewSlotResource(capacity map[string]int64) *SlotResource {
	c := make(map[string]int64, len(capacity))
	for k, v := range capacity {
		c[k] = v
	}
	return &SlotResource{
		capacity:  c,
		committed: make(map[string]int64),
		holds:     make(map[string]slotHold),
	}
}

// SlotOp builds the prepare operation value.
func SlotOp(item string, n int64) xrep.Value {
	return xrep.Seq{xrep.Str(item), xrep.Int(n)}
}

// Prepare implements Resource.
func (s *SlotResource) Prepare(txid string, op xrep.Value) bool {
	seq, ok := op.(xrep.Seq)
	if !ok || len(seq) != 2 {
		return false
	}
	item, ok1 := seq[0].(xrep.Str)
	n, ok2 := seq[1].(xrep.Int)
	if !ok1 || !ok2 || n <= 0 {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.holds[txid]; dup {
		return true // idempotent re-prepare
	}
	capacity, exists := s.capacity[string(item)]
	if !exists {
		return false
	}
	held := int64(0)
	for _, h := range s.holds {
		if h.item == string(item) {
			held += h.n
		}
	}
	if s.committed[string(item)]+held+int64(n) > capacity {
		return false
	}
	s.holds[txid] = slotHold{item: string(item), n: int64(n)}
	return true
}

// Commit implements Resource.
func (s *SlotResource) Commit(txid string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.holds[txid]
	if !ok {
		return // idempotent
	}
	delete(s.holds, txid)
	s.committed[h.item] += h.n
}

// Abort implements Resource.
func (s *SlotResource) Abort(txid string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.holds, txid) // idempotent
}

// Committed reports the consumed units of item.
func (s *SlotResource) Committed(item string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.committed[item]
}

// Held reports units currently held by prepared transactions.
func (s *SlotResource) Held(item string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var held int64
	for _, h := range s.holds {
		if h.item == item {
			held += h.n
		}
	}
	return held
}

// Available reports the uncommitted, unheld units of item.
func (s *SlotResource) Available(item string) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	var held int64
	for _, h := range s.holds {
		if h.item == item {
			held += h.n
		}
	}
	return s.capacity[item] - s.committed[item] - held
}
