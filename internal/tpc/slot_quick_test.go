package tpc

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestSlotResourceInvariantsQuick drives random Prepare/Commit/Abort
// sequences and checks the safety invariants after every step:
//
//   - committed + held never exceeds capacity,
//   - Available is exactly capacity − committed − held,
//   - committed never decreases,
//   - re-running an operation for a settled transaction is a no-op.
func TestSlotResourceInvariantsQuick(t *testing.T) {
	f := func(seed int64, capSmall uint8) bool {
		capacity := int64(capSmall%20) + 1
		rng := rand.New(rand.NewSource(seed))
		s := NewSlotResource(map[string]int64{"item": capacity})
		type txState int
		const (
			idle txState = iota
			prepared
			settled
		)
		states := make(map[string]txState)
		lastCommitted := int64(0)
		for step := 0; step < 300; step++ {
			txid := fmt.Sprintf("t%d", rng.Intn(12))
			n := int64(rng.Intn(3) + 1)
			switch rng.Intn(3) {
			case 0:
				okPrep := s.Prepare(txid, SlotOp("item", n))
				switch states[txid] {
				case prepared:
					if !okPrep {
						return false // re-prepare must stay yes
					}
				case idle:
					if okPrep {
						states[txid] = prepared
					}
				}
			case 1:
				s.Commit(txid)
				if states[txid] == prepared {
					states[txid] = settled
				}
			case 2:
				s.Abort(txid)
				if states[txid] == prepared {
					states[txid] = settled
				}
			}
			committed := s.Committed("item")
			held := s.Held("item")
			if committed+held > capacity {
				return false
			}
			if s.Available("item") != capacity-committed-held {
				return false
			}
			if committed < lastCommitted {
				return false
			}
			lastCommitted = committed
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestSlotResourceCommitAbortExclusive: once a transaction commits, a late
// abort must not release its units (and vice versa).
func TestSlotResourceCommitAbortExclusive(t *testing.T) {
	s := NewSlotResource(map[string]int64{"item": 5})
	if !s.Prepare("tx", SlotOp("item", 3)) {
		t.Fatal("prepare")
	}
	s.Commit("tx")
	s.Abort("tx") // late duplicate abort
	if s.Committed("item") != 3 {
		t.Fatalf("late abort clawed back committed units: %d", s.Committed("item"))
	}
	s2 := NewSlotResource(map[string]int64{"item": 5})
	if !s2.Prepare("tx", SlotOp("item", 3)) {
		t.Fatal("prepare")
	}
	s2.Abort("tx")
	s2.Commit("tx") // late duplicate commit
	if s2.Committed("item") != 0 {
		t.Fatalf("late commit applied aborted units: %d", s2.Committed("item"))
	}
}
