package vtime

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestDriveAdvancesThroughSleepChain: a goroutine performing a chain of
// dependent sleeps (each installed only after the previous fires) must be
// carried to completion by Drive, with virtual time equal to the sum of
// the sleeps and real time far below it.
func TestDriveAdvancesThroughSleepChain(t *testing.T) {
	start := time.Unix(0, 0)
	s := NewSim(start)
	var finished atomic.Bool
	const steps = 50
	const step = time.Second
	go func() {
		for i := 0; i < steps; i++ {
			s.Sleep(step)
		}
		finished.Store(true)
	}()

	begin := time.Now()
	s.Drive(finished.Load, DriveOptions{})
	real := time.Since(begin)

	if got := s.Since(start); got != steps*step {
		t.Fatalf("virtual time advanced %v, want %v", got, steps*step)
	}
	if real > 5*time.Second {
		t.Fatalf("Drive took %v real for %v virtual; the clock is not simulated", real, steps*step)
	}
}

// TestDriveInterleavesConcurrentSleepers: concurrent goroutines with
// distinct deadlines must each fire at exactly its own virtual deadline —
// the clock may not skip past a pending earlier timer.
func TestDriveInterleavesConcurrentSleepers(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	wakeups := make(chan int64, 2)
	var woken atomic.Int32
	sleeper := func(d time.Duration) {
		ft := <-s.After(d) // the delivered value is the fire time
		wakeups <- ft.Unix()
		woken.Add(1)
	}
	go sleeper(2 * time.Second)
	go sleeper(1 * time.Second)
	s.Drive(func() bool { return woken.Load() == 2 }, DriveOptions{})
	got := map[int64]bool{<-wakeups: true, <-wakeups: true}
	if !got[1] || !got[2] {
		t.Fatalf("fire times = %v, want {1s, 2s}", got)
	}
}

// TestDriveIdlesUntilLateTimer: Drive must not stop making progress when a
// goroutine takes real time to reach its blocking point.
func TestDriveIdlesUntilLateTimer(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	var fired atomic.Bool
	go func() {
		time.Sleep(2 * time.Millisecond) // real delay before any timer exists
		s.Sleep(time.Hour)
		fired.Store(true)
	}()
	s.Drive(fired.Load, DriveOptions{Settle: 100 * time.Microsecond})
	if s.Since(time.Unix(0, 0)) < time.Hour {
		t.Fatalf("virtual time %v, want >= 1h", s.Since(time.Unix(0, 0)))
	}
}
