// Package vtime provides the clock abstraction used by every time-dependent
// component of the runtime (network latency, receive timeouts, crash
// schedules).
//
// Two implementations are provided: Real, a thin wrapper over the wall
// clock, and Sim, a deterministic simulated clock whose time advances only
// when a test calls Advance. All runtime components take a Clock so that
// unit tests of timeout logic are exact and reproducible, while system-level
// benches run against the wall clock.
package vtime

import "time"

// Clock abstracts the passage of time.
//
// Implementations must be safe for concurrent use.
type Clock interface {
	// Now returns the current time on this clock.
	Now() time.Time
	// After returns a channel that receives the then-current time once d
	// has elapsed on this clock.
	After(d time.Duration) <-chan time.Time
	// NewTimer returns a timer that fires once after d.
	NewTimer(d time.Duration) Timer
	// Sleep blocks the calling goroutine for d.
	Sleep(d time.Duration)
	// Since returns the time elapsed since t.
	Since(t time.Time) time.Duration
}

// Timer is a single-shot timer bound to a Clock.
type Timer interface {
	// C returns the channel on which the expiry is delivered.
	C() <-chan time.Time
	// Stop prevents the timer from firing. It reports whether the call
	// stopped the timer before it fired.
	Stop() bool
}

// Real is the wall clock. The zero value is ready to use.
type Real struct{}

// NewReal returns the wall clock.
func NewReal() Real { return Real{} }

// Now implements Clock.
func (Real) Now() time.Time { return time.Now() }

// After implements Clock.
func (Real) After(d time.Duration) <-chan time.Time { return time.After(d) }

// Sleep implements Clock.
func (Real) Sleep(d time.Duration) { time.Sleep(d) }

// Since implements Clock.
func (Real) Since(t time.Time) time.Duration { return time.Since(t) }

// NewTimer implements Clock.
func (Real) NewTimer(d time.Duration) Timer { return realTimer{time.NewTimer(d)} }

type realTimer struct{ t *time.Timer }

func (rt realTimer) C() <-chan time.Time { return rt.t.C }
func (rt realTimer) Stop() bool          { return rt.t.Stop() }
