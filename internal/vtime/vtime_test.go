package vtime

import (
	"sync"
	"testing"
	"time"
)

func TestRealNowMonotonic(t *testing.T) {
	c := NewReal()
	a := c.Now()
	b := c.Now()
	if b.Before(a) {
		t.Fatalf("real clock went backward: %v then %v", a, b)
	}
}

func TestRealTimerFires(t *testing.T) {
	c := NewReal()
	tm := c.NewTimer(time.Millisecond)
	select {
	case <-tm.C():
	case <-time.After(time.Second):
		t.Fatal("real timer did not fire within 1s")
	}
}

func TestRealTimerStop(t *testing.T) {
	c := NewReal()
	tm := c.NewTimer(time.Hour)
	if !tm.Stop() {
		t.Fatal("Stop on unexpired timer reported false")
	}
}

func TestSimNowFrozen(t *testing.T) {
	start := time.Unix(1000, 0)
	s := NewSim(start)
	if !s.Now().Equal(start) {
		t.Fatalf("Now = %v, want %v", s.Now(), start)
	}
	// Wall time passing must not move simulated time.
	time.Sleep(2 * time.Millisecond)
	if !s.Now().Equal(start) {
		t.Fatalf("sim clock drifted to %v without Advance", s.Now())
	}
}

func TestSimAdvanceFiresTimerAtDeadline(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	tm := s.NewTimer(10 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired before Advance")
	default:
	}
	s.Advance(9 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("timer fired 1s early")
	default:
	}
	s.Advance(time.Second)
	select {
	case at := <-tm.C():
		want := time.Unix(10, 0)
		if !at.Equal(want) {
			t.Fatalf("timer delivered time %v, want %v", at, want)
		}
	default:
		t.Fatal("timer did not fire at its deadline")
	}
}

func TestSimTimersFireInDeadlineOrder(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	var mu sync.Mutex
	var order []int
	var wg sync.WaitGroup
	delays := []time.Duration{30 * time.Second, 10 * time.Second, 20 * time.Second}
	for i, d := range delays {
		wg.Add(1)
		tm := s.NewTimer(d)
		go func(i int, tm Timer) {
			defer wg.Done()
			<-tm.C()
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i, tm)
	}
	// Advance step-wise so each goroutine records before the next fires.
	for _, step := range []time.Duration{10 * time.Second, 10 * time.Second, 10 * time.Second} {
		s.Advance(step)
		time.Sleep(time.Millisecond) // allow the woken goroutine to record
	}
	wg.Wait()
	want := []int{1, 2, 0}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fire order = %v, want %v", order, want)
		}
	}
}

func TestSimEqualDeadlinesFireInCreationOrder(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	t1 := s.NewTimer(5 * time.Second)
	t2 := s.NewTimer(5 * time.Second)
	s.Advance(5 * time.Second)
	// Both fired; verify both channels hold the value and t1 was queued
	// first (heap tie-break by sequence).
	<-t1.C()
	<-t2.C()
}

func TestSimZeroDurationFiresImmediately(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	tm := s.NewTimer(0)
	select {
	case <-tm.C():
	default:
		t.Fatal("zero-duration timer did not fire immediately")
	}
}

func TestSimStopPreventsFire(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	tm := s.NewTimer(time.Second)
	if !tm.Stop() {
		t.Fatal("Stop reported false on pending timer")
	}
	s.Advance(2 * time.Second)
	select {
	case <-tm.C():
		t.Fatal("stopped timer fired")
	default:
	}
	if tm.Stop() {
		t.Fatal("second Stop reported true")
	}
}

func TestSimSleepWakesOnAdvance(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	done := make(chan struct{})
	go func() {
		s.Sleep(5 * time.Second)
		close(done)
	}()
	// Wait for the sleeper to register its timer.
	for s.PendingTimers() == 0 {
		time.Sleep(100 * time.Microsecond)
	}
	s.Advance(5 * time.Second)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("Sleep did not return after Advance")
	}
}

func TestSimAdvanceToNeverMovesBackward(t *testing.T) {
	s := NewSim(time.Unix(100, 0))
	s.AdvanceTo(time.Unix(50, 0))
	if got := s.Now(); !got.Equal(time.Unix(100, 0)) {
		t.Fatalf("AdvanceTo moved time backward to %v", got)
	}
}

func TestSimRunUntilIdle(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	var fired int
	t1 := s.NewTimer(time.Second)
	t2 := s.NewTimer(3 * time.Second)
	go func() { <-t1.C(); <-t2.C() }()
	end := s.RunUntilIdle()
	if !end.Equal(time.Unix(3, 0)) {
		t.Fatalf("RunUntilIdle ended at %v, want t=3s", end)
	}
	_ = fired
	if n := s.PendingTimers(); n != 0 {
		t.Fatalf("PendingTimers = %d after RunUntilIdle, want 0", n)
	}
}

func TestSimNextDeadlineSkipsStopped(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	early := s.NewTimer(time.Second)
	s.NewTimer(5 * time.Second)
	early.Stop()
	d, ok := s.NextDeadline()
	if !ok {
		t.Fatal("NextDeadline reported no pending timers")
	}
	if !d.Equal(time.Unix(5, 0)) {
		t.Fatalf("NextDeadline = %v, want t=5s (stopped timer must be skipped)", d)
	}
}

func TestSimSinceTracksAdvance(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	mark := s.Now()
	s.Advance(42 * time.Second)
	if got := s.Since(mark); got != 42*time.Second {
		t.Fatalf("Since = %v, want 42s", got)
	}
}

func TestSimConcurrentTimerCreation(t *testing.T) {
	s := NewSim(time.Unix(0, 0))
	const n = 100
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tm := s.NewTimer(time.Duration(i%10+1) * time.Second)
			_ = tm
		}(i)
	}
	wg.Wait()
	if got := s.PendingTimers(); got != n {
		t.Fatalf("PendingTimers = %d, want %d", got, n)
	}
	s.Advance(10 * time.Second)
	if got := s.PendingTimers(); got != 0 {
		t.Fatalf("PendingTimers = %d after draining Advance, want 0", got)
	}
}

func TestRealAfterAndSleep(t *testing.T) {
	c := NewReal()
	start := c.Now()
	c.Sleep(2 * time.Millisecond)
	select {
	case <-c.After(time.Millisecond):
	case <-time.After(time.Second):
		t.Fatal("After never fired")
	}
	if c.Since(start) < 3*time.Millisecond {
		t.Fatalf("Since = %v, want ≥ 3ms", c.Since(start))
	}
}
