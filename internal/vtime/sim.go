package vtime

import (
	"container/heap"
	"sync"
	"time"
)

// Sim is a deterministic simulated clock. Time stands still until a test
// calls Advance or AdvanceTo, at which point every timer whose deadline has
// been reached fires, in deadline order (ties broken by creation order).
//
// Goroutines that Sleep on a Sim clock block until an Advance moves time
// past their wakeup point.
type Sim struct {
	mu      sync.Mutex
	now     time.Time
	seq     uint64 // tie-break for identical deadlines
	pending timerHeap
}

// NewSim returns a simulated clock whose current time is start.
func NewSim(start time.Time) *Sim {
	return &Sim{now: start}
}

// Now implements Clock.
func (s *Sim) Now() time.Time {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.now
}

// Since implements Clock.
func (s *Sim) Since(t time.Time) time.Duration {
	return s.Now().Sub(t)
}

// After implements Clock.
func (s *Sim) After(d time.Duration) <-chan time.Time {
	return s.NewTimer(d).C()
}

// NewTimer implements Clock.
func (s *Sim) NewTimer(d time.Duration) Timer {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := &simTimer{
		clock:    s,
		deadline: s.now.Add(d),
		ch:       make(chan time.Time, 1),
	}
	if d <= 0 {
		t.fired = true
		//lint:allow lockorder the timer channel is buffered(1) and fired guards the only send, so it cannot block
		t.ch <- s.now
		return t
	}
	t.seq = s.seq
	s.seq++
	heap.Push(&s.pending, t)
	return t
}

// Sleep implements Clock. It blocks until the simulated time has advanced
// by at least d.
func (s *Sim) Sleep(d time.Duration) {
	<-s.After(d)
}

// Advance moves simulated time forward by d, firing every timer whose
// deadline falls within the window, in deadline order.
func (s *Sim) Advance(d time.Duration) {
	s.mu.Lock()
	target := s.now.Add(d)
	s.mu.Unlock()
	s.AdvanceTo(target)
}

// AdvanceTo moves simulated time forward to t (never backward), firing
// timers as their deadlines are crossed.
func (s *Sim) AdvanceTo(t time.Time) {
	for {
		s.mu.Lock()
		if len(s.pending) == 0 || s.pending[0].deadline.After(t) {
			if t.After(s.now) {
				s.now = t
			}
			s.mu.Unlock()
			return
		}
		tm := heap.Pop(&s.pending).(*simTimer)
		if tm.deadline.After(s.now) {
			s.now = tm.deadline
		}
		if !tm.stopped {
			tm.fired = true
			//lint:allow lockorder the timer channel is buffered(1) and fired/stopped guard the only send, so it cannot block
			tm.ch <- s.now
		}
		s.mu.Unlock()
	}
}

// PendingTimers reports how many unexpired, unstopped timers exist. Useful
// for tests that need to know a goroutine has reached its blocking point.
func (s *Sim) PendingTimers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, t := range s.pending {
		if !t.stopped {
			n++
		}
	}
	return n
}

// NextDeadline returns the deadline of the earliest pending timer and true,
// or the zero time and false when no timers are pending.
func (s *Sim) NextDeadline() (time.Time, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, t := range s.pending {
		if !t.stopped {
			// Heap order puts the earliest first, but stopped timers may
			// shadow it; scan for the minimum among live timers.
			min := t.deadline
			for _, u := range s.pending {
				if !u.stopped && u.deadline.Before(min) {
					min = u.deadline
				}
			}
			return min, true
		}
	}
	return time.Time{}, false
}

// RunUntilIdle advances the clock through every pending timer, firing each
// in order, and returns the final simulated time. It is the usual way to
// drain a deterministic schedule in tests.
func (s *Sim) RunUntilIdle() time.Time {
	for {
		d, ok := s.NextDeadline()
		if !ok {
			return s.Now()
		}
		s.AdvanceTo(d)
	}
}

type simTimer struct {
	clock    *Sim
	deadline time.Time
	seq      uint64
	ch       chan time.Time
	index    int
	fired    bool
	stopped  bool
}

func (t *simTimer) C() <-chan time.Time { return t.ch }

func (t *simTimer) Stop() bool {
	t.clock.mu.Lock()
	defer t.clock.mu.Unlock()
	if t.fired || t.stopped {
		return false
	}
	t.stopped = true
	return true
}

// timerHeap orders timers by (deadline, seq).
type timerHeap []*simTimer

func (h timerHeap) Len() int { return len(h) }
func (h timerHeap) Less(i, j int) bool {
	if h[i].deadline.Equal(h[j].deadline) {
		return h[i].seq < h[j].seq
	}
	return h[i].deadline.Before(h[j].deadline)
}
func (h timerHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *timerHeap) Push(x any) {
	t := x.(*simTimer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *timerHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return t
}
