package vtime

import "time"

// DriveOptions tunes Drive's pacing.
type DriveOptions struct {
	// Settle is the real-time window granted after each virtual advance for
	// the woken goroutines to run and install their next timers. Too small
	// and the driver races ahead of the simulation (a reply's delivery
	// timer not yet created when the caller's timeout fires); too large and
	// the simulation just runs slower. Zero means 200µs.
	Settle time.Duration
	// Idle is the real-time pause taken when no timers are pending but
	// done() is still false — goroutines are en route to their blocking
	// points. Zero means Settle.
	Idle time.Duration
}

func (o DriveOptions) withDefaults() DriveOptions {
	if o.Settle <= 0 {
		o.Settle = 200 * time.Microsecond
	}
	if o.Idle <= 0 {
		o.Idle = o.Settle
	}
	return o
}

// Drive runs the simulated clock hands-free: until done() reports true, it
// advances virtual time to the earliest pending deadline (firing the
// timers there), then yields a settle window of real time so the woken
// goroutines can run and install their next timers before the clock moves
// again. When no timers are pending it idles briefly and re-checks.
//
// This is the virtual-time event scheduler the deterministic simulation
// harness (internal/dst) runs on: every component blocks only on this
// clock (network delays, receive timeouts, retry backoff, fault-schedule
// offsets), so a whole multi-node run — seconds of simulated traffic,
// crashes and partitions included — completes in milliseconds of real
// time, in deadline order.
//
// Drive controls when virtual time moves, not how the Go scheduler
// interleaves the goroutines that wake; see DESIGN.md §7 for what that
// does and does not guarantee.
func (s *Sim) Drive(done func() bool, opts DriveOptions) {
	opts = opts.withDefaults()
	for !done() {
		if d, ok := s.NextDeadline(); ok {
			s.AdvanceTo(d)
			time.Sleep(opts.Settle)
			continue
		}
		time.Sleep(opts.Idle)
	}
}
