// Package sendprim implements the two communication primitives the paper
// compares against the no-wait send (§3) — the synchronization send of
// Hoare and the remote transaction send of Brinch Hansen — built on top of
// the no-wait send, demonstrating the paper's claim that the no-wait send
// "can be used to implement the others, but not vice versa (if extra
// message passing is to be avoided)".
//
// Both constructions necessarily cost extra messages and extra sender
// blocking; experiment E4 counts exactly how many, per exchange pattern.
package sendprim

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

// Package errors.
var (
	// ErrSyncTimeout: the synchronization send's receipt acknowledgement
	// never arrived. The sender knows nothing about the message's fate.
	ErrSyncTimeout = errors.New("sendprim: synchronization send timed out awaiting receipt")
	// ErrCallTimeout: every attempt of a remote transaction send timed
	// out. The request may have been performed any number of times.
	ErrCallTimeout = errors.New("sendprim: remote transaction send exhausted retries")
	// ErrCallFailed: the system reported a failure (dead port/guardian)
	// for the request.
	ErrCallFailed = errors.New("sendprim: remote transaction send failed")
)

// AckType is the port type on which synchronization-send receipt
// acknowledgements arrive.
var AckType = guardian.NewPortType("syncsend_ack_port").
	Msg("received")

// SyncSend is the synchronization send: it transmits the message and
// blocks until the receiving process has removed it (or timeout elapses).
// "The sending process waits until the message has been received by the
// target process."
//
// The construction appends a hidden acknowledgement port as a trailing
// argument; the receiving process must call Acknowledge when it removes
// the message. One exchange therefore costs two messages where the
// no-wait send costs one.
func SyncSend(pr *guardian.Process, to xrep.PortName, timeout time.Duration, command string, args ...any) error {
	ack, err := pr.Guardian().NewPort(AckType, 1)
	if err != nil {
		return err
	}
	defer pr.Guardian().RemovePort(ack)
	args = append(args, ack.Name())
	if err := pr.Send(to, command, args...); err != nil {
		return err
	}
	m, st := pr.Receive(timeout, ack)
	switch st {
	case guardian.RecvOK:
		if m.IsFailure() {
			// The runtime routed a delivery failure to our ack port (the
			// ack port was not the replyto, so this only happens when the
			// receiver forwarded one); treat as not received.
			return fmt.Errorf("%w: %s", ErrSyncTimeout, m.FailureText())
		}
		return nil
	case guardian.RecvKilled:
		return guardian.ErrKilled
	default:
		return ErrSyncTimeout
	}
}

// Acknowledge completes the receiving half of a synchronization send: the
// receiver calls it immediately upon removing the message. The trailing
// argument carries the hidden acknowledgement port.
func Acknowledge(pr *guardian.Process, m *guardian.Message) error {
	if len(m.Args) == 0 {
		return errors.New("sendprim: message carries no acknowledgement port")
	}
	ackPort, ok := m.Args[len(m.Args)-1].(xrep.PortName)
	if !ok {
		return errors.New("sendprim: trailing argument is not an acknowledgement port")
	}
	return pr.Send(ackPort, "received")
}

// StripAck returns the message's application arguments with the hidden
// acknowledgement port removed.
func StripAck(m *guardian.Message) xrep.Seq {
	if len(m.Args) == 0 {
		return m.Args
	}
	if _, ok := m.Args[len(m.Args)-1].(xrep.PortName); ok {
		return m.Args[:len(m.Args)-1]
	}
	return m.Args
}

// CallOptions tunes a remote transaction send.
type CallOptions struct {
	// Timeout bounds each attempt.
	Timeout time.Duration
	// Retries is the number of re-sends after the first attempt. Retrying
	// is only safe when the request is idempotent — the paper's reserve
	// and cancel are designed to be exactly that (§3.5).
	Retries int
	// ReplyCapacity sizes the ephemeral reply port. Zero means 4.
	ReplyCapacity int
}

// Call is the remote transaction send: "the sending process waits for a
// response from the receiving process that the command has been carried
// out." It sends the request with an ephemeral reply port, waits for the
// response, and optionally retries on timeout, masking message loss (but
// not node failure — on exhaustion the caller knows nothing, exactly the
// uncertainty §3.5 describes).
func Call(pr *guardian.Process, to xrep.PortName, replyType *guardian.PortType, opts CallOptions, command string, args ...any) (*guardian.Message, error) {
	capacity := opts.ReplyCapacity
	if capacity == 0 {
		capacity = 4
	}
	reply, err := pr.Guardian().NewPort(replyType, capacity)
	if err != nil {
		return nil, err
	}
	defer pr.Guardian().RemovePort(reply)

	attempts := opts.Retries + 1
	for i := 0; i < attempts; i++ {
		if err := pr.SendReplyTo(to, reply.Name(), command, args...); err != nil {
			return nil, err
		}
		m, st := pr.Receive(opts.Timeout, reply)
		switch st {
		case guardian.RecvOK:
			if m.IsFailure() {
				return nil, fmt.Errorf("%w: %s", ErrCallFailed, m.FailureText())
			}
			return m, nil
		case guardian.RecvKilled:
			return nil, guardian.ErrKilled
		case guardian.RecvTimeout:
			// fall through to retry
		}
	}
	return nil, ErrCallTimeout
}
