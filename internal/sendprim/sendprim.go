// Package sendprim implements the two communication primitives the paper
// compares against the no-wait send (§3) — the synchronization send of
// Hoare and the remote transaction send of Brinch Hansen — built on top of
// the no-wait send, demonstrating the paper's claim that the no-wait send
// "can be used to implement the others, but not vice versa (if extra
// message passing is to be avoided)".
//
// Both constructions necessarily cost extra messages and extra sender
// blocking; experiment E4 counts exactly how many, per exchange pattern.
package sendprim

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

// Package errors.
var (
	// ErrSyncTimeout: the synchronization send's receipt acknowledgement
	// never arrived. The sender knows nothing about the message's fate.
	ErrSyncTimeout = errors.New("sendprim: synchronization send timed out awaiting receipt")
	// ErrCallTimeout: every attempt of a remote transaction send timed
	// out. The request may have been performed any number of times.
	ErrCallTimeout = errors.New("sendprim: remote transaction send exhausted retries")
	// ErrCallFailed: the system reported a failure (dead port/guardian)
	// for the request.
	ErrCallFailed = errors.New("sendprim: remote transaction send failed")
)

// AckType is the port type on which synchronization-send receipt
// acknowledgements arrive.
var AckType = guardian.NewPortType("syncsend_ack_port").
	Msg("received")

// ackRecName tags the hidden acknowledgement port. The tag is a reserved
// record name rather than a bare port value, so a message whose final real
// argument happens to be a port is never mistaken for a sync send.
const ackRecName = "sendprim/ack"

// AckArg wraps an acknowledgement port in its unambiguous tag. Port types
// receiving sync sends declare the hidden trailing slot as KindRec.
func AckArg(p xrep.PortName) xrep.Rec {
	return xrep.Rec{Name: ackRecName, Fields: xrep.Seq{p}}
}

// ackPort extracts the acknowledgement port from a message's trailing
// argument, reporting ok=false when the message is not a sync send.
func ackPort(m *guardian.Message) (xrep.PortName, bool) {
	if len(m.Args) == 0 {
		return xrep.PortName{}, false
	}
	rec, ok := m.Args[len(m.Args)-1].(xrep.Rec)
	if !ok || rec.Name != ackRecName || len(rec.Fields) != 1 {
		return xrep.PortName{}, false
	}
	p, ok := rec.Fields[0].(xrep.PortName)
	return p, ok
}

// SyncSend is the synchronization send: it transmits the message and
// blocks until the receiving process has removed it (or timeout elapses).
// "The sending process waits until the message has been received by the
// target process."
//
// The construction appends a hidden, tagged acknowledgement port as a
// trailing argument; the receiving process must call Acknowledge when it
// removes the message. One exchange therefore costs two messages where the
// no-wait send costs one.
func SyncSend(pr *guardian.Process, to xrep.PortName, timeout time.Duration, command string, args ...any) error {
	ack, err := pr.Guardian().NewPort(AckType, 1)
	if err != nil {
		return err
	}
	defer pr.Guardian().RemovePort(ack)
	args = append(args, AckArg(ack.Name()))
	if err := pr.Send(to, command, args...); err != nil {
		return err
	}
	m, st := pr.Receive(timeout, ack)
	switch st {
	case guardian.RecvOK:
		if m.IsFailure() {
			// The runtime routed a delivery failure to our ack port (the
			// ack port was not the replyto, so this only happens when the
			// receiver forwarded one); treat as not received.
			return fmt.Errorf("%w: %s", ErrSyncTimeout, m.FailureText())
		}
		return nil
	case guardian.RecvKilled:
		return guardian.ErrKilled
	default:
		return ErrSyncTimeout
	}
}

// Acknowledge completes the receiving half of a synchronization send: the
// receiver calls it immediately upon removing the message. The trailing
// argument carries the hidden, tagged acknowledgement port.
func Acknowledge(pr *guardian.Process, m *guardian.Message) error {
	p, ok := ackPort(m)
	if !ok {
		return errors.New("sendprim: message carries no tagged acknowledgement port")
	}
	return pr.Send(p, "received")
}

// StripAck returns the message's application arguments with the hidden
// acknowledgement port removed. Only the tagged record is stripped: a
// message whose final real argument is a plain port keeps it.
func StripAck(m *guardian.Message) xrep.Seq {
	if _, ok := ackPort(m); ok {
		return m.Args[:len(m.Args)-1]
	}
	return m.Args
}

// CallOptions tunes a remote transaction send.
type CallOptions struct {
	// Timeout bounds each attempt.
	Timeout time.Duration
	// Retries is the number of re-sends after the first attempt. Retrying
	// is only safe when the request is idempotent — the paper's reserve
	// and cancel are designed to be exactly that (§3.5) — or when the
	// receiver runs an at-most-once filter (package amo).
	Retries int
	// ReplyCapacity sizes the ephemeral reply port. Zero means 4.
	ReplyCapacity int
	// Backoff is the delay inserted before the first re-send; each further
	// re-send doubles it, capped at BackoffCap. Zero keeps the historical
	// behavior: immediate blind re-send.
	Backoff time.Duration
	// BackoffCap bounds the grown backoff. Zero means the world Tuning's
	// BackoffCap, or 32×Backoff when that too is zero.
	BackoffCap time.Duration
	// Resolve, when non-nil, is consulted before every retry (not the
	// first attempt): it re-resolves the destination so a call that is
	// retrying against a dead primary picks up a re-bound nameserver
	// entry instead of hammering the cached address forever. Returning
	// ok=false keeps the previous destination.
	Resolve func() (to xrep.PortName, ok bool)
}

// backoffFor returns the delay to insert after failed attempt number
// attempt (0-based).
func (o CallOptions) backoffFor(attempt int) time.Duration {
	if o.Backoff <= 0 {
		return 0
	}
	cap := o.BackoffCap
	if cap <= 0 {
		cap = 32 * o.Backoff
	}
	d := o.Backoff
	for i := 0; i < attempt && d < cap; i++ {
		d *= 2
	}
	if d > cap {
		d = cap
	}
	return d
}

// CallTiming records one attempt of a remote transaction send.
type CallTiming struct {
	// Start is the attempt's offset from the call's beginning.
	Start time.Duration
	// Wait is how long the attempt waited for a reply.
	Wait time.Duration
	// Backoff is the delay slept after the attempt failed.
	Backoff time.Duration
}

// CallError reports an exhausted remote transaction send with per-attempt
// timing. It unwraps to ErrCallTimeout, so errors.Is keeps working.
type CallError struct {
	Attempts []CallTiming
}

// Error implements error.
func (e *CallError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v after %d attempts (", ErrCallTimeout, len(e.Attempts))
	for i, a := range e.Attempts {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "@%v waited %v", a.Start.Round(time.Millisecond), a.Wait.Round(time.Millisecond))
		if a.Backoff > 0 {
			fmt.Fprintf(&b, " backoff %v", a.Backoff.Round(time.Millisecond))
		}
	}
	b.WriteString(")")
	return b.String()
}

// Unwrap lets errors.Is(err, ErrCallTimeout) succeed.
func (e *CallError) Unwrap() error { return ErrCallTimeout }

// Call is the remote transaction send: "the sending process waits for a
// response from the receiving process that the command has been carried
// out." It sends the request with an ephemeral reply port, waits for the
// response, and optionally retries on timeout — with exponential backoff
// between attempts when Backoff is set — masking message loss (but not
// node failure: on exhaustion the caller knows nothing, exactly the
// uncertainty §3.5 describes, and the returned CallError carries the
// per-attempt timing so the caller can see how the budget was spent).
func Call(pr *guardian.Process, to xrep.PortName, replyType *guardian.PortType, opts CallOptions, command string, args ...any) (*guardian.Message, error) {
	capacity := opts.ReplyCapacity
	if capacity == 0 {
		capacity = 4
	}
	reply, err := pr.Guardian().NewPort(replyType, capacity)
	if err != nil {
		return nil, err
	}
	defer pr.Guardian().RemovePort(reply)

	clock := pr.Guardian().Node().World().Clock()
	if opts.BackoffCap <= 0 {
		opts.BackoffCap = pr.Guardian().Node().World().Tuning().BackoffCap
	}
	begin := clock.Now()
	attempts := opts.Retries + 1
	timings := make([]CallTiming, 0, attempts)
	for i := 0; i < attempts; i++ {
		if i > 0 && opts.Resolve != nil {
			if fresh, ok := opts.Resolve(); ok {
				to = fresh
			}
		}
		attemptStart := clock.Now()
		if err := pr.SendReplyTo(to, reply.Name(), command, args...); err != nil {
			return nil, err
		}
		m, st := pr.Receive(opts.Timeout, reply)
		switch st {
		case guardian.RecvOK:
			if m.IsFailure() {
				// With a resolver, a failure report (dead guardian or
				// port at the cached address) is grounds to re-resolve
				// and retry, not to give up: the binding may have moved.
				if opts.Resolve != nil && i < attempts-1 {
					t := CallTiming{
						Start:   attemptStart.Sub(begin),
						Wait:    clock.Now().Sub(attemptStart),
						Backoff: opts.backoffFor(i),
					}
					if t.Backoff > 0 && !pr.Pause(t.Backoff) {
						return nil, guardian.ErrKilled
					}
					timings = append(timings, t)
					continue
				}
				return nil, fmt.Errorf("%w: %s", ErrCallFailed, m.FailureText())
			}
			return m, nil
		case guardian.RecvKilled:
			return nil, guardian.ErrKilled
		case guardian.RecvTimeout:
			t := CallTiming{
				Start: attemptStart.Sub(begin),
				Wait:  clock.Now().Sub(attemptStart),
			}
			if i < attempts-1 {
				t.Backoff = opts.backoffFor(i)
				if t.Backoff > 0 && !pr.Pause(t.Backoff) {
					return nil, guardian.ErrKilled
				}
			}
			timings = append(timings, t)
		}
	}
	return nil, &CallError{Attempts: timings}
}
