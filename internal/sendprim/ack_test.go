package sendprim

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

// TestAckPortTagging locks in the regression the tagged ack record exists
// to prevent: only a trailing record named "sendprim/ack" wrapping exactly
// one port marks a sync send. In particular, a message whose last REAL
// argument happens to be a plain port must never be mistaken for one —
// stripping it would eat an application argument.
func TestAckPortTagging(t *testing.T) {
	port := xrep.PortName{Node: "n", Guardian: 3, Port: 7}
	tagged := AckArg(port)

	cases := []struct {
		name     string
		args     xrep.Seq
		wantAck  bool
		wantKeep int // len(StripAck result)
	}{
		{
			name:     "tagged record is recognized and stripped",
			args:     xrep.Seq{xrep.Str("payload"), tagged},
			wantAck:  true,
			wantKeep: 1,
		},
		{
			name:     "tagged record as the only argument",
			args:     xrep.Seq{tagged},
			wantAck:  true,
			wantKeep: 0,
		},
		{
			name:     "trailing plain port is an application argument",
			args:     xrep.Seq{xrep.Str("register"), port},
			wantAck:  false,
			wantKeep: 2,
		},
		{
			name:     "no arguments",
			args:     xrep.Seq{},
			wantAck:  false,
			wantKeep: 0,
		},
		{
			name:     "record with a foreign name is kept",
			args:     xrep.Seq{xrep.Rec{Name: "app/ack", Fields: xrep.Seq{port}}},
			wantAck:  false,
			wantKeep: 1,
		},
		{
			name:     "right name, wrong arity is kept",
			args:     xrep.Seq{xrep.Rec{Name: ackRecName, Fields: xrep.Seq{port, port}}},
			wantAck:  false,
			wantKeep: 1,
		},
		{
			name:     "right name, field is not a port",
			args:     xrep.Seq{xrep.Rec{Name: ackRecName, Fields: xrep.Seq{xrep.Str("x")}}},
			wantAck:  false,
			wantKeep: 1,
		},
		{
			name:     "tagged record not in trailing position is kept",
			args:     xrep.Seq{tagged, xrep.Str("payload")},
			wantAck:  false,
			wantKeep: 2,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := &guardian.Message{Command: "work", Args: tc.args}
			got, ok := ackPort(m)
			if ok != tc.wantAck {
				t.Fatalf("ackPort ok = %v, want %v", ok, tc.wantAck)
			}
			if ok && got != port {
				t.Fatalf("ackPort = %v, want %v", got, port)
			}
			stripped := StripAck(m)
			if len(stripped) != tc.wantKeep {
				t.Fatalf("StripAck kept %d args, want %d (%v)", len(stripped), tc.wantKeep, stripped)
			}
			if !tc.wantAck && !reflect.DeepEqual(stripped, tc.args) {
				t.Fatalf("StripAck changed a non-sync message: %v -> %v", tc.args, stripped)
			}
			if err := Acknowledge(noopProcess(), m); (err == nil) != tc.wantAck {
				t.Fatalf("Acknowledge err = %v, want success=%v", err, tc.wantAck)
			}
		})
	}
}

// noopProcess builds a throwaway world/process for Acknowledge's send; the
// destination port does not exist, which is fine — Acknowledge's send is
// no-wait and the test only cares whether the tag was recognized.
func noopProcess() *guardian.Process {
	w := guardian.NewWorld(guardian.Config{})
	_, pr, err := w.MustAddNode("t").NewDriver("t")
	if err != nil {
		panic(err)
	}
	return pr
}

// TestSyncSendKeepsTrailingPortArgument is the live half of the
// regression lock: a no-wait message whose final declared argument is a
// plain port travels the real wire and must arrive un-stripped, with
// ackPort reporting not-a-sync-send.
func TestSyncSendKeepsTrailingPortArgument(t *testing.T) {
	regType := guardian.NewPortType("reg_port").
		Msg("register", xrep.KindString, xrep.KindPortName)
	got := make(chan xrep.Seq, 1)
	w := guardian.NewWorld(guardian.Config{})
	srv := w.MustAddNode("srv")
	cli := w.MustAddNode("cli")
	w.MustRegister(&guardian.GuardianDef{
		TypeName: "registrar",
		Provides: []*guardian.PortType{regType},
		Init: func(ctx *guardian.Ctx) {
			//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
			guardian.NewReceiver(ctx.Ports[0]).
				When("register", func(pr *guardian.Process, m *guardian.Message) {
					if _, ok := ackPort(m); ok {
						t.Error("plain trailing port was mistaken for a sync-send ack")
					}
					got <- StripAck(m)
				}).
				Loop(ctx.Proc, nil)
		},
	})
	created, err := srv.Bootstrap("registrar")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := cli.NewDriver("client")
	if err != nil {
		t.Fatal(err)
	}
	callback := xrep.PortName{Node: "cli", Guardian: 42, Port: 1}
	if err := drv.Send(created.Ports[0], "register", "svc", callback); err != nil {
		t.Fatal(err)
	}
	select {
	case args := <-got:
		if len(args) != 2 {
			t.Fatalf("receiver saw %d args, want 2 (%v)", len(args), args)
		}
		if p, ok := args[1].(xrep.PortName); !ok || p != callback {
			t.Fatalf("trailing port argument corrupted: %v", args[1])
		}
	case <-time.After(2 * time.Second):
		t.Fatal("register message never arrived")
	}
}
