package sendprim

import (
	"errors"
	"testing"
	"time"

	"repro/internal/guardian"
	"repro/internal/netsim"
	"repro/internal/xrep"
)

// workType declares a trailing KindRec slot for the hidden, tagged
// sync-send ack port (present only on sync sends) by declaring two
// commands.
var workType = guardian.NewPortType("work_port").
	Msg("work_sync", xrep.KindString, xrep.KindRec). // sync-send variant
	Msg("work", xrep.KindString).                    // no-wait / call variant
	Replies("work", "done")

var doneType = guardian.NewPortType("done_port").
	Msg("done", xrep.KindString)

// newWorker builds a world with a worker guardian on node "srv" that
// acknowledges sync sends and answers calls.
func newWorker(t *testing.T, netCfg netsim.Config, workDelay time.Duration) (*guardian.World, xrep.PortName, *guardian.Process) {
	t.Helper()
	w := guardian.NewWorld(guardian.Config{Net: netCfg})
	srv := w.MustAddNode("srv")
	cli := w.MustAddNode("cli")
	w.MustRegister(&guardian.GuardianDef{
		TypeName: "worker",
		Provides: []*guardian.PortType{workType},
		Init: func(ctx *guardian.Ctx) {
			//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
			guardian.NewReceiver(ctx.Ports[0]).
				When("work_sync", func(pr *guardian.Process, m *guardian.Message) {
					if err := Acknowledge(pr, m); err != nil {
						t.Errorf("Acknowledge: %v", err)
					}
					if workDelay > 0 {
						pr.Pause(workDelay)
					}
				}).
				When("work", func(pr *guardian.Process, m *guardian.Message) {
					if workDelay > 0 {
						pr.Pause(workDelay)
					}
					if !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "done", m.Str(0))
					}
				}).
				Loop(ctx.Proc, nil)
		},
	})
	created, err := srv.Bootstrap("worker")
	if err != nil {
		t.Fatal(err)
	}
	_, drv, err := cli.NewDriver("client")
	if err != nil {
		t.Fatal(err)
	}
	return w, created.Ports[0], drv
}

func TestSyncSendWaitsForReceipt(t *testing.T) {
	w, port, drv := newWorker(t, netsim.Config{}, 0)
	if err := SyncSend(drv, port, 2*time.Second, "work_sync", "job1"); err != nil {
		t.Fatal(err)
	}
	// Two messages crossed: the request and the receipt.
	if got := w.Stats().MessagesSent.Load(); got != 2 {
		t.Fatalf("sync send cost %d messages, want 2", got)
	}
}

func TestSyncSendTimesOutWhenNobodyListens(t *testing.T) {
	w := guardian.NewWorld(guardian.Config{})
	cli := w.MustAddNode("cli")
	_, drv, err := cli.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	ghost := xrep.PortName{Node: "nowhere", Guardian: 3, Port: 1}
	start := time.Now()
	err = SyncSend(drv, ghost, 50*time.Millisecond, "work_sync", "x")
	if err == nil {
		t.Fatal("sync send to nobody succeeded")
	}
	if time.Since(start) < 45*time.Millisecond {
		t.Fatal("sync send returned before its timeout")
	}
}

func TestSyncSendBlocksLongerThanNoWait(t *testing.T) {
	// With 10ms one-way latency, the no-wait send returns immediately
	// while the sync send blocks ≥ 2 RTT-ish.
	cfg := netsim.Config{BaseLatency: 10 * time.Millisecond}
	_, port, drv := newWorker(t, cfg, 0)

	start := time.Now()
	if err := drv.Send(port, "work", "nw"); err != nil {
		t.Fatal(err)
	}
	noWait := time.Since(start)

	start = time.Now()
	if err := SyncSend(drv, port, 2*time.Second, "work_sync", "ss"); err != nil {
		t.Fatal(err)
	}
	sync := time.Since(start)

	if noWait > 5*time.Millisecond {
		t.Fatalf("no-wait send blocked %v", noWait)
	}
	if sync < 18*time.Millisecond {
		t.Fatalf("sync send blocked only %v, want ≥ ~20ms round trip", sync)
	}
}

func TestAcknowledgeRejectsMalformed(t *testing.T) {
	w := guardian.NewWorld(guardian.Config{})
	n := w.MustAddNode("n")
	_, drv, err := n.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	if err := Acknowledge(drv, &guardian.Message{Command: "x"}); err == nil {
		t.Fatal("Acknowledge accepted a message with no args")
	}
	m := &guardian.Message{Command: "x", Args: xrep.Seq{xrep.Int(1)}}
	if err := Acknowledge(drv, m); err == nil {
		t.Fatal("Acknowledge accepted a non-port trailing arg")
	}
	// A bare trailing port is NOT an ack port: only the tagged record is.
	pn := xrep.PortName{Node: "n", Guardian: 1, Port: 2}
	m2 := &guardian.Message{Command: "x", Args: xrep.Seq{pn}}
	if err := Acknowledge(drv, m2); err == nil {
		t.Fatal("Acknowledge accepted an untagged trailing port")
	}
}

func TestStripAck(t *testing.T) {
	pn := xrep.PortName{Node: "n", Guardian: 1, Port: 2}
	m := &guardian.Message{Args: xrep.Seq{xrep.Str("a"), AckArg(pn)}}
	if got := StripAck(m); len(got) != 1 {
		t.Fatalf("StripAck kept %d args", len(got))
	}
	// A message whose final REAL argument is a port keeps it: this is the
	// corruption the tagged record prevents.
	m2 := &guardian.Message{Args: xrep.Seq{xrep.Str("a"), pn}}
	if got := StripAck(m2); len(got) != 2 {
		t.Fatalf("StripAck corrupted a message ending in a real port arg (%d args left)", len(got))
	}
	m3 := &guardian.Message{Args: xrep.Seq{xrep.Str("a")}}
	if got := StripAck(m3); len(got) != 1 {
		t.Fatalf("StripAck removed a non-port arg")
	}
	m4 := &guardian.Message{}
	if got := StripAck(m4); len(got) != 0 {
		t.Fatal("StripAck on empty args")
	}
}

func TestCallReturnsReply(t *testing.T) {
	w, port, drv := newWorker(t, netsim.Config{}, 0)
	m, err := Call(drv, port, doneType, CallOptions{Timeout: 2 * time.Second}, "work", "payload")
	if err != nil {
		t.Fatal(err)
	}
	if m.Command != "done" || m.Str(0) != "payload" {
		t.Fatalf("reply %s(%v)", m.Command, m.Args)
	}
	if got := w.Stats().MessagesSent.Load(); got != 2 {
		t.Fatalf("call cost %d messages, want 2", got)
	}
}

func TestCallFailsOnDeadGuardian(t *testing.T) {
	w := guardian.NewWorld(guardian.Config{})
	w.MustAddNode("srv")
	cli := w.MustAddNode("cli")
	_, drv, err := cli.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	ghost := xrep.PortName{Node: "srv", Guardian: 42, Port: 1}
	_, err = Call(drv, ghost, doneType, CallOptions{Timeout: time.Second}, "work", "x")
	if err == nil {
		t.Fatal("call to dead guardian succeeded")
	}
}

func TestCallRetriesMaskLoss(t *testing.T) {
	// 60% loss: a single attempt usually fails, but with retries the call
	// succeeds eventually (idempotent request).
	cfg := netsim.Config{Seed: 7, LossRate: 0.6}
	_, port, drv := newWorker(t, cfg, 0)
	m, err := Call(drv, port, doneType,
		CallOptions{Timeout: 100 * time.Millisecond, Retries: 20}, "work", "lossy")
	if err != nil {
		t.Fatalf("retrying call failed under 60%% loss: %v", err)
	}
	if m.Str(0) != "lossy" {
		t.Fatalf("reply %v", m.Args)
	}
}

func TestCallExhaustsRetries(t *testing.T) {
	cfg := netsim.Config{LossRate: 1.0}
	_, port, drv := newWorker(t, cfg, 0)
	start := time.Now()
	_, err := Call(drv, port, doneType,
		CallOptions{Timeout: 20 * time.Millisecond, Retries: 2}, "work", "x")
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	var ce *CallError
	if !errors.As(err, &ce) {
		t.Fatalf("err %T does not carry per-attempt timing", err)
	}
	if len(ce.Attempts) != 3 {
		t.Fatalf("error records %d attempts, want 3", len(ce.Attempts))
	}
	for i, a := range ce.Attempts {
		if a.Wait < 15*time.Millisecond {
			t.Fatalf("attempt %d waited only %v", i, a.Wait)
		}
	}
	if el := time.Since(start); el < 55*time.Millisecond {
		t.Fatalf("3 attempts × 20ms finished in %v", el)
	}
}

func TestCallBackoffSpacesAttempts(t *testing.T) {
	cfg := netsim.Config{LossRate: 1.0}
	_, port, drv := newWorker(t, cfg, 0)
	start := time.Now()
	_, err := Call(drv, port, doneType,
		CallOptions{Timeout: 10 * time.Millisecond, Retries: 2, Backoff: 20 * time.Millisecond},
		"work", "x")
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want ErrCallTimeout", err)
	}
	// 3 waits of 10ms plus backoffs of 20ms and 40ms between attempts.
	if el := time.Since(start); el < 85*time.Millisecond {
		t.Fatalf("backed-off attempts finished in %v, want ≥ ~90ms", el)
	}
	var ce *CallError
	if !errors.As(err, &ce) {
		t.Fatal("no CallError")
	}
	if ce.Attempts[0].Backoff != 20*time.Millisecond || ce.Attempts[1].Backoff != 40*time.Millisecond {
		t.Fatalf("backoffs %v/%v, want 20ms/40ms", ce.Attempts[0].Backoff, ce.Attempts[1].Backoff)
	}
	if ce.Attempts[2].Backoff != 0 {
		t.Fatalf("final attempt slept %v after exhaustion", ce.Attempts[2].Backoff)
	}
}

func TestCallBackoffCap(t *testing.T) {
	opts := CallOptions{Backoff: 10 * time.Millisecond, BackoffCap: 25 * time.Millisecond}
	want := []time.Duration{10, 20, 25, 25}
	for i, w := range want {
		if got := opts.backoffFor(i); got != w*time.Millisecond {
			t.Fatalf("backoffFor(%d) = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	// Default cap: 32×Backoff.
	opts = CallOptions{Backoff: time.Millisecond}
	if got := opts.backoffFor(10); got != 32*time.Millisecond {
		t.Fatalf("default cap gave %v, want 32ms", got)
	}
	// Zero backoff: old behavior, no delay at any attempt.
	opts = CallOptions{}
	if got := opts.backoffFor(5); got != 0 {
		t.Fatalf("zero backoff slept %v", got)
	}
}

func TestCallAtLeastOnceSemantics(t *testing.T) {
	// Under loss of replies (not requests), retries cause the server to
	// perform the request more than once — the §3.5 uncertainty. Count
	// server executions.
	w := guardian.NewWorld(guardian.Config{})
	srv := w.MustAddNode("srv")
	cli := w.MustAddNode("cli")
	execCh := make(chan struct{}, 100)
	w.MustRegister(&guardian.GuardianDef{
		TypeName: "counter_worker",
		Provides: []*guardian.PortType{workType},
		Init: func(ctx *guardian.Ctx) {
			//lint:allow recvhygiene deterministic in-memory test world; the test deadline bounds any hang
			guardian.NewReceiver(ctx.Ports[0]).
				When("work", func(pr *guardian.Process, m *guardian.Message) {
					execCh <- struct{}{}
					if !m.ReplyTo.IsZero() {
						_ = pr.Send(m.ReplyTo, "done", m.Str(0))
					}
				}).
				When("work_sync", func(pr *guardian.Process, m *guardian.Message) {}).
				Loop(ctx.Proc, nil)
		},
	})
	created, err := srv.Bootstrap("counter_worker")
	if err != nil {
		t.Fatal(err)
	}
	// Sever the reply direction only.
	w.Net().SetLink("srv", "cli", &netsim.Config{LossRate: 1.0})
	_, drv, err := cli.NewDriver("d")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Call(drv, created.Ports[0], doneType,
		CallOptions{Timeout: 30 * time.Millisecond, Retries: 3}, "work", "dup")
	if !errors.Is(err, ErrCallTimeout) {
		t.Fatalf("err = %v, want timeout (replies severed)", err)
	}
	w.Quiesce()
	if got := len(execCh); got != 4 {
		t.Fatalf("server executed request %d times, want 4 (1 + 3 retries)", got)
	}
}
