package netsim

import (
	"bytes"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/vtime"
)

// collector gathers delivered payloads for assertions.
type collector struct {
	mu   sync.Mutex
	got  [][]byte
	from []Addr
}

func (c *collector) handler(from Addr, payload []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := make([]byte, len(payload))
	copy(b, payload)
	c.got = append(c.got, b)
	c.from = append(c.from, from)
}

func (c *collector) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.got)
}

func newPair(t *testing.T, cfg Config) (*Network, *collector, *collector) {
	t.Helper()
	n := New(vtime.NewReal(), cfg)
	ca, cb := &collector{}, &collector{}
	n.Attach("a", ca.handler)
	n.Attach("b", cb.handler)
	return n, ca, cb
}

func TestReliableDelivery(t *testing.T) {
	n, _, cb := newPair(t, Config{})
	if err := n.Send("a", "b", []byte("hello")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	n.Quiesce()
	if cb.count() != 1 {
		t.Fatalf("delivered %d, want 1", cb.count())
	}
	if !bytes.Equal(cb.got[0], []byte("hello")) {
		t.Fatalf("payload = %q, want %q", cb.got[0], "hello")
	}
	if cb.from[0] != "a" {
		t.Fatalf("from = %q, want a", cb.from[0])
	}
}

func TestSenderMustBeAttached(t *testing.T) {
	n := New(vtime.NewReal(), Config{})
	n.Attach("b", func(Addr, []byte) {})
	if err := n.Send("ghost", "b", []byte("x")); err != ErrUnknownSender {
		t.Fatalf("Send from unattached = %v, want ErrUnknownSender", err)
	}
}

func TestEmptyPayloadRejected(t *testing.T) {
	n, _, _ := newPair(t, Config{})
	if err := n.Send("a", "b", nil); err != ErrEmptyPayload {
		t.Fatalf("Send(nil) = %v, want ErrEmptyPayload", err)
	}
}

func TestMTUEnforced(t *testing.T) {
	n, _, cb := newPair(t, Config{MTU: 4})
	if err := n.Send("a", "b", []byte("12345")); err == nil {
		t.Fatal("oversized send succeeded, want ErrTooLarge")
	}
	if err := n.Send("a", "b", []byte("1234")); err != nil {
		t.Fatalf("MTU-sized send failed: %v", err)
	}
	n.Quiesce()
	if cb.count() != 1 {
		t.Fatalf("delivered %d, want 1", cb.count())
	}
}

func TestDetachedDestinationDrops(t *testing.T) {
	n, _, _ := newPair(t, Config{})
	n.Detach("b")
	if err := n.Send("a", "b", []byte("x")); err != nil {
		t.Fatalf("Send to detached should accept (best-effort): %v", err)
	}
	n.Quiesce()
	st := n.Stats()
	if st.DroppedDst != 1 {
		t.Fatalf("DroppedDst = %d, want 1", st.DroppedDst)
	}
	if st.Delivered != 0 {
		t.Fatalf("Delivered = %d, want 0", st.Delivered)
	}
}

func TestLossRateApproximate(t *testing.T) {
	n, _, cb := newPair(t, Config{Seed: 42, LossRate: 0.5})
	const total = 2000
	for i := 0; i < total; i++ {
		if err := n.Send("a", "b", []byte{byte(i)}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	n.Quiesce()
	got := cb.count()
	if got < total*35/100 || got > total*65/100 {
		t.Fatalf("delivered %d of %d at 50%% loss; outside [35%%,65%%]", got, total)
	}
	st := n.Stats()
	if st.Lost+int64(got) != total {
		t.Fatalf("Lost(%d)+delivered(%d) != sent(%d)", st.Lost, got, total)
	}
}

func TestDuplication(t *testing.T) {
	n, _, cb := newPair(t, Config{Seed: 7, DupRate: 1.0})
	if err := n.Send("a", "b", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	n.Quiesce()
	if cb.count() != 2 {
		t.Fatalf("delivered %d with DupRate=1, want 2", cb.count())
	}
	if n.Stats().Duplicated != 1 {
		t.Fatalf("Duplicated = %d, want 1", n.Stats().Duplicated)
	}
}

func TestCorruptionFlipsExactlyOneBit(t *testing.T) {
	n, _, cb := newPair(t, Config{Seed: 3, CorruptRate: 1.0})
	orig := []byte{0x00, 0xFF, 0x55}
	sent := make([]byte, len(orig))
	copy(sent, orig)
	if err := n.Send("a", "b", sent); err != nil {
		t.Fatalf("Send: %v", err)
	}
	n.Quiesce()
	if cb.count() != 1 {
		t.Fatalf("delivered %d, want 1", cb.count())
	}
	diff := 0
	for i := range orig {
		x := orig[i] ^ cb.got[0][i]
		for ; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("corruption flipped %d bits, want exactly 1", diff)
	}
	if !bytes.Equal(sent, orig) {
		t.Fatal("sender's buffer was mutated by corruption")
	}
}

func TestLatencyDelaysDelivery(t *testing.T) {
	n, _, cb := newPair(t, Config{BaseLatency: 30 * time.Millisecond})
	start := time.Now()
	if err := n.Send("a", "b", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if cb.count() != 0 {
		t.Fatal("delivered before latency elapsed")
	}
	n.Quiesce()
	if el := time.Since(start); el < 25*time.Millisecond {
		t.Fatalf("delivered after %v, want >= ~30ms", el)
	}
	if cb.count() != 1 {
		t.Fatalf("delivered %d, want 1", cb.count())
	}
}

func TestReorderingObservable(t *testing.T) {
	// With a deliberate reorder hold on some packets, later sends can
	// overtake earlier ones: the paper guarantees no arrival order.
	n := New(vtime.NewReal(), Config{
		Seed:         1,
		BaseLatency:  2 * time.Millisecond,
		ReorderRate:  0.5,
		ReorderDelay: 20 * time.Millisecond,
	})
	var order []byte
	var mu sync.Mutex
	n.Attach("a", func(Addr, []byte) {})
	n.Attach("b", func(_ Addr, p []byte) {
		mu.Lock()
		order = append(order, p[0])
		mu.Unlock()
	})
	for i := byte(0); i < 20; i++ {
		if err := n.Send("a", "b", []byte{i}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	n.Quiesce()
	if len(order) != 20 {
		t.Fatalf("delivered %d, want 20", len(order))
	}
	inOrder := true
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			inOrder = false
		}
	}
	if inOrder {
		t.Fatal("all packets arrived in send order despite reorder injection")
	}
}

func TestPartitionBlocksCrossTraffic(t *testing.T) {
	n, ca, cb := newPair(t, Config{})
	n.Partition([]Addr{"a"}, []Addr{"b"})
	if err := n.Send("a", "b", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	n.Quiesce()
	if cb.count() != 0 {
		t.Fatal("packet crossed an active partition")
	}
	if n.Stats().Partition != 1 {
		t.Fatalf("Partition drops = %d, want 1", n.Stats().Partition)
	}
	// Intra-group traffic still flows.
	n.Attach("a2", func(Addr, []byte) {})
	n.Partition([]Addr{"a", "a2"}, []Addr{"b"})
	if err := n.Send("a", "a2", []byte("y")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	n.Heal()
	if err := n.Send("a", "b", []byte("z")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	n.Quiesce()
	if cb.count() != 1 {
		t.Fatalf("post-heal delivery count = %d, want 1", cb.count())
	}
	_ = ca
}

func TestDisconnectAndReconnect(t *testing.T) {
	n, _, cb := newPair(t, Config{})
	n.Disconnect("a", "b")
	if err := n.Send("a", "b", []byte("x")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	n.Quiesce()
	if cb.count() != 0 {
		t.Fatal("packet crossed a severed link")
	}
	n.Reconnect("a", "b")
	if err := n.Send("a", "b", []byte("y")); err != nil {
		t.Fatalf("Send: %v", err)
	}
	n.Quiesce()
	if cb.count() != 1 {
		t.Fatalf("post-reconnect deliveries = %d, want 1", cb.count())
	}
}

func TestPerLinkOverride(t *testing.T) {
	n, _, cb := newPair(t, Config{})
	n.Attach("c", func(Addr, []byte) {})
	n.SetLink("a", "b", &Config{LossRate: 1.0})
	const total = 50
	for i := 0; i < total; i++ {
		if err := n.Send("a", "b", []byte{1}); err != nil {
			t.Fatalf("Send: %v", err)
		}
		if err := n.Send("a", "c", []byte{2}); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	n.Quiesce()
	if cb.count() != 0 {
		t.Fatalf("lossy link delivered %d, want 0", cb.count())
	}
	st := n.Stats()
	if st.Lost != total {
		t.Fatalf("Lost = %d, want %d", st.Lost, total)
	}
	// Removing the override restores defaults.
	n.SetLink("a", "b", nil)
	if err := n.Send("a", "b", []byte{3}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	n.Quiesce()
	if cb.count() != 1 {
		t.Fatalf("post-restore deliveries = %d, want 1", cb.count())
	}
}

func TestDeterministicFateSequence(t *testing.T) {
	// Same seed and same single-threaded send order must lose the same
	// packets.
	run := func() []int {
		n := New(vtime.NewReal(), Config{Seed: 99, LossRate: 0.3})
		var delivered []int32
		var mu sync.Mutex
		n.Attach("a", func(Addr, []byte) {})
		n.Attach("b", func(_ Addr, p []byte) {
			mu.Lock()
			delivered = append(delivered, int32(p[0]))
			mu.Unlock()
		})
		for i := 0; i < 100; i++ {
			if err := n.Send("a", "b", []byte{byte(i)}); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		n.Quiesce()
		mu.Lock()
		defer mu.Unlock()
		set := make([]int, 0, len(delivered))
		seen := make(map[int32]bool)
		for _, v := range delivered {
			seen[v] = true
		}
		for i := int32(0); i < 100; i++ {
			if seen[i] {
				set = append(set, int(i))
			}
		}
		return set
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("two seeded runs delivered %d vs %d packets", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded runs diverged at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestStatsAccounting(t *testing.T) {
	n, _, _ := newPair(t, Config{})
	for i := 0; i < 10; i++ {
		if err := n.Send("a", "b", []byte("abc")); err != nil {
			t.Fatalf("Send: %v", err)
		}
	}
	n.Quiesce()
	st := n.Stats()
	if st.Sent != 10 || st.Delivered != 10 {
		t.Fatalf("Sent=%d Delivered=%d, want 10/10", st.Sent, st.Delivered)
	}
	if st.BytesSent != 30 {
		t.Fatalf("BytesSent = %d, want 30", st.BytesSent)
	}
}

func TestBandwidthAddsSerializationDelay(t *testing.T) {
	// 1 KiB at 10 KiB/s ≈ 100ms.
	n, _, cb := newPair(t, Config{BandwidthBps: 10 * 1024})
	payload := make([]byte, 1024)
	start := time.Now()
	if err := n.Send("a", "b", payload[:1]); err != nil { // tiny: near-instant
		t.Fatalf("Send: %v", err)
	}
	n.Quiesce()
	small := time.Since(start)
	start = time.Now()
	if err := n.Send("a", "b", payload); err != nil {
		t.Fatalf("Send: %v", err)
	}
	n.Quiesce()
	large := time.Since(start)
	if large < 80*time.Millisecond {
		t.Fatalf("1KiB at 10KiB/s delivered in %v, want >= ~100ms", large)
	}
	if large < small {
		t.Fatalf("larger packet (%v) beat smaller (%v)", large, small)
	}
	if cb.count() != 2 {
		t.Fatalf("delivered %d, want 2", cb.count())
	}
}

func TestConcurrentSendsSafe(t *testing.T) {
	n := New(vtime.NewReal(), Config{Seed: 5, LossRate: 0.1, Jitter: time.Millisecond})
	var delivered atomic.Int64
	n.Attach("b", func(Addr, []byte) { delivered.Add(1) })
	const senders, per = 8, 100
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		addr := Addr(string(rune('A' + s)))
		n.Attach(addr, func(Addr, []byte) {})
		wg.Add(1)
		go func(a Addr) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := n.Send(a, "b", []byte{byte(i)}); err != nil {
					t.Errorf("Send: %v", err)
					return
				}
			}
		}(addr)
	}
	wg.Wait()
	n.Quiesce()
	st := n.Stats()
	if st.Sent != senders*per {
		t.Fatalf("Sent = %d, want %d", st.Sent, senders*per)
	}
	if delivered.Load()+st.Lost != senders*per {
		t.Fatalf("delivered(%d)+lost(%d) != sent(%d)", delivered.Load(), st.Lost, st.Sent)
	}
}

func TestAttachedAndHandlerReplacement(t *testing.T) {
	n := New(vtime.NewReal(), Config{})
	if n.Attached("a") {
		t.Fatal("unattached address reported attached")
	}
	var first, second atomic.Int64
	n.Attach("a", func(Addr, []byte) {})
	n.Attach("b", func(Addr, []byte) { first.Add(1) })
	if !n.Attached("b") {
		t.Fatal("Attached(b) = false")
	}
	// Re-attaching replaces the handler.
	n.Attach("b", func(Addr, []byte) { second.Add(1) })
	if err := n.Send("a", "b", []byte("x")); err != nil {
		t.Fatal(err)
	}
	n.Quiesce()
	if first.Load() != 0 || second.Load() != 1 {
		t.Fatalf("first=%d second=%d, want 0/1", first.Load(), second.Load())
	}
}

func TestNewWithRandIsSeedReproducible(t *testing.T) {
	// Two networks sharing nothing but the seed of their injected sources
	// must decide identical fates for an identical send sequence — the
	// property internal/dst relies on to replay a fault schedule.
	fates := func(rng *rand.Rand) (lost, dup []int) {
		n := NewWithRand(vtime.NewReal(), Config{LossRate: 0.3, DupRate: 0.3}, rng)
		counts := make([]atomic.Int64, 100)
		n.Attach("a", func(Addr, []byte) {})
		n.Attach("b", func(_ Addr, p []byte) { counts[p[0]].Add(1) })
		for i := 0; i < 100; i++ {
			if err := n.Send("a", "b", []byte{byte(i)}); err != nil {
				t.Fatalf("Send: %v", err)
			}
		}
		n.Quiesce()
		for i := range counts {
			switch counts[i].Load() {
			case 0:
				lost = append(lost, i)
			case 2:
				dup = append(dup, i)
			}
		}
		return lost, dup
	}
	l1, d1 := fates(rand.New(rand.NewSource(4242)))
	l2, d2 := fates(rand.New(rand.NewSource(4242)))
	if !reflect.DeepEqual(l1, l2) || !reflect.DeepEqual(d1, d2) {
		t.Fatalf("same injected seed diverged: lost %v vs %v, dup %v vs %v", l1, l2, d1, d2)
	}
	if len(l1) == 0 && len(d1) == 0 {
		t.Fatal("fault model injected no faults at 30%/30%")
	}
}
