package netsim

// Partition shapes. The Kurtosis testing SDK treats named network
// topologies — total splits, isolated islands, one-way degradation — as
// first-class test vocabulary; this file gives the simulator the same
// vocabulary as pure group-computation helpers plus one new primitive,
// the directed (one-way) link cut. Group helpers only COMPUTE the
// partition; apply them with Network.Partition. Directed cuts are their
// own mechanism because group-based partitions are always symmetric.

// CutDirected severs the single directed link from→to: datagrams from
// `from` to `to` are dropped (accounted as Stats.Partition) while the
// reverse direction keeps flowing — the asymmetric-failure shape a
// misconfigured firewall or a saturated uplink produces, in which A can
// hear B but B never hears A. Restore with RestoreDirected; Heal does
// not touch directed cuts (they are not a partition).
func (n *Network) CutDirected(from, to Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[linkKey{from, to}] = struct{}{}
}

// RestoreDirected restores a link severed by CutDirected. Restoring a
// link that was never cut is a no-op. Note that Disconnect(a,b) cuts
// both directions; restoring only one of them leaves the other severed.
func (n *Network) RestoreDirected(from, to Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, linkKey{from, to})
}

// SplitBrainGroups computes the split-brain shape: victim alone on one
// side, everyone else on the other. The canonical replication fault — a
// primary that keeps believing it leads while the majority elects past
// it.
func SplitBrainGroups(all []Addr, victim Addr) [][]Addr {
	groups := [][]Addr{{victim}, {}}
	for _, a := range all {
		if a != victim {
			groups[1] = append(groups[1], a)
		}
	}
	return groups
}

// IslandGroups computes the island shape: the given minority island is
// cut off together, keeping its internal connectivity — a rack losing
// its uplink. Addresses in all but not in island form the mainland.
func IslandGroups(all []Addr, island []Addr) [][]Addr {
	in := make(map[Addr]bool, len(island))
	for _, a := range island {
		in[a] = true
	}
	groups := [][]Addr{append([]Addr{}, island...), {}}
	for _, a := range all {
		if !in[a] {
			groups[1] = append(groups[1], a)
		}
	}
	return groups
}

// RingCutGroups arranges ring as a cycle (ring[0] adjacent to
// ring[len-1]) and cuts the two edges after positions i and j, splitting
// the cycle into two contiguous arcs: ring[i+1..j] and ring[j+1..i]
// (indices mod len). This is the shape a ring-structured overlay or a
// chain-replication deployment degrades into when two links die: every
// node still has live neighbors, yet the system is partitioned. Requires
// i != j (mod len); with len < 2 or i == j the single full arc is
// returned.
func RingCutGroups(ring []Addr, i, j int) [][]Addr {
	n := len(ring)
	if n == 0 {
		return nil
	}
	i, j = ((i%n)+n)%n, ((j%n)+n)%n
	if n < 2 || i == j {
		return [][]Addr{append([]Addr{}, ring...)}
	}
	arc := func(from, to int) []Addr {
		var out []Addr
		for k := (from + 1) % n; ; k = (k + 1) % n {
			out = append(out, ring[k])
			if k == to {
				return out
			}
		}
	}
	return [][]Addr{arc(i, j), arc(j, i)}
}
