package netsim

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/vtime"
)

// shapeSink attaches an address and records payloads delivered to it.
type shapeSink struct {
	mu  sync.Mutex
	got []string
}

func (c *shapeSink) handler() Handler {
	return func(from Addr, payload []byte) {
		c.mu.Lock()
		c.got = append(c.got, string(payload))
		c.mu.Unlock()
	}
}

func (c *shapeSink) messages() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]string{}, c.got...)
}

// TestCutDirectedIsOneWay: a directed cut drops a→b while b→a keeps
// flowing, and RestoreDirected re-opens exactly the cut direction.
func TestCutDirectedIsOneWay(t *testing.T) {
	n := New(vtime.NewReal(), Config{})
	var atA, atB shapeSink
	n.Attach("a", atA.handler())
	n.Attach("b", atB.handler())

	n.CutDirected("a", "b")
	if err := n.Send("a", "b", []byte("a->b cut")); err != nil {
		t.Fatal(err)
	}
	if err := n.Send("b", "a", []byte("b->a open")); err != nil {
		t.Fatal(err)
	}
	n.Quiesce()
	if got := atB.messages(); len(got) != 0 {
		t.Fatalf("severed direction delivered %v", got)
	}
	if got := atA.messages(); len(got) != 1 || got[0] != "b->a open" {
		t.Fatalf("open direction delivered %v, want [b->a open]", got)
	}
	if s := n.Stats(); s.Partition != 1 {
		t.Fatalf("Partition count = %d, want 1", s.Partition)
	}

	// Heal does not touch directed cuts; RestoreDirected does.
	n.Heal()
	if err := n.Send("a", "b", []byte("still cut")); err != nil {
		t.Fatal(err)
	}
	n.Quiesce()
	if got := atB.messages(); len(got) != 0 {
		t.Fatalf("Heal re-opened a directed cut: %v", got)
	}
	n.RestoreDirected("a", "b")
	if err := n.Send("a", "b", []byte("restored")); err != nil {
		t.Fatal(err)
	}
	n.Quiesce()
	if got := atB.messages(); len(got) != 1 || got[0] != "restored" {
		t.Fatalf("restored direction delivered %v, want [restored]", got)
	}
}

func sortedNames(groups [][]Addr) [][]string {
	out := make([][]string, len(groups))
	for i, g := range groups {
		for _, a := range g {
			out[i] = append(out[i], string(a))
		}
		sort.Strings(out[i])
	}
	return out
}

// coverExactly asserts groups partition all: every address in exactly
// one group, no strangers.
func coverExactly(t *testing.T, groups [][]Addr, all []Addr) {
	t.Helper()
	seen := make(map[Addr]int)
	for _, g := range groups {
		for _, a := range g {
			seen[a]++
		}
	}
	if len(seen) != len(all) {
		t.Fatalf("groups cover %d addresses, want %d: %v", len(seen), len(all), groups)
	}
	for _, a := range all {
		if seen[a] != 1 {
			t.Fatalf("address %s appears %d times in %v", a, seen[a], groups)
		}
	}
}

func TestSplitBrainGroups(t *testing.T) {
	all := []Addr{"m1", "m2", "m3", "clients"}
	g := SplitBrainGroups(all, "m1")
	coverExactly(t, g, all)
	if len(g[0]) != 1 || g[0][0] != "m1" {
		t.Fatalf("victim side = %v, want [m1]", g[0])
	}
}

func TestIslandGroups(t *testing.T) {
	all := []Addr{"a", "b", "c", "d", "e"}
	g := IslandGroups(all, []Addr{"b", "d"})
	coverExactly(t, g, all)
	want := [][]string{{"b", "d"}, {"a", "c", "e"}}
	got := sortedNames(g)
	for i := range want {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("group %d = %v, want %v", i, got[i], want[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("group %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

// TestRingCutGroups: cutting edges after positions i and j yields two
// contiguous arcs that together cover the ring; adjacency inside each
// arc is preserved.
func TestRingCutGroups(t *testing.T) {
	ring := []Addr{"n0", "n1", "n2", "n3", "n4", "n5"}
	g := RingCutGroups(ring, 1, 4)
	coverExactly(t, g, ring)
	// Arc 1: positions 2..4; arc 2: positions 5,0,1.
	if len(g[0]) != 3 || g[0][0] != "n2" || g[0][2] != "n4" {
		t.Fatalf("first arc = %v, want [n2 n3 n4]", g[0])
	}
	if len(g[1]) != 3 || g[1][0] != "n5" || g[1][2] != "n1" {
		t.Fatalf("second arc = %v, want [n5 n0 n1]", g[1])
	}

	// Degenerate cases: same cut point, tiny rings.
	if g := RingCutGroups(ring, 2, 2); len(g) != 1 || len(g[0]) != len(ring) {
		t.Fatalf("i==j should return one full arc, got %v", g)
	}
	if g := RingCutGroups(nil, 0, 1); g != nil {
		t.Fatalf("empty ring should return nil, got %v", g)
	}
	if g := RingCutGroups([]Addr{"solo"}, 0, 3); len(g) != 1 || len(g[0]) != 1 {
		t.Fatalf("single-node ring should return one arc, got %v", g)
	}
	// Negative and out-of-range indices wrap.
	g = RingCutGroups(ring, -1, 7)
	coverExactly(t, g, ring)
}
