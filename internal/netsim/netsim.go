// Package netsim simulates the communications network assumed by the paper:
// a set of autonomous nodes connected pairwise, communicating only by
// datagrams, with no shared memory and no delivery guarantees.
//
// The simulator delivers best-effort: packets may be delayed, lost,
// duplicated, corrupted, or reordered, according to per-network defaults
// that can be overridden per directed link. Nodes attach a handler to
// receive; detaching a node (a crash) silently discards traffic addressed
// to it, exactly as a dead node would.
//
// All randomness flows from a single seeded source so fault schedules are
// reproducible; all fate decisions (loss, duplication, corruption, delay)
// are drawn at Send time, after which delivery goroutines only sleep on the
// supplied clock and invoke the destination handler.
package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"repro/internal/vtime"
)

// Addr names a node on the network. Addresses are opaque strings; the
// network makes no attempt to interpret them.
type Addr string

// Handler receives a datagram. Handlers are invoked on delivery goroutines
// and must return promptly; a blocking handler delays only its own packet.
type Handler func(from Addr, payload []byte)

// Errors returned by Send.
var (
	ErrTooLarge      = errors.New("netsim: datagram exceeds MTU")
	ErrUnknownSender = errors.New("netsim: sender not attached")
	ErrEmptyPayload  = errors.New("netsim: empty payload")
)

// Config holds the fault and delay model for the network or for one
// directed link.
type Config struct {
	// Seed initializes the random source. Used only in the network-wide
	// default config passed to New; ignored in per-link overrides.
	Seed int64
	// BaseLatency is the minimum one-way delivery delay.
	BaseLatency time.Duration
	// Jitter is the maximum additional uniformly-random delay.
	Jitter time.Duration
	// LossRate is the probability in [0,1] that a packet is silently lost.
	LossRate float64
	// DupRate is the probability that a packet is delivered twice.
	DupRate float64
	// CorruptRate is the probability that a delivered packet has one bit
	// flipped. Corruption is applied to a copy; senders' buffers are never
	// mutated.
	CorruptRate float64
	// ReorderRate is the probability that a packet is held for an extra
	// ReorderDelay, letting later packets overtake it.
	ReorderRate float64
	// ReorderDelay is the extra hold applied to reordered packets. Zero
	// means one BaseLatency.
	ReorderDelay time.Duration
	// BandwidthBps, when positive, adds a serialization delay of
	// len(payload)/BandwidthBps seconds per packet.
	BandwidthBps int64
	// MTU, when positive, bounds the datagram size; larger sends fail with
	// ErrTooLarge. Fragmentation is the wire layer's job.
	MTU int
}

// Stats aggregates network-wide packet accounting. All counts are since the
// network was created.
type Stats struct {
	Sent       int64 // datagrams accepted by Send
	Delivered  int64 // handler invocations (includes duplicates)
	Lost       int64 // dropped by the loss model
	DroppedDst int64 // dropped because the destination was not attached
	Duplicated int64 // extra deliveries from the duplication model
	Corrupted  int64 // deliveries with a flipped bit
	Reordered  int64 // deliveries given the extra reorder hold
	Partition  int64 // dropped by an active partition or disconnect
	BytesSent  int64
}

// Network is the simulated communications medium.
type Network struct {
	clock vtime.Clock

	mu       sync.Mutex
	rng      *rand.Rand
	defaults Config
	nodes    map[Addr]Handler
	links    map[linkKey]*Config  // per directed link overrides
	cut      map[linkKey]struct{} // severed directed links
	group    map[Addr]int         // partition group; absent = group 0
	parted   bool
	stats    Stats
	inflight int        // packets accepted but not yet delivered or dropped
	idle     *sync.Cond // broadcast when inflight returns to zero
	closed   bool
}

type linkKey struct{ from, to Addr }

// New creates a network with the given defaults. A zero Config gives
// instant, perfectly reliable delivery. All fate decisions are drawn from
// a private source seeded with cfg.Seed, so a network built the same way
// and sent the same packet sequence makes the same decisions.
func New(clock vtime.Clock, cfg Config) *Network {
	return NewWithRand(clock, cfg, rand.New(rand.NewSource(cfg.Seed)))
}

// NewWithRand is New with an injectable random source, for harnesses (such
// as internal/dst) that derive every decision in a run — network fate,
// fault schedule, workload — from one master seed. The network serializes
// access to rng under its own lock; the caller must not draw from it after
// handing it over.
func NewWithRand(clock vtime.Clock, cfg Config, rng *rand.Rand) *Network {
	n := &Network{
		clock:    clock,
		rng:      rng,
		defaults: cfg,
		nodes:    make(map[Addr]Handler),
		links:    make(map[linkKey]*Config),
		cut:      make(map[linkKey]struct{}),
		group:    make(map[Addr]int),
	}
	n.idle = sync.NewCond(&n.mu)
	return n
}

// Attach registers a handler to receive datagrams addressed to a. Attaching
// an address that is already attached replaces its handler.
func (n *Network) Attach(a Addr, h Handler) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes[a] = h
}

// Detach removes a from the network. In-flight packets addressed to a are
// discarded at delivery time. Used to model node crashes.
func (n *Network) Detach(a Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.nodes, a)
}

// Attached reports whether a currently has a handler.
func (n *Network) Attached(a Addr) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.nodes[a]
	return ok
}

// SetLink overrides the fault/delay model for the directed link from→to.
// Passing nil removes the override, restoring network defaults.
func (n *Network) SetLink(from, to Addr, cfg *Config) {
	n.mu.Lock()
	defer n.mu.Unlock()
	k := linkKey{from, to}
	if cfg == nil {
		delete(n.links, k)
		return
	}
	c := *cfg
	n.links[k] = &c
}

// Disconnect severs both directions between a and b until Reconnect.
func (n *Network) Disconnect(a, b Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cut[linkKey{a, b}] = struct{}{}
	n.cut[linkKey{b, a}] = struct{}{}
}

// Reconnect restores the links severed by Disconnect.
func (n *Network) Reconnect(a, b Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cut, linkKey{a, b})
	delete(n.cut, linkKey{b, a})
}

// Partition splits the network into groups; traffic crosses group
// boundaries only after Heal. Addresses not listed fall in group 0 along
// with the first group.
func (n *Network) Partition(groups ...[]Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.group = make(map[Addr]int)
	for i, g := range groups {
		for _, a := range g {
			n.group[a] = i
		}
	}
	n.parted = true
}

// Heal removes any active partition.
func (n *Network) Heal() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.parted = false
	n.group = make(map[Addr]int)
}

// Stats returns a snapshot of the packet accounting.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}

// Quiesce blocks until no packet is in flight. Deliveries may themselves
// trigger new sends (a handler replying), so this is a counter + condition
// variable rather than a WaitGroup: a send racing the wait simply extends
// it, instead of tripping the WaitGroup reuse panic.
func (n *Network) Quiesce() {
	n.mu.Lock()
	for n.inflight > 0 {
		n.idle.Wait()
	}
	n.mu.Unlock()
}

// Send submits a datagram for best-effort delivery from from to to. It
// returns immediately once the packet's fate is decided; the payload is
// copied, so the caller may reuse the buffer.
func (n *Network) Send(from, to Addr, payload []byte) error {
	if len(payload) == 0 {
		return ErrEmptyPayload
	}
	n.mu.Lock()
	if _, ok := n.nodes[from]; !ok {
		n.mu.Unlock()
		return ErrUnknownSender
	}
	cfg := n.defaults
	if ov, ok := n.links[linkKey{from, to}]; ok {
		ov2 := *ov
		ov2.Seed = cfg.Seed
		cfg = ov2
	}
	if cfg.MTU > 0 && len(payload) > cfg.MTU {
		n.mu.Unlock()
		return fmt.Errorf("%w: %d > MTU %d", ErrTooLarge, len(payload), cfg.MTU)
	}
	n.stats.Sent++
	n.stats.BytesSent += int64(len(payload))

	// Partition / disconnect drop the packet after accounting the send —
	// the sender cannot tell, exactly as on a real network.
	if _, severed := n.cut[linkKey{from, to}]; severed || (n.parted && n.group[from] != n.group[to]) {
		n.stats.Partition++
		n.mu.Unlock()
		return nil
	}

	// Decide the packet's fate now, under the lock, so the random sequence
	// is a pure function of the seed and the send order.
	type delivery struct {
		delay   time.Duration
		corrupt bool
		reorder bool
	}
	plan := make([]delivery, 0, 2)
	if n.rng.Float64() < cfg.LossRate {
		n.stats.Lost++
	} else {
		plan = append(plan, delivery{})
		if n.rng.Float64() < cfg.DupRate {
			n.stats.Duplicated++
			plan = append(plan, delivery{})
		}
	}
	for i := range plan {
		d := cfg.BaseLatency
		if cfg.Jitter > 0 {
			d += time.Duration(n.rng.Int63n(int64(cfg.Jitter) + 1))
		}
		if cfg.BandwidthBps > 0 {
			d += time.Duration(float64(len(payload)) / float64(cfg.BandwidthBps) * float64(time.Second))
		}
		if n.rng.Float64() < cfg.ReorderRate {
			extra := cfg.ReorderDelay
			if extra == 0 {
				extra = cfg.BaseLatency
			}
			d += extra
			plan[i].reorder = true
			n.stats.Reordered++
		}
		if n.rng.Float64() < cfg.CorruptRate {
			plan[i].corrupt = true
			n.stats.Corrupted++
		}
		plan[i].delay = d
	}
	corruptBit := 0
	for _, p := range plan {
		if p.corrupt {
			corruptBit = n.rng.Intn(len(payload) * 8)
		}
	}
	n.inflight += len(plan)
	n.mu.Unlock()

	for _, p := range plan {
		buf := make([]byte, len(payload))
		copy(buf, payload)
		if p.corrupt {
			buf[corruptBit/8] ^= 1 << (corruptBit % 8)
		}
		go n.deliver(from, to, buf, p.delay)
	}
	return nil
}

// delivered retires one in-flight packet, waking Quiesce at zero.
func (n *Network) delivered() {
	n.mu.Lock()
	n.inflight--
	if n.inflight == 0 {
		n.idle.Broadcast()
	}
	n.mu.Unlock()
}

func (n *Network) deliver(from, to Addr, payload []byte, delay time.Duration) {
	defer n.delivered()
	if delay > 0 {
		n.clock.Sleep(delay)
	}
	n.mu.Lock()
	h, ok := n.nodes[to]
	if !ok {
		n.stats.DroppedDst++
		n.mu.Unlock()
		return
	}
	n.stats.Delivered++
	n.mu.Unlock()
	h(from, payload)
}
