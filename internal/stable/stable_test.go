package stable

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/vtime"
)

func newDisk() *Disk { return NewDisk(vtime.NewReal(), DiskConfig{}) }

func TestAppendIsVolatileUntilSync(t *testing.T) {
	d := newDisk()
	l := d.OpenLog("g1")
	l.Append([]byte("op1"))
	if l.VolatileLen() != 1 || l.DurableLen() != 0 {
		t.Fatalf("volatile=%d durable=%d, want 1/0", l.VolatileLen(), l.DurableLen())
	}
	d.Crash()
	_, recs, _ := l.Recover()
	if len(recs) != 0 {
		t.Fatalf("unsynced record survived crash: %v", recs)
	}
}

func TestSyncMakesDurable(t *testing.T) {
	d := newDisk()
	l := d.OpenLog("g1")
	l.Append([]byte("op1"))
	l.Sync()
	d.Crash()
	_, recs, err := l.Recover()
	if err != ErrNoCheckpoint {
		t.Fatalf("Recover err = %v, want ErrNoCheckpoint", err)
	}
	if len(recs) != 1 || string(recs[0].Data) != "op1" {
		t.Fatalf("durable records = %v", recs)
	}
}

func TestAppendSyncShorthand(t *testing.T) {
	d := newDisk()
	l := d.OpenLog("g")
	seq := l.AppendSync([]byte("x"))
	if seq != 1 {
		t.Fatalf("seq = %d, want 1", seq)
	}
	if l.DurableLen() != 1 || l.VolatileLen() != 0 {
		t.Fatal("AppendSync did not reach durable storage")
	}
}

func TestSequenceNumbersMonotonic(t *testing.T) {
	d := newDisk()
	l := d.OpenLog("g")
	var last uint64
	for i := 0; i < 100; i++ {
		seq := l.Append([]byte{byte(i)})
		if seq <= last {
			t.Fatalf("seq %d after %d", seq, last)
		}
		last = seq
	}
}

func TestCrashDropsOnlyVolatileTail(t *testing.T) {
	d := newDisk()
	l := d.OpenLog("g")
	l.AppendSync([]byte("durable1"))
	l.AppendSync([]byte("durable2"))
	l.Append([]byte("lost"))
	d.Crash()
	_, recs, _ := l.Recover()
	if len(recs) != 2 {
		t.Fatalf("got %d records after crash, want 2", len(recs))
	}
	if string(recs[0].Data) != "durable1" || string(recs[1].Data) != "durable2" {
		t.Fatalf("records = %q, %q", recs[0].Data, recs[1].Data)
	}
}

func TestRecordDataIsCopied(t *testing.T) {
	d := newDisk()
	l := d.OpenLog("g")
	buf := []byte("abc")
	l.AppendSync(buf)
	buf[0] = 'z'
	_, recs, _ := l.Recover()
	if string(recs[0].Data) != "abc" {
		t.Fatal("log record aliases caller's buffer")
	}
}

func TestCheckpointDiscardsFoldedRecords(t *testing.T) {
	d := newDisk()
	l := d.OpenLog("g")
	for i := 0; i < 10; i++ {
		l.AppendSync([]byte{byte(i)})
	}
	l.Checkpoint([]byte("state@7"), 7)
	if l.DurableLen() != 3 {
		t.Fatalf("DurableLen = %d after checkpoint, want 3", l.DurableLen())
	}
	cp, recs, err := l.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if string(cp) != "state@7" {
		t.Fatalf("checkpoint = %q", cp)
	}
	if len(recs) != 3 || recs[0].Seq != 8 {
		t.Fatalf("post-checkpoint records = %v", recs)
	}
}

func TestCheckpointSurvivesCrash(t *testing.T) {
	d := newDisk()
	l := d.OpenLog("g")
	l.AppendSync([]byte("a"))
	l.Checkpoint([]byte("cp"), 1)
	d.Crash()
	cp, recs, err := l.Recover()
	if err != nil || string(cp) != "cp" || len(recs) != 0 {
		t.Fatalf("after crash: cp=%q recs=%v err=%v", cp, recs, err)
	}
}

func TestRecoverReturnsCopies(t *testing.T) {
	d := newDisk()
	l := d.OpenLog("g")
	l.AppendSync([]byte("orig"))
	l.Checkpoint([]byte("cp"), 0)
	cp, recs, _ := l.Recover()
	cp[0] = 'X'
	recs[0].Data[0] = 'X'
	cp2, recs2, _ := l.Recover()
	if string(cp2) != "cp" || string(recs2[0].Data) != "orig" {
		t.Fatal("Recover exposed internal buffers")
	}
}

func TestLogsIndependentPerGuardian(t *testing.T) {
	d := newDisk()
	l1 := d.OpenLog("guardian-a")
	l2 := d.OpenLog("guardian-b")
	l1.AppendSync([]byte("a"))
	l2.AppendSync([]byte("b"))
	if _, recs, _ := l1.Recover(); len(recs) != 1 || string(recs[0].Data) != "a" {
		t.Fatal("log a polluted")
	}
	if _, recs, _ := l2.Recover(); len(recs) != 1 || string(recs[0].Data) != "b" {
		t.Fatal("log b polluted")
	}
	names := d.LogNames()
	if len(names) != 2 || names[0] != "guardian-a" || names[1] != "guardian-b" {
		t.Fatalf("LogNames = %v", names)
	}
}

func TestOpenLogIdempotent(t *testing.T) {
	d := newDisk()
	l1 := d.OpenLog("g")
	l1.AppendSync([]byte("x"))
	l2 := d.OpenLog("g")
	if l2.DurableLen() != 1 {
		t.Fatal("re-opened log lost records")
	}
}

func TestLastDurableSeq(t *testing.T) {
	d := newDisk()
	l := d.OpenLog("g")
	if l.LastDurableSeq() != 0 {
		t.Fatal("empty log LastDurableSeq != 0")
	}
	l.AppendSync([]byte("a"))
	l.AppendSync([]byte("b"))
	if l.LastDurableSeq() != 2 {
		t.Fatalf("LastDurableSeq = %d, want 2", l.LastDurableSeq())
	}
	l.Checkpoint(nil, 2)
	if l.LastDurableSeq() != 2 {
		t.Fatalf("LastDurableSeq after checkpoint = %d, want 2 (watermark)", l.LastDurableSeq())
	}
}

func TestSyncDelayCharged(t *testing.T) {
	clock := vtime.NewSim(time.Unix(0, 0))
	d := NewDisk(clock, DiskConfig{SyncDelay: 5 * time.Millisecond})
	l := d.OpenLog("g")
	done := make(chan struct{})
	go func() {
		l.AppendSync([]byte("x"))
		close(done)
	}()
	for clock.PendingTimers() == 0 {
		time.Sleep(50 * time.Microsecond)
	}
	clock.Advance(5 * time.Millisecond)
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("AppendSync did not complete after charging SyncDelay")
	}
	if d.SyncCount() != 1 {
		t.Fatalf("SyncCount = %d, want 1", d.SyncCount())
	}
}

func TestConcurrentAppends(t *testing.T) {
	d := newDisk()
	l := d.OpenLog("g")
	var wg sync.WaitGroup
	const n = 50
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			l.AppendSync([]byte(fmt.Sprintf("op%d", i)))
		}(i)
	}
	wg.Wait()
	_, recs, _ := l.Recover()
	if len(recs) != n {
		t.Fatalf("got %d records, want %d", len(recs), n)
	}
	seen := make(map[uint64]bool)
	for _, r := range recs {
		if seen[r.Seq] {
			t.Fatalf("duplicate seq %d", r.Seq)
		}
		seen[r.Seq] = true
	}
}

// The permanence property the paper demands (E7's unit-level core):
// whatever protocol step the crash lands on, an acknowledged operation is
// recoverable iff it was synced before the ack.
func TestPermanenceAcrossEveryCrashPoint(t *testing.T) {
	for crashAt := 0; crashAt < 3; crashAt++ {
		d := newDisk()
		l := d.OpenLog("flight")
		acked := false
		// Protocol: append, sync, ack. Crash injected at each step.
		l.Append([]byte("reserve f22"))
		if crashAt == 0 {
			d.Crash()
		} else {
			l.Sync()
			if crashAt == 1 {
				d.Crash()
			} else {
				acked = true
				d.Crash()
			}
		}
		_, recs, _ := l.Recover()
		recovered := len(recs) == 1
		if acked && !recovered {
			t.Fatalf("crashAt=%d: acknowledged operation lost", crashAt)
		}
		if crashAt >= 1 && !recovered {
			t.Fatalf("crashAt=%d: synced record lost", crashAt)
		}
		if crashAt == 0 && recovered {
			t.Fatalf("crashAt=%d: unsynced record survived", crashAt)
		}
	}
}

// TestRecoverAfterMidCheckpointCrash covers the window every
// write-new-then-rename checkpoint implementation has: the process dies
// after the new checkpoint is durably installed but before the records
// it folded in are truncated. Recovery then sees both the checkpoint
// and stale records at or below its watermark on disk — and must filter
// the stale records out, or their effects apply twice.
func TestRecoverAfterMidCheckpointCrash(t *testing.T) {
	died := false
	d := NewDisk(vtime.NewReal(), DiskConfig{
		MidCheckpoint: func(log string) {
			if log != "acct" {
				t.Errorf("hook fired for log %q, want acct", log)
			}
			died = true
			panic("crash between checkpoint install and truncation")
		},
	})
	l := d.OpenLog("acct")
	for i := 1; i <= 5; i++ {
		l.AppendSync([]byte(fmt.Sprintf("rec%d", i)))
	}

	func() {
		defer func() { recover() }() // the modeled process death
		l.Checkpoint([]byte("state@3"), 3)
	}()
	if !died {
		t.Fatal("mid-checkpoint hook never fired")
	}
	if l.DurableLen() != 5 {
		t.Fatalf("truncation ran despite the crash: %d durable records", l.DurableLen())
	}

	cp, recs, err := l.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if string(cp) != "state@3" {
		t.Fatalf("checkpoint = %q, want the installed state", cp)
	}
	if len(recs) != 2 || recs[0].Seq != 4 || recs[1].Seq != 5 {
		t.Fatalf("Recover returned %d records %v; want only seqs 4,5 above the watermark", len(recs), recs)
	}
}
