// Package stable models the per-node storage that "will survive a node
// crash" (§2.2). The paper requires that each guardian provide permanence
// of effect for the resource it guards by logging recovery data in such
// storage and interpreting it from a recovery process started after the
// crash.
//
// A Disk belongs to one node and survives Node crashes (but not node
// destruction). Each guardian opens named Logs on its node's disk. An
// appended record is volatile until Sync is called: a crash between Append
// and Sync loses the record, exactly like a real buffered disk write. This
// distinction is load-bearing — experiment E7 shows that a guardian which
// acknowledges an atomic operation before syncing its log record violates
// permanence, while the paper's log-then-ack protocol survives every crash
// point.
package stable

import (
	"errors"
	"sort"
	"sync"
	"time"

	"repro/internal/vtime"
)

// DiskConfig tunes the simulated device.
type DiskConfig struct {
	// SyncDelay is charged (by sleeping on the clock) per Sync call,
	// modeling the latency of a forced write. Zero means instant.
	SyncDelay time.Duration
	// MidCheckpoint, when set, is called during Checkpoint after the new
	// checkpoint is durably installed but before the records it
	// supersedes are truncated — the crash window every
	// write-new-then-rename implementation has. A hook that panics
	// models dying inside that window: the checkpoint is on disk, the
	// stale records are too.
	MidCheckpoint func(log string)
}

// Disk is one node's crash-surviving storage device.
type Disk struct {
	clock vtime.Clock
	cfg   DiskConfig

	mu   sync.Mutex
	logs map[string]*Log

	syncCount int64
}

// NewDisk creates an empty disk using the given clock for write-latency
// accounting.
func NewDisk(clock vtime.Clock, cfg DiskConfig) *Disk {
	return &Disk{clock: clock, cfg: cfg, logs: make(map[string]*Log)}
}

// OpenLog returns the named log, creating it if absent. Logs persist
// across crashes, so a recovery process re-opening its guardian's log sees
// every record that was durable at the crash.
func (d *Disk) OpenLog(name string) *Log {
	d.mu.Lock()
	defer d.mu.Unlock()
	l, ok := d.logs[name]
	if !ok {
		l = &Log{disk: d, name: name}
		d.logs[name] = l
	}
	return l
}

// LogNames returns the names of all logs on the disk, sorted.
func (d *Disk) LogNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	names := make([]string, 0, len(d.logs))
	for n := range d.logs {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Crash simulates the node failing: every log's volatile tail is lost;
// durable records and checkpoints survive. The next sequence number falls
// back to the last durable one, exactly as a real log reopened after a
// crash would continue from its durable tail — replication peers depend on
// the two sides agreeing about sequence numbering after a crash.
func (d *Disk) Crash() {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, l := range d.logs {
		l.mu.Lock()
		l.volatileRecs = nil
		if n := len(l.durableRecs); n > 0 {
			l.nextSeq = l.durableRecs[n-1].Seq
		} else {
			l.nextSeq = l.checkpointAt
		}
		l.mu.Unlock()
	}
}

// SyncCount reports how many forced writes the disk has performed —
// the cost metric for checkpoint-interval ablations.
func (d *Disk) SyncCount() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.syncCount
}

// Record is one durable log entry.
type Record struct {
	Seq  uint64
	Data []byte
}

// Log is an append-only record log with an optional checkpoint. The
// checkpoint write is atomic (a real implementation would write-new-then-
// rename); records with Seq <= the checkpoint's watermark are discarded.
type Log struct {
	disk *Disk
	name string

	mu           sync.Mutex
	nextSeq      uint64
	durableRecs  []Record
	volatileRecs []Record
	checkpoint   []byte
	checkpointAt uint64 // watermark: highest seq folded into the checkpoint
	hasCP        bool
}

// ErrNoCheckpoint is returned by Recover when no checkpoint exists.
var ErrNoCheckpoint = errors.New("stable: no checkpoint")

// Append adds a record to the volatile tail and returns its sequence
// number. The record becomes durable only on the next Sync.
func (l *Log) Append(data []byte) uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.nextSeq++
	buf := make([]byte, len(data))
	copy(buf, data)
	l.volatileRecs = append(l.volatileRecs, Record{Seq: l.nextSeq, Data: buf})
	return l.nextSeq
}

// Sync forces every appended record to durable storage, charging the
// configured write latency.
func (l *Log) Sync() {
	l.mu.Lock()
	l.durableRecs = append(l.durableRecs, l.volatileRecs...)
	l.volatileRecs = nil
	l.mu.Unlock()

	l.disk.mu.Lock()
	l.disk.syncCount++
	delay := l.disk.cfg.SyncDelay
	clock := l.disk.clock
	l.disk.mu.Unlock()
	if delay > 0 {
		clock.Sleep(delay)
	}
}

// AppendSync appends and immediately syncs — the paper's log-then-ack
// protocol in one call.
func (l *Log) AppendSync(data []byte) uint64 {
	seq := l.Append(data)
	l.Sync()
	return seq
}

// Checkpoint atomically replaces the log's checkpoint with state, folding
// in every durable record with Seq <= upTo; those records are discarded.
func (l *Log) Checkpoint(state []byte, upTo uint64) {
	l.mu.Lock()
	buf := make([]byte, len(state))
	copy(buf, state)
	l.checkpoint = buf
	l.checkpointAt = upTo
	l.hasCP = true
	if hook := l.disk.cfg.MidCheckpoint; hook != nil {
		l.mu.Unlock()
		hook(l.name)
		l.mu.Lock()
	}
	kept := l.durableRecs[:0]
	for _, r := range l.durableRecs {
		if r.Seq > upTo {
			kept = append(kept, r)
		}
	}
	l.durableRecs = kept
	l.mu.Unlock()

	l.disk.mu.Lock()
	l.disk.syncCount++
	delay := l.disk.cfg.SyncDelay
	clock := l.disk.clock
	l.disk.mu.Unlock()
	if delay > 0 {
		clock.Sleep(delay)
	}
}

// Recover returns the checkpoint (or ErrNoCheckpoint) and every durable
// record after it, in sequence order. This is what a guardian's recovery
// process reads after a crash. Records at or below the checkpoint's
// watermark are filtered out: a crash between checkpoint install and log
// truncation leaves such records on disk, and replaying them on top of
// the checkpoint that already contains their effects would double-apply.
func (l *Log) Recover() (checkpoint []byte, records []Record, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	records = make([]Record, 0, len(l.durableRecs))
	for _, r := range l.durableRecs {
		if l.hasCP && r.Seq <= l.checkpointAt {
			continue
		}
		data := make([]byte, len(r.Data))
		copy(data, r.Data)
		records = append(records, Record{Seq: r.Seq, Data: data})
	}
	if !l.hasCP {
		return nil, records, ErrNoCheckpoint
	}
	cp := make([]byte, len(l.checkpoint))
	copy(cp, l.checkpoint)
	return cp, records, nil
}

// DurableLen reports the number of durable records not yet folded into the
// checkpoint.
func (l *Log) DurableLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.durableRecs)
}

// VolatileLen reports the number of appended-but-unsynced records.
func (l *Log) VolatileLen() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.volatileRecs)
}

// SkipTo raises the log's sequence counter so the next Append returns
// seq+1, without writing anything. It never lowers the counter. A replica
// that installs a checkpoint at watermark W calls SkipTo(W) so records
// applied after it continue the primary's numbering.
func (l *Log) SkipTo(seq uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > l.nextSeq {
		l.nextSeq = seq
	}
}

// LastDurableSeq returns the highest durable sequence number, counting the
// checkpoint watermark.
func (l *Log) LastDurableSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n := len(l.durableRecs); n > 0 {
		return l.durableRecs[n-1].Seq
	}
	return l.checkpointAt
}
