// Package watchdog provides a failure-detector guardian: it probes the
// primordial guardian of each watched node with ping messages and tracks
// liveness from the replies and timeouts. It is the communication pattern
// of §3.4 distilled — "timeout is necessary because an expected response
// may not arrive due to software errors or hardware failures" — turned
// into a reusable service: subscribers receive node_down and node_up
// events on transitions.
//
// Like everything in this repository, the detector is built from the
// paper's primitives only: no-wait sends, a reply port, a receive with
// timeout, and a process that owns the schedule.
package watchdog

import (
	"sort"
	"sync"
	"time"

	"repro/internal/guardian"
	"repro/internal/xrep"
)

// DefName is the library name of the watchdog guardian definition.
const DefName = "watchdog"

// PortType describes the watchdog's control port.
var PortType = guardian.NewPortType("watchdog_port").
	Msg("watch", xrep.KindString).
	Replies("watch", "watching").
	Msg("unwatch", xrep.KindString).
	Replies("unwatch", "unwatched").
	Msg("status").
	Replies("status", "status_info").
	Msg("subscribe", xrep.KindPortName).
	Replies("subscribe", "subscribed")

// ClientReplyType receives watchdog control replies.
var ClientReplyType = guardian.NewPortType("watchdog_client_port").
	Msg("watching").
	Msg("unwatched").
	Msg("status_info", xrep.KindSeq).
	Msg("subscribed")

// EventPortType is what subscribers provide: node transition events.
var EventPortType = guardian.NewPortType("watchdog_event_port").
	Msg("node_down", xrep.KindString).
	Msg("node_up", xrep.KindString)

// nodeHealth is the detector's view of one node.
type nodeHealth struct {
	missed int
	up     bool
	known  bool // false until the first probe completes
}

type state struct {
	mu          sync.Mutex
	interval    time.Duration
	threshold   int
	watched     map[string]*nodeHealth
	subscribers []xrep.PortName
}

// Def returns the watchdog guardian definition. Creation arguments:
//
//	interval_ms Int — probe period
//	threshold   Int — consecutive missed pongs before a node is down
//
// Without creation arguments both knobs come from the world's Tuning
// (guardian.Config.Tuning), so a simulation can shrink every detector in
// the system deterministically from one place.
//
// The watchdog keeps no durable state: after a crash the owner re-creates
// it and watches are re-established (a failure detector's memory is only
// as good as its last probe anyway).
func Def() *guardian.GuardianDef {
	return &guardian.GuardianDef{
		TypeName: DefName,
		Provides: []*guardian.PortType{PortType},
		Init:     watchdogMain,
	}
}

func watchdogMain(ctx *guardian.Ctx) {
	tuning := ctx.G.Node().World().Tuning()
	st := &state{
		interval:  tuning.HeartbeatInterval,
		threshold: tuning.FailureThreshold,
		watched:   make(map[string]*nodeHealth),
	}
	if len(ctx.Args) == 2 {
		if ms, ok := ctx.Args[0].(xrep.Int); ok && ms > 0 {
			st.interval = time.Duration(ms) * time.Millisecond
		}
		if th, ok := ctx.Args[1].(xrep.Int); ok && th > 0 {
			st.threshold = int(th)
		}
	}
	ctx.G.SetState(st)

	// The prober process owns the schedule; the control process owns the
	// port. They share the state under its mutex — two processes of one
	// guardian coordinating through a shared object (§2.1).
	ctx.G.Spawn("prober", func(pr *guardian.Process) { probeLoop(pr, st) })

	reply := func(pr *guardian.Process, m *guardian.Message, cmd string, args ...any) {
		if !m.ReplyTo.IsZero() {
			_ = pr.Send(m.ReplyTo, cmd, args...)
		}
	}
	guardian.NewReceiver(ctx.Ports[0]).
		When("watch", func(pr *guardian.Process, m *guardian.Message) {
			st.mu.Lock()
			if _, dup := st.watched[m.Str(0)]; !dup {
				st.watched[m.Str(0)] = &nodeHealth{}
			}
			st.mu.Unlock()
			reply(pr, m, "watching")
		}).
		When("unwatch", func(pr *guardian.Process, m *guardian.Message) {
			st.mu.Lock()
			delete(st.watched, m.Str(0))
			st.mu.Unlock()
			reply(pr, m, "unwatched")
		}).
		When("status", func(pr *guardian.Process, m *guardian.Message) {
			st.mu.Lock()
			names := make([]string, 0, len(st.watched))
			for n := range st.watched {
				names = append(names, n)
			}
			sort.Strings(names)
			out := make(xrep.Seq, 0, len(names))
			for _, n := range names {
				h := st.watched[n]
				out = append(out, xrep.Seq{xrep.Str(n), xrep.Bool(h.up), xrep.Int(h.missed)})
			}
			st.mu.Unlock()
			reply(pr, m, "status_info", out)
		}).
		When("subscribe", func(pr *guardian.Process, m *guardian.Message) {
			st.mu.Lock()
			st.subscribers = append(st.subscribers, m.Port(0))
			st.mu.Unlock()
			reply(pr, m, "subscribed")
		}).
		WhenFailure(func(_ *guardian.Process, _ string, _ *guardian.Message) {
			// §3.4 failure arm: a discarded message named the control port
			// as its replyto (e.g. an event to a dead subscriber sent with
			// replyto for diagnostics). Probing state is unaffected.
		}).
		Loop(ctx.Proc, nil)
}

// probeLoop pings every watched node each interval and applies the
// threshold rule.
func probeLoop(pr *guardian.Process, st *state) {
	g := pr.Guardian()
	pong, err := g.NewPort(guardian.CreatedReplyType, 64)
	if err != nil {
		return
	}
	for {
		if !pr.Pause(st.interval) {
			return // guardian died
		}
		st.mu.Lock()
		targets := make([]string, 0, len(st.watched))
		for n := range st.watched {
			targets = append(targets, n)
		}
		st.mu.Unlock()
		if len(targets) == 0 {
			continue
		}
		for _, n := range targets {
			_ = pr.SendReplyTo(guardian.PrimordialPort(n), pong.Name(), "ping")
		}
		// Collect pongs until the window closes.
		answered := make(map[string]bool)
		deadline := g.Node().World().Clock().Now().Add(st.interval / 2)
		for len(answered) < len(targets) {
			remain := deadline.Sub(g.Node().World().Clock().Now())
			if remain <= 0 {
				break
			}
			m, status := pr.Receive(remain, pong)
			if status == guardian.RecvKilled {
				return
			}
			if status != guardian.RecvOK {
				break
			}
			if m.Command == "pong" {
				answered[m.SrcNode] = true
			}
		}
		// Apply results and fire transition events.
		type event struct {
			cmd  string
			node string
		}
		var events []event
		st.mu.Lock()
		for _, n := range targets {
			h, ok := st.watched[n]
			if !ok {
				continue // unwatched meanwhile
			}
			if answered[n] {
				h.missed = 0
				if !h.up || !h.known {
					events = append(events, event{"node_up", n})
				}
				h.up, h.known = true, true
				continue
			}
			h.missed++
			if h.missed >= st.threshold && (h.up || !h.known) {
				if h.up || !h.known {
					events = append(events, event{"node_down", n})
				}
				h.up, h.known = false, true
			}
		}
		subs := make([]xrep.PortName, len(st.subscribers))
		copy(subs, st.subscribers)
		st.mu.Unlock()
		for _, ev := range events {
			for _, s := range subs {
				_ = pr.Send(s, ev.cmd, ev.node)
			}
		}
	}
}
