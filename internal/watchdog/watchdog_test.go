package watchdog

import (
	"testing"
	"time"

	"repro/internal/guardian"
	"repro/internal/netsim"
	"repro/internal/xrep"
)

const testTimeout = 5 * time.Second

type harness struct {
	w      *guardian.World
	wdPort xrep.PortName
	proc   *guardian.Process
	reply  *guardian.Port
	events *guardian.Port
}

func deploy(t *testing.T, intervalMS int64) *harness {
	t.Helper()
	w := guardian.NewWorld(guardian.Config{})
	w.MustRegister(Def())
	wdNode := w.MustAddNode("monitor")
	created, err := wdNode.Bootstrap(DefName, intervalMS, int64(2))
	if err != nil {
		t.Fatal(err)
	}
	cli := w.MustAddNode("cli")
	g, proc, err := cli.NewDriver("op")
	if err != nil {
		t.Fatal(err)
	}
	return &harness{
		w:      w,
		wdPort: created.Ports[0],
		proc:   proc,
		reply:  g.MustNewPort(ClientReplyType, 16),
		events: g.MustNewPort(EventPortType, 64),
	}
}

func (h *harness) call(t *testing.T, cmd string, args ...any) *guardian.Message {
	t.Helper()
	if err := h.proc.SendReplyTo(h.wdPort, h.reply.Name(), cmd, args...); err != nil {
		t.Fatal(err)
	}
	m, st := h.proc.Receive(testTimeout, h.reply)
	if st != guardian.RecvOK {
		t.Fatalf("%s: %v", cmd, st)
	}
	return m
}

// status returns node → up.
func (h *harness) status(t *testing.T) map[string]bool {
	t.Helper()
	m := h.call(t, "status")
	out := make(map[string]bool)
	for _, e := range m.Args[0].(xrep.Seq) {
		triple := e.(xrep.Seq)
		out[string(triple[0].(xrep.Str))] = bool(triple[1].(xrep.Bool))
	}
	return out
}

func (h *harness) waitStatus(t *testing.T, node string, up bool) {
	t.Helper()
	deadline := time.Now().Add(testTimeout)
	for time.Now().Before(deadline) {
		if got, ok := h.status(t)[node]; ok && got == up {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("node %s never reached up=%v", node, up)
}

func TestDetectsLiveNode(t *testing.T) {
	h := deploy(t, 20)
	h.w.MustAddNode("target")
	if m := h.call(t, "watch", "target"); m.Command != "watching" {
		t.Fatal(m.Command)
	}
	h.waitStatus(t, "target", true)
}

func TestDetectsCrashAndRecovery(t *testing.T) {
	h := deploy(t, 20)
	target := h.w.MustAddNode("target")
	h.call(t, "watch", "target")
	h.call(t, "subscribe", h.events.Name())
	h.waitStatus(t, "target", true)

	target.Crash()
	h.waitStatus(t, "target", false)
	if err := target.Restart(); err != nil {
		t.Fatal(err)
	}
	h.waitStatus(t, "target", true)

	// The subscriber saw up → down → up, in order.
	var seq []string
	deadline := time.Now().Add(testTimeout)
	for len(seq) < 3 && time.Now().Before(deadline) {
		m, st := h.proc.Receive(time.Until(deadline), h.events)
		if st != guardian.RecvOK {
			break
		}
		if m.Str(0) == "target" {
			seq = append(seq, m.Command)
		}
	}
	want := []string{"node_up", "node_down", "node_up"}
	if len(seq) < 3 {
		t.Fatalf("events = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("events = %v, want %v", seq, want)
		}
	}
}

func TestNeverExistedNodeReportsDown(t *testing.T) {
	h := deploy(t, 20)
	h.call(t, "watch", "phantom")
	h.waitStatus(t, "phantom", false)
}

func TestUnwatchStopsTracking(t *testing.T) {
	h := deploy(t, 20)
	h.w.MustAddNode("target")
	h.call(t, "watch", "target")
	h.waitStatus(t, "target", true)
	if m := h.call(t, "unwatch", "target"); m.Command != "unwatched" {
		t.Fatal(m.Command)
	}
	if _, ok := h.status(t)["target"]; ok {
		t.Fatal("unwatched node still in status")
	}
}

func TestWatchIsIdempotent(t *testing.T) {
	h := deploy(t, 20)
	h.w.MustAddNode("target")
	h.call(t, "watch", "target")
	h.call(t, "watch", "target")
	if n := len(h.status(t)); n != 1 {
		t.Fatalf("status has %d entries", n)
	}
}

// TestPartitionHealTransitions: a network partition is indistinguishable
// from a node crash to a timeout-based detector (§3.4) — the partitioned
// node must be reported node_down, and healing the partition must bring a
// node_up without any restart.
func TestPartitionHealTransitions(t *testing.T) {
	h := deploy(t, 20)
	h.w.MustAddNode("target")
	h.call(t, "watch", "target")
	h.call(t, "subscribe", h.events.Name())
	h.waitStatus(t, "target", true)

	// Cut the monitor off from the target; the client side stays attached
	// to the monitor so status queries keep working.
	h.w.Net().Partition(
		[]netsim.Addr{"monitor", "cli"},
		[]netsim.Addr{"target"},
	)
	h.waitStatus(t, "target", false)

	h.w.Net().Heal()
	h.waitStatus(t, "target", true)

	// The subscriber saw the full up → down → up sequence.
	var seq []string
	deadline := time.Now().Add(testTimeout)
	for len(seq) < 3 && time.Now().Before(deadline) {
		m, st := h.proc.Receive(time.Until(deadline), h.events)
		if st != guardian.RecvOK {
			break
		}
		if m.Str(0) == "target" {
			seq = append(seq, m.Command)
		}
	}
	want := []string{"node_up", "node_down", "node_up"}
	if len(seq) < 3 {
		t.Fatalf("events = %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("events = %v, want %v", seq, want)
		}
	}
}

func TestThresholdToleratesSingleMiss(t *testing.T) {
	// With threshold 2, one missed probe window (a brief partition) must
	// not flap the node to down.
	h := deploy(t, 40)
	target := h.w.MustAddNode("target")
	_ = target
	h.call(t, "watch", "target")
	h.call(t, "subscribe", h.events.Name())
	h.waitStatus(t, "target", true)
	// Drop exactly one probe window.
	h.w.Net().Disconnect("monitor", "target")
	time.Sleep(45 * time.Millisecond)
	h.w.Net().Reconnect("monitor", "target")
	// Wait a few windows, then assert no down event fired.
	time.Sleep(200 * time.Millisecond)
	if got := h.status(t)["target"]; !got {
		t.Fatal("single missed window marked the node down")
	}
	for {
		m, st := h.proc.Receive(0, h.events)
		if st != guardian.RecvOK {
			break
		}
		if m.Command == "node_down" {
			t.Fatal("down event fired for a single missed window")
		}
	}
}
